//! Workspace root for the TASD reproduction.
//!
//! This package carries the repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`); the actual library code lives in the `crates/` members:
//!
//! * [`tasd_tensor`] — matrices, N:M patterns, compressed formats, GEMM backends.
//! * [`tasd`] — the TASD decomposition, series, and the [`tasd::ExecutionEngine`].
//! * [`tasd_dnn`] — layer IR, weights, calibration, and the executable MLP testbed.
//! * [`tasd_models`] — the paper's model zoo (ResNet, VGG, BERT, ViT, ConvNeXt).
//! * [`tasder`] — the TASD-W / TASD-A optimizer framework.
//! * [`tasd_accelsim`] — the analytical accelerator model.
//! * [`tasd_bench`] — shared support for the per-figure experiment binaries.

pub use tasd;
pub use tasd_accelsim;
pub use tasd_bench;
pub use tasd_dnn;
pub use tasd_models;
pub use tasd_tensor;
pub use tasder;

//! Domain scenario: a GELU-based network (BERT-base) has no exact activation sparsity, so
//! TASD-A falls back to the pseudo-density heuristic (paper §4.3). This example profiles
//! the model, shows the per-layer pseudo-density statistics, and runs TASD-A end to end.
//!
//! Run with: `cargo run --release --example bert_pseudo_density`

use tasd::PatternMenu;
use tasd_accelsim::{simulate_network, AcceleratorConfig, HwDesign, LayerRun, OperandSide};
use tasd_dnn::calibration::CalibrationProfile;
use tasd_models::representative::Workload;
use tasder::Tasder;

fn main() {
    let spec = Workload::DenseBert.network(7);
    println!("workload: {spec}");
    assert!(
        !spec.has_relu_activations(),
        "BERT is GELU-based: no exact activation sparsity"
    );

    // Calibration: per-layer sparsity is ~0, but pseudo-density is well below 1.
    let profile = CalibrationProfile::synthetic(&spec, 8, 7);
    println!("\ncalibration statistics (first encoder block):");
    for stats in profile.layers.iter().take(6) {
        println!(
            "  {:<24} sparsity {:>5.1}%  pseudo-density {:>5.1}%  effective sparsity {:>5.1}%",
            stats.layer,
            stats.mean_sparsity * 100.0,
            stats.mean_pseudo_density * 100.0,
            stats.effective_sparsity() * 100.0
        );
    }

    // TASD-A with the pseudo-density-driven selection.
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2)
        .with_seed(7)
        .with_alpha(0.05);
    let transform = tasder.optimize_activations_with_profile(&spec, &profile);
    println!(
        "\nTASD-A: {} of {} layers decomposed, MAC reduction {:.1}%, meets 99% constraint: {}",
        transform.num_tasd_layers(),
        spec.num_layers(),
        transform.mac_reduction(&spec) * 100.0,
        transform.meets_quality_threshold()
    );

    // EDP on the TTC versus the dense tensor core.
    let config = AcceleratorConfig::standard();
    let dense_runs: Vec<LayerRun> = spec
        .layers
        .iter()
        .map(|l| LayerRun::from_spec(l, 1, OperandSide::Activations, None))
        .collect();
    let tasd_runs: Vec<LayerRun> = spec
        .layers
        .iter()
        .zip(&transform.assignments)
        .map(|(l, a)| LayerRun::from_spec(l, 1, OperandSide::Activations, a.config.clone()))
        .collect();
    let tc = simulate_network(HwDesign::DenseTc, &config, &dense_runs);
    let ttc = simulate_network(HwDesign::TtcVegetaM8, &config, &tasd_runs);
    println!(
        "\nnormalized EDP on TTC-VEGETA-M8: {:.3} ({:.1}% improvement over the dense TC)",
        ttc.edp() / tc.edp(),
        (1.0 - ttc.edp() / tc.edp()) * 100.0
    );
}

//! Quickstart: decompose an unstructured sparse matrix into a TASD series and execute an
//! approximated matrix multiplication term by term.
//!
//! Run with: `cargo run --release --example quickstart`

use tasd::{decompose, series_gemm, TasdConfig};
use tasd_tensor::{gemm, relative_frobenius_error, Matrix, MatrixGenerator};

fn main() {
    // The 2x8 example matrix from the paper's Figure 4.
    let a = Matrix::from_rows(&[
        vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 4.0, 1.0],
        vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 1.0, 4.0],
    ]);
    println!("original matrix A (sum = {}):\n{a:?}\n", a.sum());

    // One structured term (2:4): a lossy view keeping the two largest values per 4-block.
    let one_term = decompose(&a, &TasdConfig::parse("2:4").unwrap());
    let report = one_term.report(&a);
    println!(
        "A ~= A1(2:4):  kept {} of {} non-zeros, dropped {:.0}% of the magnitude",
        report.kept_nonzeros,
        report.original_nonzeros,
        report.dropped_magnitude_fraction * 100.0
    );

    // Two terms (2:4 + 2:8): for this matrix the decomposition is lossless.
    let two_terms = decompose(&a, &TasdConfig::parse("2:4+2:8").unwrap());
    println!(
        "A ~= A1(2:4) + A2(2:8): reconstruction exact? {}\n",
        two_terms.reconstruct() == a
    );

    // Approximated GEMM on a larger unstructured-sparse operand.
    let mut gen = MatrixGenerator::seeded(7);
    let big_a = gen.sparse_normal(256, 256, 0.85); // 85% sparse, unstructured
    let b = gen.normal(256, 64, 0.0, 1.0);
    let exact = gemm(&big_a, &b).expect("shapes match");
    for cfg in ["2:4", "4:8", "4:8+1:8", "4:8+2:8"] {
        let series = decompose(&big_a, &TasdConfig::parse(cfg).unwrap());
        let approx = series_gemm(&series, &b).expect("shapes match");
        println!(
            "config {:>8}: kept {:>5} of {} non-zeros, GEMM relative error {:.4}, effectual MACs {:.1}% of dense",
            cfg,
            series.nnz(),
            big_a.count_nonzeros(),
            relative_frobenius_error(&exact, &approx),
            100.0 * series.effectual_macs(b.cols()) as f64
                / (256.0 * 256.0 * b.cols() as f64)
        );
    }
}

//! Quickstart: decompose an unstructured sparse matrix into a TASD series and execute the
//! approximated matrix multiplication through the unified [`ExecutionEngine`] — the seam
//! every matmul in this repository goes through (pluggable GEMM backends, decomposition
//! caching, parallel row-block tiling).
//!
//! Run with: `cargo run --release --example quickstart`

use tasd::{ExecutionEngine, TasdConfig};
use tasd_tensor::{gemm, relative_frobenius_error, Matrix, MatrixGenerator};

fn main() {
    // The 2x8 example matrix from the paper's Figure 4.
    let a = Matrix::from_rows(&[
        vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 4.0, 1.0],
        vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 1.0, 4.0],
    ]);
    println!("original matrix A (sum = {}):\n{a:?}\n", a.sum());

    // One engine serves the whole program: it plans a backend per structured term and
    // memoizes decompositions by (matrix fingerprint, configuration).
    let engine = ExecutionEngine::builder().cache_capacity(64).build();

    // One structured term (2:4): a lossy view keeping the two largest values per 4-block.
    let one_term = engine.decompose(&a, &TasdConfig::parse("2:4").unwrap());
    let report = one_term.report(&a);
    println!(
        "A ~= A1(2:4):  kept {} of {} non-zeros, dropped {:.0}% of the magnitude",
        report.kept_nonzeros,
        report.original_nonzeros,
        report.dropped_magnitude_fraction * 100.0
    );

    // Two terms (2:4 + 2:8): for this matrix the decomposition is lossless.
    let two_terms = engine.decompose(&a, &TasdConfig::parse("2:4+2:8").unwrap());
    println!(
        "A ~= A1(2:4) + A2(2:8): reconstruction exact? {}\n",
        two_terms.reconstruct() == a
    );

    // Approximated GEMM on a larger unstructured-sparse operand, executed term-by-term
    // through the engine's planned backends.
    let mut gen = MatrixGenerator::seeded(7);
    let big_a = gen.sparse_normal(256, 256, 0.85); // 85% sparse, unstructured
    let b = gen.normal(256, 64, 0.0, 1.0);
    let exact = gemm(&big_a, &b).expect("shapes match");
    for cfg in ["2:4", "4:8", "4:8+1:8", "4:8+2:8"] {
        let config = TasdConfig::parse(cfg).unwrap();
        let series = engine.decompose(&big_a, &config);
        let plan = engine.plan_series(&series, b.cols());
        let approx = engine.series_gemm(&series, &b).expect("shapes match");
        println!(
            "config {:>8}: kept {:>5} of {} non-zeros, GEMM relative error {:.4}, \
             effectual MACs {:.1}% of dense, plan {}",
            cfg,
            series.nnz(),
            big_a.count_nonzeros(),
            relative_frobenius_error(&exact, &approx),
            100.0 * series.effectual_macs(b.cols()) as f64 / (256.0 * 256.0 * b.cols() as f64),
            plan.summary(),
        );
    }

    // Every decomposition above was a cold miss; asking again is free.
    let _ = engine.decompose(&big_a, &TasdConfig::parse("4:8").unwrap());
    let stats = engine.cache_stats();
    println!(
        "\ndecomposition cache: {} hits / {} misses ({} resident, capacity {})",
        stats.hits, stats.misses, stats.entries, stats.capacity
    );
}

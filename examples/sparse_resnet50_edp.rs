//! Domain scenario: run TASDER on a 95 % unstructured-sparse ResNet-50 and compare the
//! energy-delay product of a dense tensor core, a dual-side unstructured design, and a
//! TASD-enabled TTC-VEGETA accelerator.
//!
//! Run with: `cargo run --release --example sparse_resnet50_edp`

use tasd::PatternMenu;
use tasd_accelsim::{simulate_network, AcceleratorConfig, HwDesign, LayerRun, OperandSide};
use tasd_models::representative::Workload;
use tasder::Tasder;

fn main() {
    let spec = Workload::SparseResNet50.network(42);
    println!("workload: {spec}");

    // TASDER finds per-layer TASD-W configurations for the VEGETA-style N:8 menu.
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_seed(42);
    let transform = tasder.optimize_weights_layer_wise(&spec);
    println!(
        "TASDER: {} of {} layers decomposed, MAC reduction {:.1}%, estimated top-1 {:.2}% (meets 99% constraint: {})",
        transform.num_tasd_layers(),
        spec.num_layers(),
        transform.mac_reduction(&spec) * 100.0,
        transform.estimated_accuracy() * 100.0,
        transform.meets_quality_threshold()
    );
    for a in transform.assignments.iter().take(8) {
        println!(
            "  {:<24} -> {}",
            a.layer,
            a.config
                .as_ref()
                .map_or("dense".to_string(), |c| c.to_string())
        );
    }
    println!("  ...");

    // Simulate the whole network on three designs.
    let config = AcceleratorConfig::standard();
    let dense_runs: Vec<LayerRun> = spec
        .layers
        .iter()
        .map(|l| LayerRun::from_spec(l, 1, OperandSide::Weights, None))
        .collect();
    let tasd_runs: Vec<LayerRun> = spec
        .layers
        .iter()
        .zip(&transform.assignments)
        .map(|(l, a)| LayerRun::from_spec(l, 1, OperandSide::Weights, a.config.clone()))
        .collect();

    let tc = simulate_network(HwDesign::DenseTc, &config, &dense_runs);
    let dstc = simulate_network(HwDesign::Dstc, &config, &dense_runs);
    let ttc = simulate_network(HwDesign::TtcVegetaM8, &config, &tasd_runs);

    println!(
        "\n{:<16} {:>14} {:>14} {:>12}",
        "design", "cycles", "energy (uJ)", "EDP (norm.)"
    );
    for m in [&tc, &dstc, &ttc] {
        println!(
            "{:<16} {:>14.3e} {:>14.3} {:>12.3}",
            m.design,
            m.total_cycles(),
            m.total_energy_pj() / 1e6,
            m.edp() / tc.edp()
        );
    }
    println!(
        "\nTTC-VEGETA-M8 improves EDP by {:.1}% over the dense tensor core.",
        (1.0 - ttc.edp() / tc.edp()) * 100.0
    );
}

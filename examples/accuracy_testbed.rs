//! End-to-end accuracy testbed: train a small MLP on a synthetic classification task, then
//! measure *true* (not proxy) accuracy as TASD is applied to its weights and activations.
//! This is the offline stand-in for the paper's ImageNet accuracy evaluation: it shows the
//! same flat-then-cliff behaviour as configurations get more aggressive, and that the
//! 99 %-retention constraint is meaningful.
//!
//! Run with: `cargo run --release --example accuracy_testbed`

use tasd::{ExecutionEngine, TasdConfig};
use tasd_dnn::dataset::SyntheticDataset;
use tasd_dnn::executable::Mlp;
use tasd_dnn::quality::meets_accuracy_criterion;
use tasd_dnn::train::{train, TrainConfig};
use tasd_dnn::Activation;

fn main() {
    // Train the testbed network.
    let data = SyntheticDataset::gaussian_clusters(1200, 32, 6, 2.5, 11);
    let (train_set, test_set) = data.split(0.8);
    let mut mlp = Mlp::new(&[32, 64, 48, 6], Activation::Relu, 3);
    let engine = ExecutionEngine::global();
    let report = train(engine, &mut mlp, &train_set, &TrainConfig::default());
    let base_acc = mlp.accuracy(engine, test_set.features(), test_set.labels());
    println!(
        "trained MLP: train accuracy {:.1}%, test accuracy {:.1}%",
        report.final_train_accuracy * 100.0,
        base_acc * 100.0
    );

    // TASD-W sweep: decompose the (dense) hidden-layer weights with increasingly
    // aggressive configurations and measure real accuracy.
    println!("\nTASD-W on layer 1 weights (dense weights -> accuracy falls with aggressiveness):");
    for cfg in ["6:8", "4:8+1:8", "4:8", "2:8+1:8", "2:8", "1:8"] {
        let config = TasdConfig::parse(cfg).unwrap();
        let modified = mlp.with_weight_tasd(engine, 1, &config);
        let acc = modified.accuracy(engine, test_set.features(), test_set.labels());
        println!(
            "  {:>8}: test accuracy {:>5.1}%  (retention {:>5.1}%, meets 99%: {})",
            cfg,
            acc * 100.0,
            acc / base_acc * 100.0,
            meets_accuracy_criterion(base_acc, acc)
        );
    }

    // TASD-A sweep: decompose every hidden layer's input activations at runtime.
    println!("\nTASD-A on all hidden activations (ReLU outputs are ~50% sparse):");
    for cfg in ["6:8", "4:8+1:8", "4:8", "2:8", "1:8"] {
        let config = TasdConfig::parse(cfg).unwrap();
        let configs: Vec<Option<TasdConfig>> = (0..mlp.num_layers())
            .map(|i| if i == 0 { None } else { Some(config.clone()) })
            .collect();
        let acc = mlp.accuracy_with_activation_tasd(
            engine,
            test_set.features(),
            test_set.labels(),
            &configs,
        );
        println!(
            "  {:>8}: test accuracy {:>5.1}%  (retention {:>5.1}%, meets 99%: {})",
            cfg,
            acc * 100.0,
            acc / base_acc * 100.0,
            meets_accuracy_criterion(base_acc, acc)
        );
    }
}

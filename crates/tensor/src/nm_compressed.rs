//! Compressed storage for N:M structured sparse matrices.
//!
//! A structured-sparse tensor core does not consume a dense matrix with zeros; it consumes
//! a *compressed* operand: for every M-element block, up to N values plus small metadata
//! indices recording which lanes those values came from (NVIDIA's sparse tensor core uses
//! 2-bit metadata per kept value for 2:4). [`NmCompressed`] is that representation, and its
//! [`NmCompressed::spmm`] kernel performs only the effectual MACs — one per stored value
//! per output column — which is what the accelerator model counts.

use crate::backend::simd::{self, SimdLevel};
use crate::nm::NmPattern;
use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};

/// One stored entry of a compressed block: the value and its lane index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Entry {
    /// Column offset within the M-element block.
    lane: u8,
    /// The kept value.
    value: f32,
}

/// An N:M structured sparse matrix in compressed (values + metadata) form.
///
/// # Example
///
/// ```
/// use tasd_tensor::{Matrix, NmCompressed, NmPattern};
///
/// let dense = Matrix::from_rows(&[vec![0.0, 5.0, 0.0, -2.0, 1.0, 0.0, 0.0, 0.0]]);
/// let p = NmPattern::new(2, 4).unwrap();
/// let c = NmCompressed::from_dense(&dense, p).unwrap();
/// assert_eq!(c.nnz(), 3);
/// assert_eq!(c.to_dense(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmCompressed {
    rows: usize,
    cols: usize,
    pattern: NmPattern,
    /// Entries stored block-major: for row `i` and block `b`, the entries live at
    /// `block_ptr[i * blocks_per_row + b] .. block_ptr[i * blocks_per_row + b + 1]`.
    entries: Vec<Entry>,
    block_ptr: Vec<usize>,
}

impl NmCompressed {
    /// Compresses a dense matrix that satisfies (or is to be clamped to) the N:M pattern.
    ///
    /// If the matrix does not satisfy the pattern, the N:M *view* is taken first (largest
    /// magnitudes kept), so this constructor is total; use
    /// [`NmCompressed::from_dense_strict`] to reject non-conforming inputs instead.
    ///
    /// # Errors
    ///
    /// Currently infallible for any well-formed matrix, but returns `Result` to keep the
    /// signature uniform with the strict constructor.
    pub fn from_dense(matrix: &Matrix, pattern: NmPattern) -> Result<Self> {
        let view = if pattern.is_satisfied_by(matrix) {
            matrix.clone()
        } else {
            pattern.view(matrix)
        };
        Self::compress_conforming(&view, pattern)
    }

    /// Compresses a dense matrix, returning an error if it does not already satisfy the
    /// pattern.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::CorruptCompressed`] if any block violates the pattern.
    pub fn from_dense_strict(matrix: &Matrix, pattern: NmPattern) -> Result<Self> {
        if !pattern.is_satisfied_by(matrix) {
            return Err(TensorError::CorruptCompressed(format!(
                "matrix does not satisfy {pattern} pattern"
            )));
        }
        Self::compress_conforming(matrix, pattern)
    }

    fn compress_conforming(matrix: &Matrix, pattern: NmPattern) -> Result<Self> {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let bpr = pattern.blocks_per_row(cols);
        let mut entries = Vec::new();
        let mut block_ptr = Vec::with_capacity(rows * bpr + 1);
        block_ptr.push(0);
        for i in 0..rows {
            let row = matrix.row(i);
            for block in row.chunks(pattern.m()) {
                for (lane, &v) in block.iter().enumerate() {
                    if v != 0.0 {
                        entries.push(Entry {
                            lane: lane as u8,
                            value: v,
                        });
                    }
                }
                block_ptr.push(entries.len());
            }
        }
        Ok(NmCompressed {
            rows,
            cols,
            pattern,
            entries,
            block_ptr,
        })
    }

    /// Number of rows of the logical (dense) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical (dense) matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape of the logical matrix as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The N:M pattern this matrix conforms to.
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// Number of stored (non-zero) values.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sparsity degree of the logical matrix.
    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Storage footprint in bytes: 4 bytes per value plus `ceil(log2(M))` bits of metadata
    /// per value, rounded up to whole bytes per matrix (the format a sparse tensor core
    /// would consume).
    pub fn storage_bytes(&self) -> usize {
        let meta_bits_per_value =
            usize::BITS as usize - (self.pattern.m().max(2) - 1).leading_zeros() as usize;
        let value_bytes = self.nnz() * 4;
        let meta_bytes = (self.nnz() * meta_bits_per_value).div_ceil(8);
        value_bytes + meta_bytes
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let bpr = self.pattern.blocks_per_row(self.cols);
        for i in 0..self.rows {
            for b in 0..bpr {
                let base_col = b * self.pattern.m();
                let blk = i * bpr + b;
                for e in &self.entries[self.block_ptr[blk]..self.block_ptr[blk + 1]] {
                    out[(i, base_col + e.lane as usize)] = e.value;
                }
            }
        }
        out
    }

    /// Structured sparse matrix multiply: `C = self * B`, performing one MAC per stored
    /// value per output column (ineffectual MACs are skipped by construction).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != b.rows()`.
    pub fn spmm(&self, b: &Matrix) -> Result<Matrix> {
        let mut c = Matrix::zeros(self.rows, b.cols());
        self.spmm_into(b, &mut c)?;
        Ok(c)
    }

    /// Accumulating variant of [`NmCompressed::spmm`]: `C += self * B`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes are inconsistent.
    pub fn spmm_into(&self, b: &Matrix, c: &mut Matrix) -> Result<()> {
        if self.cols != b.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "nm spmm",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        if c.rows() != self.rows || c.cols() != b.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "nm spmm accumulator",
                lhs: (self.rows, b.cols()),
                rhs: c.shape(),
            });
        }
        let rows = self.rows;
        let n = b.cols();
        self.spmm_rows_into(b, 0, rows, c.rows_slice_mut(0, rows), n);
        Ok(())
    }

    /// Row-range SpMM kernel: `C[r0..r1] += self[r0..r1, :] * B`, where `c_rows` is the
    /// contiguous row-major slab covering output rows `[r0, r1)` with `n_cols` columns.
    /// This is the format-native kernel the GEMM backends (and their parallel row-block
    /// tiling) drive; it performs one MAC per stored value per output column.
    ///
    /// # Panics
    ///
    /// Panics if the row range, `b`, or `c_rows` are inconsistent with this matrix. Use the
    /// backend layer ([`crate::backend`]) for checked dispatch.
    // lint: hot-path, warm-path, allow(panic, indexing): the asserts are this kernel's
    // documented # Panics contract, and they pin the slab and block-pointer indexing below
    pub fn spmm_rows_into(
        &self,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        self.spmm_rows_into_simd(b, r0, r1, c_rows, n_cols, SimdLevel::detected());
    }

    /// [`spmm_rows_into`](Self::spmm_rows_into) at an explicit SIMD tier: each stored
    /// value's lane metadata indexes its `B` row, which streams through an 8-wide axpy
    /// at `level` — indexed vector MACs, IndexMAC-style. Stored zeros (padding lanes)
    /// are skipped — the backend layer's zero-annihilation contract
    /// ([`crate::backend::GemmBackend`]).
    ///
    /// # Panics
    ///
    /// Panics if the row range, `b`, or `c_rows` are inconsistent with this matrix. Use the
    /// backend layer ([`crate::backend`]) for checked dispatch.
    // lint: hot-path, warm-path, allow(panic, indexing): the asserts are this kernel's
    // documented # Panics contract, and they pin the slab and block-pointer indexing below
    pub fn spmm_rows_into_simd(
        &self,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
        level: SimdLevel,
    ) {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} out of bounds"
        );
        assert_eq!(self.cols, b.rows(), "reduction depth mismatch");
        assert_eq!(n_cols, b.cols(), "output width mismatch");
        assert_eq!(
            c_rows.len(),
            (r1 - r0) * n_cols,
            "output slab size mismatch"
        );
        let bpr = self.pattern.blocks_per_row(self.cols);
        let m_block = self.pattern.m();
        for i in r0..r1 {
            let c_row = &mut c_rows[(i - r0) * n_cols..(i - r0 + 1) * n_cols];
            for blk_in_row in 0..bpr {
                let base_col = blk_in_row * m_block;
                let blk = i * bpr + blk_in_row;
                for e in &self.entries[self.block_ptr[blk]..self.block_ptr[blk + 1]] {
                    if e.value == 0.0 {
                        continue;
                    }
                    let k = base_col + e.lane as usize;
                    simd::axpy(level, e.value, b.row(k), c_row);
                }
            }
        }
    }

    /// Iterator over the stored `(column, value)` pairs of row `i`, in column order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let bpr = self.pattern.blocks_per_row(self.cols);
        let m_block = self.pattern.m();
        (0..bpr).flat_map(move |blk_in_row| {
            let blk = i * bpr + blk_in_row;
            let base_col = blk_in_row * m_block;
            self.entries[self.block_ptr[blk]..self.block_ptr[blk + 1]]
                .iter()
                .map(move |e| (base_col + e.lane as usize, e.value))
        })
    }

    /// Number of effectual MACs this operand contributes to a GEMM with `n_cols` output
    /// columns.
    pub fn effectual_macs(&self, n_cols: usize) -> u64 {
        self.nnz() as u64 * n_cols as u64
    }

    /// Converts to CSR form directly (no dense round trip), preserving per-row entry
    /// order: row `i`'s CSR entries are exactly [`NmCompressed::row_entries`]`(i)` in
    /// sequence, so a GEMM over the CSR form accumulates every output element in the
    /// same floating-point order as the native N:M kernel — results are bitwise
    /// identical. This is the prepare-time conversion the execution engine uses to
    /// materialize a CSR-planned TASD term in its kernel's native format.
    pub fn to_csr(&self) -> crate::CsrMatrix {
        let bpr = self.pattern.blocks_per_row(self.cols);
        let m_block = self.pattern.m();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        for i in 0..self.rows {
            for blk_in_row in 0..bpr {
                let blk = i * bpr + blk_in_row;
                let base_col = blk_in_row * m_block;
                for e in &self.entries[self.block_ptr[blk]..self.block_ptr[blk + 1]] {
                    col_idx.push(base_col + e.lane as usize);
                    values.push(e.value);
                }
            }
            row_ptr.push(values.len());
        }
        crate::CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("a valid compressed matrix converts to valid CSR")
    }

    /// Verifies internal structural invariants (monotone block pointers, lane bounds,
    /// per-block entry count within N). Useful for property tests and after deserialization.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::CorruptCompressed`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let bpr = self.pattern.blocks_per_row(self.cols);
        if self.block_ptr.len() != self.rows * bpr + 1 {
            return Err(TensorError::CorruptCompressed(format!(
                "block_ptr length {} does not match {} blocks",
                self.block_ptr.len(),
                self.rows * bpr
            )));
        }
        if *self.block_ptr.last().unwrap_or(&0) != self.entries.len() {
            return Err(TensorError::CorruptCompressed(
                "final block pointer does not cover all entries".to_string(),
            ));
        }
        for w in self.block_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(TensorError::CorruptCompressed(
                    "block pointers are not monotone".to_string(),
                ));
            }
            if w[1] - w[0] > self.pattern.n() {
                return Err(TensorError::CorruptCompressed(format!(
                    "a block stores {} values, exceeding N={}",
                    w[1] - w[0],
                    self.pattern.n()
                )));
            }
        }
        for e in &self.entries {
            if (e.lane as usize) >= self.pattern.m() {
                return Err(TensorError::CorruptCompressed(format!(
                    "lane {} out of bounds for M={}",
                    e.lane,
                    self.pattern.m()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::random::MatrixGenerator;

    #[test]
    fn round_trip_conforming_matrix() {
        let p = NmPattern::new(2, 4).unwrap();
        let dense = MatrixGenerator::seeded(1).structured_nm(16, 32, p);
        let c = NmCompressed::from_dense_strict(&dense, p).unwrap();
        assert_eq!(c.to_dense(), dense);
        assert_eq!(c.nnz(), dense.count_nonzeros());
        c.validate().unwrap();
    }

    #[test]
    fn from_dense_clamps_nonconforming() {
        let dense = Matrix::filled(2, 8, 1.0);
        let p = NmPattern::new(2, 4).unwrap();
        let c = NmCompressed::from_dense(&dense, p).unwrap();
        assert_eq!(c.nnz(), 2 * 2 * 2);
        assert!(p.is_satisfied_by(&c.to_dense()));
        assert!(NmCompressed::from_dense_strict(&dense, p).is_err());
    }

    #[test]
    fn spmm_matches_dense_gemm_on_view() {
        let mut gen = MatrixGenerator::seeded(5);
        let p = NmPattern::new(2, 8).unwrap();
        let a = gen.sparse_normal(24, 32, 0.5);
        let view = p.view(&a);
        let b = gen.normal(32, 12, 0.0, 1.0);
        let c_sparse = NmCompressed::from_dense(&a, p).unwrap().spmm(&b).unwrap();
        let c_dense = gemm(&view, &b).unwrap();
        assert!(c_sparse.approx_eq(&c_dense, 1e-4));
    }

    #[test]
    fn spmm_into_accumulates() {
        let p = NmPattern::new(1, 4).unwrap();
        let a = Matrix::from_rows(&[vec![2.0, 0.0, 0.0, 0.0]]);
        let c = NmCompressed::from_dense_strict(&a, p).unwrap();
        let b = Matrix::filled(4, 3, 1.0);
        let mut acc = Matrix::filled(1, 3, 10.0);
        c.spmm_into(&b, &mut acc).unwrap();
        assert_eq!(acc, Matrix::filled(1, 3, 12.0));
    }

    #[test]
    fn shape_mismatch_errors() {
        let p = NmPattern::new(2, 4).unwrap();
        let a = NmCompressed::from_dense(&Matrix::zeros(2, 8), p).unwrap();
        assert!(a.spmm(&Matrix::zeros(4, 4)).is_err());
        let b = Matrix::zeros(8, 3);
        let mut bad_acc = Matrix::zeros(3, 3);
        assert!(a.spmm_into(&b, &mut bad_acc).is_err());
    }

    #[test]
    fn storage_bytes_reflects_metadata_width() {
        let p4 = NmPattern::new(2, 4).unwrap();
        let p8 = NmPattern::new(2, 8).unwrap();
        let dense = Matrix::from_rows(&[vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0]]);
        let c4 = NmCompressed::from_dense(&dense, p4).unwrap();
        let c8 = NmCompressed::from_dense(&dense, p8).unwrap();
        assert_eq!(c4.nnz(), 4);
        assert_eq!(c8.nnz(), 2);
        // 2-bit metadata for M=4, 3-bit for M=8.
        assert_eq!(c4.storage_bytes(), 4 * 4 + 1);
        assert_eq!(c8.storage_bytes(), 2 * 4 + 1);
    }

    #[test]
    fn sparsity_and_effectual_macs() {
        let p = NmPattern::new(2, 4).unwrap();
        let dense = Matrix::from_rows(&[vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0]]);
        let c = NmCompressed::from_dense_strict(&dense, p).unwrap();
        assert_eq!(c.sparsity(), 0.75);
        assert_eq!(c.effectual_macs(16), 2 * 16);
    }

    #[test]
    fn empty_matrix_handled() {
        let p = NmPattern::new(2, 4).unwrap();
        let c = NmCompressed::from_dense(&Matrix::zeros(0, 0), p).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.sparsity(), 0.0);
        c.validate().unwrap();
    }
}

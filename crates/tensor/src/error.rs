//! Error types for the tensor substrate.

use std::fmt;

/// Errors produced by the tensor substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands have shapes that are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix could not be constructed because the element count does not match
    /// `rows * cols`.
    InvalidDimensions {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Number of elements supplied.
        len: usize,
    },
    /// An N:M pattern was requested with invalid parameters (e.g. `n > m` or `m == 0`).
    InvalidPattern {
        /// Requested N.
        n: usize,
        /// Requested M.
        m: usize,
    },
    /// The matrix width is not divisible by the pattern block size M, so a structured view
    /// cannot be formed without padding.
    BlockMisaligned {
        /// Number of columns in the matrix.
        cols: usize,
        /// Block size M of the pattern.
        m: usize,
    },
    /// A compressed matrix failed a structural validity check.
    CorruptCompressed(String),
    /// A convolution lowering was requested with inconsistent geometry.
    InvalidConvGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimensions { rows, cols, len } => write!(
                f,
                "invalid dimensions: {rows}x{cols} requires {} elements but {len} were supplied",
                rows * cols
            ),
            TensorError::InvalidPattern { n, m } => {
                write!(f, "invalid N:M pattern {n}:{m} (require 0 < m and n <= m)")
            }
            TensorError::BlockMisaligned { cols, m } => write!(
                f,
                "matrix width {cols} is not divisible by pattern block size {m}"
            ),
            TensorError::CorruptCompressed(msg) => write!(f, "corrupt compressed matrix: {msg}"),
            TensorError::InvalidConvGeometry(msg) => write!(f, "invalid conv geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            TensorError::ShapeMismatch {
                op: "gemm",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            TensorError::InvalidDimensions {
                rows: 2,
                cols: 2,
                len: 3,
            },
            TensorError::InvalidPattern { n: 5, m: 4 },
            TensorError::BlockMisaligned { cols: 10, m: 4 },
            TensorError::CorruptCompressed("bad metadata".to_string()),
            TensorError::InvalidConvGeometry("kernel larger than input".to_string()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}

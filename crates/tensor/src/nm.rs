//! Fine-grained N:M structured sparsity patterns and views.
//!
//! An N:M pattern constrains every block of M consecutive elements along a row to contain
//! at most N non-zeros (paper §2.1). The *view* of a matrix under a pattern keeps, in every
//! block, the N elements of largest magnitude and drops the rest — exactly the greedy
//! extraction step that TASD uses to produce one structured term.

use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fine-grained N:M structured sparsity pattern: at most `n` non-zeros in every block of
/// `m` consecutive elements of a row.
///
/// # Example
///
/// ```
/// use tasd_tensor::NmPattern;
///
/// let p = NmPattern::new(2, 4).unwrap();
/// assert_eq!(p.approximated_sparsity(), 0.5);
/// assert_eq!(p.to_string(), "2:4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NmPattern {
    n: usize,
    m: usize,
}

impl NmPattern {
    /// Creates an N:M pattern.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPattern`] if `m == 0`, `n == 0`, or `n > m`.
    pub fn new(n: usize, m: usize) -> Result<Self> {
        if m == 0 || n == 0 || n > m {
            return Err(TensorError::InvalidPattern { n, m });
        }
        Ok(NmPattern { n, m })
    }

    /// The maximum number of non-zeros per block (N).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The block size (M).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Returns `true` if this pattern keeps every element (`n == m`), i.e. it is dense.
    pub fn is_dense(&self) -> bool {
        self.n == self.m
    }

    /// The sparsity degree this pattern *enforces*: `1 - n/m`.
    ///
    /// The paper calls this the "approximated sparsity" of a configuration (e.g. both 1:4
    /// and 2:8 have an approximated sparsity of 75 %).
    pub fn approximated_sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// The density this pattern allows: `n/m`.
    pub fn density(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Returns `true` if `matrix` already satisfies this pattern (every length-M block of
    /// every row contains at most N non-zeros). The trailing partial block of a row whose
    /// width is not a multiple of M is checked as-is.
    pub fn is_satisfied_by(&self, matrix: &Matrix) -> bool {
        for i in 0..matrix.rows() {
            let row = matrix.row(i);
            for block in row.chunks(self.m) {
                let nnz = block.iter().filter(|&&x| x != 0.0).count();
                if nnz > self.n {
                    return false;
                }
            }
        }
        true
    }

    /// Produces the N:M view of `matrix`: in every length-M block of every row, the N
    /// elements of largest magnitude are kept and all others are set to zero (ties keep the
    /// earliest element). Rows whose width is not a multiple of M treat the trailing
    /// partial block as its own (shorter) block.
    ///
    /// This is lossy whenever a block has more than N non-zeros; the dropped values are
    /// exactly `matrix - view`.
    pub fn view(&self, matrix: &Matrix) -> Matrix {
        let mut out = matrix.clone();
        self.view_inplace(&mut out);
        out
    }

    /// In-place variant of [`NmPattern::view`].
    pub fn view_inplace(&self, matrix: &mut Matrix) {
        let m = self.m;
        let n = self.n;
        for i in 0..matrix.rows() {
            let row = matrix.row_mut(i);
            for block in row.chunks_mut(m) {
                keep_top_n(block, n);
            }
        }
    }

    /// Returns the residual `matrix - view(matrix)`, i.e. the elements dropped by the view.
    pub fn residual(&self, matrix: &Matrix) -> Matrix {
        let view = self.view(matrix);
        matrix.try_sub(&view).expect("view preserves shape")
    }

    /// Number of blocks per row for a matrix with `cols` columns (including a trailing
    /// partial block).
    pub fn blocks_per_row(&self, cols: usize) -> usize {
        cols.div_ceil(self.m)
    }

    /// Maximum number of non-zeros a matrix of the given shape can hold under this pattern.
    pub fn max_nonzeros(&self, rows: usize, cols: usize) -> usize {
        let full_blocks = cols / self.m;
        let tail = cols % self.m;
        rows * (full_blocks * self.n + tail.min(self.n))
    }
}

/// Keeps the `n` largest-magnitude entries of `block` and zeroes the rest.
///
/// Ties are broken in favour of earlier positions, which makes the extraction
/// deterministic (important for reproducible decompositions).
pub(crate) fn keep_top_n(block: &mut [f32], n: usize) {
    if block.len() <= n {
        return;
    }
    // Indices sorted by descending magnitude, stable on ties.
    let mut idx: Vec<usize> = (0..block.len()).collect();
    idx.sort_by(|&a, &b| {
        block[b]
            .abs()
            .partial_cmp(&block[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &i in idx.iter().skip(n) {
        block[i] = 0.0;
    }
}

impl fmt::Display for NmPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(NmPattern::new(2, 4).is_ok());
        assert!(NmPattern::new(4, 4).is_ok());
        assert!(NmPattern::new(0, 4).is_err());
        assert!(NmPattern::new(5, 4).is_err());
        assert!(NmPattern::new(1, 0).is_err());
    }

    #[test]
    fn display_and_density() {
        let p = NmPattern::new(2, 8).unwrap();
        assert_eq!(p.to_string(), "2:8");
        assert_eq!(p.density(), 0.25);
        assert_eq!(p.approximated_sparsity(), 0.75);
        assert!(NmPattern::new(8, 8).unwrap().is_dense());
        assert!(!p.is_dense());
    }

    #[test]
    fn paper_figure4_first_term() {
        // Matrix A from Figure 4: rows [1,3,0,0,2,4,4,1] and [2,0,0,0,0,3,1,4].
        let a = Matrix::from_rows(&[
            vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 4.0, 1.0],
            vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 1.0, 4.0],
        ]);
        let p24 = NmPattern::new(2, 4).unwrap();
        let a1 = p24.view(&a);
        // Expected 2:4 view from the paper: [1,3,0,0 | 0,4,4,0] and [2,0,0,0 | 0,3,0,4].
        let expected = Matrix::from_rows(&[
            vec![1.0, 3.0, 0.0, 0.0, 0.0, 4.0, 4.0, 0.0],
            vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0, 4.0],
        ]);
        assert_eq!(a1, expected);
        // The extracted term covers 84% of the total magnitude (21 of 25).
        assert_eq!(a1.sum(), 21.0);
        assert_eq!(a.sum(), 25.0);
        // Residual has the remaining 3 non-zeros summing to 4.
        let r1 = p24.residual(&a);
        assert_eq!(r1.count_nonzeros(), 3);
        assert_eq!(r1.sum(), 4.0);
    }

    #[test]
    fn view_is_idempotent_and_satisfies_pattern() {
        let a = Matrix::from_rows(&[vec![5.0, -1.0, 2.0, 3.0, 0.5, 0.0, 7.0, -2.0]]);
        let p = NmPattern::new(1, 4).unwrap();
        let v = p.view(&a);
        assert!(p.is_satisfied_by(&v));
        assert_eq!(p.view(&v), v);
        // Largest magnitude kept per block.
        assert_eq!(v.row(0), &[5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn view_plus_residual_reconstructs() {
        let a = Matrix::from_fn(4, 8, |i, j| ((i * 8 + j) % 5) as f32 - 2.0);
        let p = NmPattern::new(2, 4).unwrap();
        let v = p.view(&a);
        let r = p.residual(&a);
        assert_eq!(v.try_add(&r).unwrap(), a);
        // View and residual have disjoint supports.
        for (x, y) in v.iter().zip(r.iter()) {
            assert!(*x == 0.0 || *y == 0.0);
        }
    }

    #[test]
    fn dense_pattern_view_is_identity() {
        let a = Matrix::from_fn(3, 8, |i, j| (i + j) as f32);
        let p = NmPattern::new(8, 8).unwrap();
        assert_eq!(p.view(&a), a);
        assert!(p.is_satisfied_by(&a));
    }

    #[test]
    fn partial_trailing_block() {
        // 6 columns with a 4-block pattern: second block has only 2 elements.
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let p = NmPattern::new(1, 4).unwrap();
        let v = p.view(&a);
        assert_eq!(v.row(0), &[0.0, 0.0, 0.0, 4.0, 0.0, 6.0]);
        assert_eq!(p.blocks_per_row(6), 2);
        assert_eq!(p.max_nonzeros(1, 6), 2);
    }

    #[test]
    fn is_satisfied_detects_violation() {
        let ok = Matrix::from_rows(&[vec![1.0, 0.0, 2.0, 0.0]]);
        let bad = Matrix::from_rows(&[vec![1.0, 1.0, 2.0, 0.0]]);
        let p = NmPattern::new(2, 4).unwrap();
        assert!(p.is_satisfied_by(&ok));
        assert!(!p.is_satisfied_by(&bad));
        let p1 = NmPattern::new(1, 4).unwrap();
        assert!(!p1.is_satisfied_by(&ok));
        assert!(!p1.is_satisfied_by(&bad));
    }

    #[test]
    fn max_nonzeros_counts() {
        let p = NmPattern::new(2, 8).unwrap();
        assert_eq!(p.max_nonzeros(4, 16), 4 * 4);
        assert_eq!(p.max_nonzeros(1, 8), 2);
        assert_eq!(p.max_nonzeros(1, 9), 3); // trailing block of 1 keeps min(1, 2)=1
    }

    #[test]
    fn keep_top_n_tie_break_is_stable() {
        let mut block = [2.0, -2.0, 2.0, 1.0];
        keep_top_n(&mut block, 2);
        assert_eq!(block, [2.0, -2.0, 0.0, 0.0]);
    }

    #[test]
    fn ordering_of_patterns_is_consistent() {
        let a = NmPattern::new(1, 4).unwrap();
        let b = NmPattern::new(2, 4).unwrap();
        assert!(a < b);
    }
}

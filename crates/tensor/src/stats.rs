//! Sparsity statistics: degrees, distributions, and pseudo-density.

use crate::Matrix;

/// Sparsity degree of a matrix: the fraction of exactly-zero elements.
///
/// # Example
///
/// ```
/// use tasd_tensor::{sparsity_degree, Matrix};
///
/// let m = Matrix::from_rows(&[vec![0.0, 1.0, 0.0, 2.0]]);
/// assert_eq!(sparsity_degree(&m), 0.5);
/// ```
pub fn sparsity_degree(m: &Matrix) -> f64 {
    if m.is_empty() {
        return 0.0;
    }
    m.count_zeros() as f64 / m.len() as f64
}

/// Density of a matrix: the fraction of non-zero elements (`1 - sparsity`).
pub fn density(m: &Matrix) -> f64 {
    1.0 - sparsity_degree(m)
}

/// Pseudo-density (paper §4.3): the smallest fraction of elements (taken in decreasing
/// magnitude order) whose combined magnitude reaches `preserve_fraction` of the total
/// magnitude of the tensor.
///
/// For ReLU outputs this roughly matches `1 - sparsity`; for GELU/Swish outputs (which
/// have no exact zeros but many tiny values) it captures how concentrated the magnitude
/// is, which is what TASD-A uses to pick a configuration for non-ReLU networks.
///
/// Returns `0.0` for an all-zero or empty matrix.
pub fn pseudo_density(m: &Matrix, preserve_fraction: f64) -> f64 {
    if m.is_empty() {
        return 0.0;
    }
    let preserve_fraction = preserve_fraction.clamp(0.0, 1.0);
    let total: f64 = m.abs_sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut mags: Vec<f64> = m.iter().map(|&x| x.abs() as f64).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let target = total * preserve_fraction;
    let mut acc = 0.0;
    let mut count = 0usize;
    for v in mags {
        if acc >= target {
            break;
        }
        acc += v;
        count += 1;
    }
    count as f64 / m.len() as f64
}

/// Per-block non-zero histogram: `hist[k]` is the number of length-`m` row blocks that
/// contain exactly `k` non-zeros. The trailing partial block of each row is included.
pub fn block_nnz_histogram(matrix: &Matrix, m: usize) -> Vec<usize> {
    assert!(m > 0, "block size must be positive");
    let mut hist = vec![0usize; m + 1];
    for i in 0..matrix.rows() {
        for block in matrix.row(i).chunks(m) {
            let nnz = block.iter().filter(|&&x| x != 0.0).count();
            hist[nnz] += 1;
        }
    }
    hist
}

/// The `q`-th percentile (0.0–1.0) of a data slice, using nearest-rank interpolation.
///
/// Returns `None` for an empty slice.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Running summary statistics for a stream of scalar observations (used to accumulate
/// per-layer activation sparsity over calibration batches).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    values: Vec<f64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean of the observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.min(v)),
        })
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
    }

    /// The `q`-th percentile (0.0–1.0) of the observations, or `None` if empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        percentile(&self.values, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixGenerator;

    #[test]
    fn sparsity_and_density_sum_to_one() {
        let m = MatrixGenerator::seeded(1).sparse_uniform(32, 32, 0.6);
        assert!((sparsity_degree(&m) + density(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparsity_of_empty_matrix_is_zero() {
        assert_eq!(sparsity_degree(&Matrix::zeros(0, 0)), 0.0);
    }

    #[test]
    fn pseudo_density_on_relu_matches_density() {
        let m = Matrix::from_rows(&[vec![0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 1.0, 0.0]]);
        // 3 of 8 elements carry all the magnitude.
        let pd = pseudo_density(&m, 0.999);
        assert!((pd - 3.0 / 8.0).abs() < 1e-9, "pseudo-density {pd}");
    }

    #[test]
    fn pseudo_density_skewed_distribution() {
        // One dominant element carries 99% of the magnitude.
        let m = Matrix::from_rows(&[vec![100.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]]);
        let pd = pseudo_density(&m, 0.99);
        assert!(pd <= 2.0 / 8.0, "pseudo-density {pd}");
        // Preserving 100% requires every non-zero element.
        assert_eq!(pseudo_density(&m, 1.0), 1.0);
    }

    #[test]
    fn pseudo_density_all_zero_is_zero() {
        assert_eq!(pseudo_density(&Matrix::zeros(4, 4), 0.99), 0.0);
    }

    #[test]
    fn block_histogram_counts() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 2.0, 0.0],
        ]);
        let hist = block_nnz_histogram(&m, 4);
        assert_eq!(hist, vec![1, 1, 1, 0, 1]);
        assert_eq!(hist.iter().sum::<usize>(), 4);
    }

    #[test]
    fn percentile_nearest_rank() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 0.5), Some(3.0));
        assert_eq!(percentile(&data, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn running_stats_accumulation() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), None);
        for v in [0.2, 0.4, 0.6] {
            s.push(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean().unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), Some(0.2));
        assert_eq!(s.max(), Some(0.6));
        assert_eq!(s.percentile(0.99), Some(0.6));
    }
}

//! Norms and error metrics used to quantify TASD approximation quality.

use crate::Matrix;

/// Frobenius norm of a matrix: `sqrt(sum(x^2))`.
///
/// # Example
///
/// ```
/// use tasd_tensor::{frobenius_norm, Matrix};
///
/// let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
/// assert_eq!(frobenius_norm(&m), 5.0);
/// ```
pub fn frobenius_norm(m: &Matrix) -> f64 {
    m.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

/// Relative Frobenius error `||a - b||_F / ||a||_F`.
///
/// This is the matrix-multiplication error metric of the paper's Appendix A
/// (`||(A - A*)B|| / ||AB||` when applied to products). Returns `0.0` when both matrices
/// are all-zero and `f64::INFINITY` when only the reference is all-zero.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relative_frobenius_error(reference: &Matrix, approx: &Matrix) -> f64 {
    assert_eq!(
        reference.shape(),
        approx.shape(),
        "relative error requires matching shapes"
    );
    let diff = reference.try_sub(approx).expect("shapes already checked");
    let denom = frobenius_norm(reference);
    let num = frobenius_norm(&diff);
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Mean squared error between two matrices.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mean_squared_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse requires matching shapes");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Maximum absolute element-wise difference between two matrices.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn max_abs_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(
        a.shape(),
        b.shape(),
        "max abs error requires matching shapes"
    );
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| ((x - y) as f64).abs())
        .fold(0.0, f64::max)
}

/// Fraction of the reference's non-zero elements that are zeroed in `approx`
/// (the paper's "percentage of dropped non-zeros").
///
/// Returns `0.0` when the reference has no non-zeros.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn dropped_nonzero_fraction(reference: &Matrix, approx: &Matrix) -> f64 {
    assert_eq!(reference.shape(), approx.shape(), "shapes must match");
    let total = reference.count_nonzeros();
    if total == 0 {
        return 0.0;
    }
    let dropped = reference
        .iter()
        .zip(approx.iter())
        .filter(|(&r, &a)| r != 0.0 && a == 0.0)
        .count();
    dropped as f64 / total as f64
}

/// Fraction of the reference's total magnitude (sum of absolute values) that is lost in
/// `approx` (the paper's "percentage of dropped total magnitude").
///
/// Returns `0.0` when the reference is all-zero.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn dropped_magnitude_fraction(reference: &Matrix, approx: &Matrix) -> f64 {
    assert_eq!(reference.shape(), approx.shape(), "shapes must match");
    let total = reference.abs_sum();
    if total == 0.0 {
        return 0.0;
    }
    let dropped: f64 = reference
        .iter()
        .zip(approx.iter())
        .filter(|(&r, &a)| r != 0.0 && a == 0.0)
        .map(|(&r, _)| r.abs() as f64)
        .sum();
    dropped / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NmPattern;

    #[test]
    fn frobenius_basics() {
        assert_eq!(frobenius_norm(&Matrix::zeros(3, 3)), 0.0);
        let m = Matrix::identity(4);
        assert_eq!(frobenius_norm(&m), 2.0);
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * j) as f32);
        assert_eq!(relative_frobenius_error(&m, &m), 0.0);
    }

    #[test]
    fn relative_error_handles_zero_reference() {
        let z = Matrix::zeros(2, 2);
        assert_eq!(relative_frobenius_error(&z, &z), 0.0);
        let nz = Matrix::filled(2, 2, 1.0);
        assert!(relative_frobenius_error(&z, &nz).is_infinite());
    }

    #[test]
    fn mse_and_max_abs() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 6.0]]);
        assert_eq!(mean_squared_error(&a, &b), 1.0);
        assert_eq!(max_abs_error(&a, &b), 2.0);
        assert_eq!(mean_squared_error(&a, &a), 0.0);
    }

    #[test]
    fn dropped_fraction_matches_paper_example() {
        // Figure 4: the 2:4 view of A drops 3 of 10 non-zeros (30%) and 4 of 25 magnitude (16%).
        let a = Matrix::from_rows(&[
            vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 4.0, 1.0],
            vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 1.0, 4.0],
        ]);
        let view = NmPattern::new(2, 4).unwrap().view(&a);
        assert!((dropped_nonzero_fraction(&a, &view) - 0.3).abs() < 1e-9);
        assert!((dropped_magnitude_fraction(&a, &view) - 4.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_fraction_zero_reference() {
        let z = Matrix::zeros(2, 4);
        assert_eq!(dropped_nonzero_fraction(&z, &z), 0.0);
        assert_eq!(dropped_magnitude_fraction(&z, &z), 0.0);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn relative_error_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = relative_frobenius_error(&a, &b);
    }
}

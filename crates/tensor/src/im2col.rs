//! Convolution-to-GEMM lowering (`im2col`).
//!
//! The paper applies TASD only to CONV and FC layers because both lower to matrix
//! multiplication (§4.1). This module provides the `im2col` transformation used for that
//! lowering, plus the GEMM dimensions (`M`, `N`, `K`) a convolution maps to, which is what
//! the accelerator model and the MAC-reduction experiments consume.

use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution layer (single image, NCHW layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dDims {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Input spatial height.
    pub in_height: usize,
    /// Input spatial width.
    pub in_width: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dDims {
    /// Convenience constructor for a square-kernel convolution.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        in_size: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dDims {
            in_channels,
            out_channels,
            in_height: in_size,
            in_width: in_size,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        (self.in_height + 2 * self.padding).saturating_sub(self.kernel_h) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        (self.in_width + 2 * self.padding).saturating_sub(self.kernel_w) / self.stride + 1
    }

    /// GEMM dimensions `(M, N, K)` after im2col lowering for a batch of `batch` images:
    /// `M = out_h * out_w * batch` (output pixels), `N = out_channels`,
    /// `K = in_channels * kernel_h * kernel_w`.
    pub fn gemm_dims(&self, batch: usize) -> (usize, usize, usize) {
        (
            self.out_height() * self.out_width() * batch,
            self.out_channels,
            self.in_channels * self.kernel_h * self.kernel_w,
        )
    }

    /// Total dense MAC count for a batch of `batch` images.
    pub fn dense_macs(&self, batch: usize) -> u64 {
        let (m, n, k) = self.gemm_dims(batch);
        m as u64 * n as u64 * k as u64
    }

    /// Validates the geometry (kernel fits in the padded input, non-zero sizes).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvGeometry`] describing the problem.
    pub fn validate(&self) -> Result<()> {
        if self.in_channels == 0
            || self.out_channels == 0
            || self.in_height == 0
            || self.in_width == 0
            || self.kernel_h == 0
            || self.kernel_w == 0
            || self.stride == 0
        {
            return Err(TensorError::InvalidConvGeometry(
                "all conv dimensions must be positive".to_string(),
            ));
        }
        if self.kernel_h > self.in_height + 2 * self.padding
            || self.kernel_w > self.in_width + 2 * self.padding
        {
            return Err(TensorError::InvalidConvGeometry(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kernel_h,
                self.kernel_w,
                self.in_height + 2 * self.padding,
                self.in_width + 2 * self.padding
            )));
        }
        Ok(())
    }
}

/// Lowers a single-image activation tensor (given as a `(channels, height*width)` matrix in
/// channel-major order) to the im2col patch matrix of shape
/// `(out_h * out_w, in_channels * kernel_h * kernel_w)`.
///
/// Each row of the result is the flattened receptive field for one output pixel, so
/// convolution becomes `patches * weights^T` where `weights` is
/// `(out_channels, in_channels * kh * kw)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidConvGeometry`] if the geometry is invalid or the input
/// matrix shape does not match `dims`.
pub fn im2col(input: &Matrix, dims: &Conv2dDims) -> Result<Matrix> {
    dims.validate()?;
    if input.rows() != dims.in_channels || input.cols() != dims.in_height * dims.in_width {
        return Err(TensorError::InvalidConvGeometry(format!(
            "input matrix {}x{} does not match {} channels of {}x{}",
            input.rows(),
            input.cols(),
            dims.in_channels,
            dims.in_height,
            dims.in_width
        )));
    }
    let out_h = dims.out_height();
    let out_w = dims.out_width();
    let k = dims.in_channels * dims.kernel_h * dims.kernel_w;
    let mut patches = Matrix::zeros(out_h * out_w, k);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row_idx = oy * out_w + ox;
            let row = patches.row_mut(row_idx);
            let mut col = 0usize;
            for c in 0..dims.in_channels {
                for ky in 0..dims.kernel_h {
                    for kx in 0..dims.kernel_w {
                        let iy = (oy * dims.stride + ky) as isize - dims.padding as isize;
                        let ix = (ox * dims.stride + kx) as isize - dims.padding as isize;
                        row[col] = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < dims.in_height
                            && (ix as usize) < dims.in_width
                        {
                            input[(c, iy as usize * dims.in_width + ix as usize)]
                        } else {
                            0.0
                        };
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(patches)
}

/// Executes a convolution via im2col + GEMM.
///
/// `weights` must be `(out_channels, in_channels * kernel_h * kernel_w)` — i.e. each filter
/// flattened into a row. Returns the output as `(out_channels, out_h * out_w)`.
///
/// # Errors
///
/// Propagates geometry and shape errors from [`im2col`] and the GEMM.
pub fn conv2d_im2col(input: &Matrix, weights: &Matrix, dims: &Conv2dDims) -> Result<Matrix> {
    let k = dims.in_channels * dims.kernel_h * dims.kernel_w;
    if weights.rows() != dims.out_channels || weights.cols() != k {
        return Err(TensorError::InvalidConvGeometry(format!(
            "weight matrix {}x{} does not match ({}, {})",
            weights.rows(),
            weights.cols(),
            dims.out_channels,
            k
        )));
    }
    let patches = im2col(input, dims)?;
    // (out_pixels, K) x (K, out_channels) -> transpose to (out_channels, out_pixels)
    let out = crate::gemm::gemm(&patches, &weights.transpose())?;
    Ok(out.transpose())
}

/// Reference direct convolution (no lowering) for validating the im2col path.
///
/// Shapes are as in [`conv2d_im2col`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidConvGeometry`] on shape mismatches.
pub fn conv2d_direct(input: &Matrix, weights: &Matrix, dims: &Conv2dDims) -> Result<Matrix> {
    dims.validate()?;
    let k = dims.in_channels * dims.kernel_h * dims.kernel_w;
    if weights.rows() != dims.out_channels || weights.cols() != k {
        return Err(TensorError::InvalidConvGeometry(
            "weight shape mismatch".to_string(),
        ));
    }
    if input.rows() != dims.in_channels || input.cols() != dims.in_height * dims.in_width {
        return Err(TensorError::InvalidConvGeometry(
            "input shape mismatch".to_string(),
        ));
    }
    let out_h = dims.out_height();
    let out_w = dims.out_width();
    let mut out = Matrix::zeros(dims.out_channels, out_h * out_w);
    for oc in 0..dims.out_channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0f32;
                let mut widx = 0usize;
                for c in 0..dims.in_channels {
                    for ky in 0..dims.kernel_h {
                        for kx in 0..dims.kernel_w {
                            let iy = (oy * dims.stride + ky) as isize - dims.padding as isize;
                            let ix = (ox * dims.stride + kx) as isize - dims.padding as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < dims.in_height
                                && (ix as usize) < dims.in_width
                            {
                                acc += weights[(oc, widx)]
                                    * input[(c, iy as usize * dims.in_width + ix as usize)];
                            }
                            widx += 1;
                        }
                    }
                }
                out[(oc, oy * out_w + ox)] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::MatrixGenerator;

    #[test]
    fn output_dims_basic() {
        let d = Conv2dDims::square(3, 8, 32, 3, 1, 1);
        assert_eq!(d.out_height(), 32);
        assert_eq!(d.out_width(), 32);
        let d2 = Conv2dDims::square(3, 8, 32, 3, 2, 1);
        assert_eq!(d2.out_height(), 16);
        let d3 = Conv2dDims::square(3, 8, 224, 7, 2, 3);
        assert_eq!(d3.out_height(), 112);
    }

    #[test]
    fn gemm_dims_and_macs() {
        // ResNet-50 conv example from Table 4 (L2-like): 3x3 conv, 64 channels, 56x56.
        let d = Conv2dDims::square(64, 64, 56, 3, 1, 1);
        let (m, n, k) = d.gemm_dims(1);
        assert_eq!(m, 3136);
        assert_eq!(n, 64);
        assert_eq!(k, 576);
        assert_eq!(d.dense_macs(1), 3136 * 64 * 576);
        assert_eq!(d.gemm_dims(4).0, 4 * 3136);
    }

    #[test]
    fn geometry_validation() {
        assert!(Conv2dDims::square(3, 8, 8, 3, 1, 0).validate().is_ok());
        assert!(Conv2dDims::square(0, 8, 8, 3, 1, 0).validate().is_err());
        assert!(Conv2dDims::square(3, 8, 2, 5, 1, 0).validate().is_err());
        // Padding can make an otherwise-too-big kernel fit.
        assert!(Conv2dDims::square(3, 8, 2, 5, 1, 2).validate().is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel: patches are just the input pixels, one channel per column.
        let d = Conv2dDims::square(2, 4, 3, 1, 1, 0);
        let input = Matrix::from_fn(2, 9, |c, p| (c * 9 + p) as f32);
        let patches = im2col(&input, &d).unwrap();
        assert_eq!(patches.shape(), (9, 2));
        assert_eq!(patches[(4, 0)], input[(0, 4)]);
        assert_eq!(patches[(4, 1)], input[(1, 4)]);
    }

    #[test]
    fn im2col_conv_matches_direct_conv() {
        let mut gen = MatrixGenerator::seeded(10);
        for &(c_in, c_out, size, k, stride, pad) in &[
            (3usize, 4usize, 8usize, 3usize, 1usize, 1usize),
            (2, 5, 9, 3, 2, 0),
            (4, 4, 7, 1, 1, 0),
            (1, 2, 6, 5, 1, 2),
        ] {
            let d = Conv2dDims::square(c_in, c_out, size, k, stride, pad);
            let input = gen.normal(c_in, size * size, 0.0, 1.0);
            let weights = gen.normal(c_out, c_in * k * k, 0.0, 1.0);
            let via_gemm = conv2d_im2col(&input, &weights, &d).unwrap();
            let direct = conv2d_direct(&input, &weights, &d).unwrap();
            assert!(
                via_gemm.approx_eq(&direct, 1e-3),
                "mismatch for {c_in}->{c_out} k={k} s={stride} p={pad}"
            );
        }
    }

    #[test]
    fn conv_shape_errors() {
        let d = Conv2dDims::square(3, 4, 8, 3, 1, 1);
        let input = Matrix::zeros(3, 64);
        let bad_weights = Matrix::zeros(4, 26);
        assert!(conv2d_im2col(&input, &bad_weights, &d).is_err());
        let bad_input = Matrix::zeros(2, 64);
        let weights = Matrix::zeros(4, 27);
        assert!(conv2d_im2col(&bad_input, &weights, &d).is_err());
        assert!(conv2d_direct(&bad_input, &weights, &d).is_err());
    }

    #[test]
    fn padding_zeros_appear_in_patches() {
        let d = Conv2dDims::square(1, 1, 2, 3, 1, 1);
        let input = Matrix::filled(1, 4, 1.0);
        let patches = im2col(&input, &d).unwrap();
        // Top-left output pixel: 4 of 9 taps are inside the 2x2 input.
        let first_row_nonzeros = patches.row(0).iter().filter(|&&x| x != 0.0).count();
        assert_eq!(first_row_nonzeros, 4);
    }
}

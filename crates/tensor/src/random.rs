//! Seeded random matrix generation for experiments.
//!
//! The paper's synthetic-data studies (Appendix A) use uniform and normal value
//! distributions with controlled densities; the DNN experiments need magnitude-pruned
//! weights with per-layer sparsity targets. All generators here are deterministic given a
//! seed so every experiment in this repository is reproducible.

use crate::{Matrix, NmPattern};
use rand::distributions::Distribution;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random matrix generator.
///
/// # Example
///
/// ```
/// use tasd_tensor::MatrixGenerator;
///
/// let mut gen = MatrixGenerator::seeded(42);
/// let a = gen.sparse_normal(64, 64, 0.8);
/// let sparsity = 1.0 - a.count_nonzeros() as f64 / a.len() as f64;
/// assert!((sparsity - 0.8).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixGenerator {
    rng: ChaCha8Rng,
}

impl MatrixGenerator {
    /// Creates a generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        MatrixGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Matrix with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        let rng = &mut self.rng;
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
    }

    /// Matrix with elements drawn from a normal distribution.
    pub fn normal(&mut self, rows: usize, cols: usize, mean: f32, std_dev: f32) -> Matrix {
        let dist = NormalApprox::new(mean, std_dev);
        let rng = &mut self.rng;
        Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
    }

    /// Unstructured sparse matrix: each element is zero with probability `sparsity` and
    /// otherwise drawn uniformly from `[0, 1)` (the distribution used by the paper's
    /// Appendix A matrix-multiplication study).
    pub fn sparse_uniform(&mut self, rows: usize, cols: usize, sparsity: f64) -> Matrix {
        let rng = &mut self.rng;
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen_bool(sparsity.clamp(0.0, 1.0)) {
                0.0
            } else {
                rng.gen_range(0.0..1.0)
            }
        })
    }

    /// Unstructured sparse matrix with normally-distributed non-zeros
    /// (mean 0, std 1/3 — the distribution used in the paper's Appendix A drop study).
    pub fn sparse_normal(&mut self, rows: usize, cols: usize, sparsity: f64) -> Matrix {
        let dist = NormalApprox::new(0.0, 1.0 / 3.0);
        let rng = &mut self.rng;
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen_bool(sparsity.clamp(0.0, 1.0)) {
                0.0
            } else {
                dist.sample(rng)
            }
        })
    }

    /// Dense weight matrix followed by global magnitude pruning to exactly the requested
    /// sparsity degree (fraction of zeros). This mimics unstructured magnitude pruning of a
    /// trained layer: small-magnitude weights are removed first.
    pub fn magnitude_pruned(&mut self, rows: usize, cols: usize, sparsity: f64) -> Matrix {
        let dense = self.normal(rows, cols, 0.0, 1.0);
        magnitude_prune(&dense, sparsity)
    }

    /// Matrix that exactly satisfies an N:M structured pattern: in each block, `n` randomly
    /// chosen positions hold normally-distributed values and the rest are zero.
    pub fn structured_nm(&mut self, rows: usize, cols: usize, pattern: NmPattern) -> Matrix {
        let mut out = Matrix::zeros(rows, cols);
        let dist = NormalApprox::new(0.0, 1.0);
        for i in 0..rows {
            let row = out.row_mut(i);
            for block in row.chunks_mut(pattern.m()) {
                let len = block.len();
                let mut idx: Vec<usize> = (0..len).collect();
                idx.shuffle(&mut self.rng);
                for &p in idx.iter().take(pattern.n().min(len)) {
                    block[p] = dist.sample(&mut self.rng);
                }
            }
        }
        out
    }

    /// Activation-like matrix: values drawn from a normal distribution and passed through
    /// ReLU, producing roughly `50%` natural sparsity; `shift` moves the pre-activation
    /// mean so callers can dial the sparsity degree up or down.
    pub fn relu_activations(&mut self, rows: usize, cols: usize, shift: f32) -> Matrix {
        let pre = self.normal(rows, cols, shift, 1.0);
        pre.map(|x| x.max(0.0))
    }

    /// GELU-like activation matrix: (almost entirely) free of exact zeros but with many
    /// tiny-magnitude values — the skewed distribution the paper's pseudo-density heuristic
    /// targets. Pre-activations are drawn with a negative mean (−1.0, σ = 1.5), matching
    /// the emergent "lazy neuron" behaviour of trained Transformer FFNs where most GELU
    /// outputs sit near zero and a minority carry the magnitude (Li et al., 2023).
    pub fn gelu_activations(&mut self, rows: usize, cols: usize) -> Matrix {
        let pre = self.normal(rows, cols, -1.5, 1.5);
        pre.map(gelu)
    }

    /// Returns a uniformly random value in `[0, 1)`, exposed so callers sharing this
    /// generator do not need a second RNG.
    pub fn unit(&mut self) -> f32 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Draws a value from a normal distribution with the given parameters.
    pub fn normal_scalar(&mut self, mean: f32, std_dev: f32) -> f32 {
        NormalApprox::new(mean, std_dev).sample(&mut self.rng)
    }

    /// Random index below `bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }
}

/// Gaussian error linear unit, used to synthesize GELU-style dense activations.
pub fn gelu(x: f32) -> f32 {
    // tanh approximation of GELU (Hendrycks & Gimpel, 2016).
    0.5 * x * (1.0 + ((0.797_884_6 * (x + 0.044_715 * x * x * x)).tanh()))
}

/// Globally magnitude-prunes `m` to the requested sparsity degree (fraction of zeros),
/// removing the smallest-magnitude elements first.
pub fn magnitude_prune(m: &Matrix, sparsity: f64) -> Matrix {
    let sparsity = sparsity.clamp(0.0, 1.0);
    let total = m.len();
    let n_zero = ((total as f64) * sparsity).round() as usize;
    if n_zero == 0 {
        return m.clone();
    }
    let mut mags: Vec<(f32, usize)> = m
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &x)| (x.abs(), i))
        .collect();
    mags.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = m.clone();
    let slice = out.as_mut_slice();
    for &(_, i) in mags.iter().take(n_zero.min(total)) {
        slice[i] = 0.0;
    }
    out
}

/// Box–Muller normal sampler (keeps the dependency surface to `rand` core only).
#[derive(Debug, Clone, Copy)]
struct NormalApprox {
    mean: f32,
    std_dev: f32,
}

impl NormalApprox {
    fn new(mean: f32, std_dev: f32) -> Self {
        NormalApprox { mean, std_dev }
    }
}

impl Distribution<f32> for NormalApprox {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{pseudo_density, sparsity_degree};

    #[test]
    fn generation_is_deterministic_for_same_seed() {
        let a = MatrixGenerator::seeded(3).normal(8, 8, 0.0, 1.0);
        let b = MatrixGenerator::seeded(3).normal(8, 8, 0.0, 1.0);
        let c = MatrixGenerator::seeded(4).normal(8, 8, 0.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = MatrixGenerator::seeded(1).uniform(32, 32, -2.0, 3.0);
        assert!(m.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = MatrixGenerator::seeded(9).normal(64, 64, 5.0, 2.0);
        let mean = m.sum() / m.len() as f32;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        let var: f32 = m.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32;
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn sparse_uniform_hits_target_density() {
        let m = MatrixGenerator::seeded(5).sparse_uniform(128, 128, 0.75);
        let s = sparsity_degree(&m);
        assert!((s - 0.75).abs() < 0.02, "sparsity {s}");
        assert!(m.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn magnitude_prune_exact_count_and_smallest_first() {
        let m = Matrix::from_rows(&[vec![0.1, -5.0, 0.2, 3.0, -0.05, 1.0, 2.0, -0.3]]);
        let pruned = magnitude_prune(&m, 0.5);
        assert_eq!(pruned.count_zeros(), 4);
        // The 4 smallest magnitudes (0.05, 0.1, 0.2, 0.3) are removed.
        assert_eq!(pruned.row(0), &[0.0, -5.0, 0.0, 3.0, 0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn magnitude_pruned_generator_matches_target() {
        let m = MatrixGenerator::seeded(2).magnitude_pruned(64, 64, 0.95);
        let s = sparsity_degree(&m);
        assert!((s - 0.95).abs() < 1e-3, "sparsity {s}");
    }

    #[test]
    fn structured_generator_satisfies_pattern() {
        let p = NmPattern::new(2, 8).unwrap();
        let m = MatrixGenerator::seeded(7).structured_nm(16, 64, p);
        assert!(p.is_satisfied_by(&m));
        // Every block holds exactly n non-zeros (with overwhelming probability the sampled
        // normal values are non-zero).
        assert_eq!(m.count_nonzeros(), p.max_nonzeros(16, 64));
    }

    #[test]
    fn relu_activations_are_nonnegative_and_sparse() {
        let m = MatrixGenerator::seeded(8).relu_activations(64, 64, 0.0);
        assert!(m.iter().all(|&x| x >= 0.0));
        let s = sparsity_degree(&m);
        assert!((0.4..0.6).contains(&s), "sparsity {s}");
        // Positive shift reduces sparsity.
        let denser = MatrixGenerator::seeded(8).relu_activations(64, 64, 1.0);
        assert!(sparsity_degree(&denser) < s);
    }

    #[test]
    fn gelu_activations_are_dense_but_skewed() {
        let m = MatrixGenerator::seeded(8).gelu_activations(64, 64);
        // GELU never clips to zero the way ReLU does; a handful of exact zeros can appear
        // from f32 tanh saturation on extreme negative pre-activations, nothing more.
        assert!(
            sparsity_degree(&m) < 0.02,
            "sparsity {}",
            sparsity_degree(&m)
        );
        // Many tiny-magnitude values: the median magnitude is far below the max.
        let mut mags: Vec<f32> = m.iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = mags[mags.len() / 2];
        let max = *mags.last().unwrap();
        assert!(median < max / 4.0, "median {median}, max {max}");
        // Pseudo-density is meaningfully below 1: a subset of elements carries 99% of the
        // magnitude, which is what TASD-A's pseudo-density heuristic keys on.
        assert!(pseudo_density(&m, 0.99) < 0.85);
    }

    #[test]
    fn gelu_function_shape() {
        assert!(gelu(0.0).abs() < 1e-6);
        assert!(gelu(3.0) > 2.9);
        assert!(gelu(-3.0).abs() < 0.01);
        assert!(gelu(-0.5) < 0.0);
    }
}

//! Parallel row-block tiling over any inner GEMM backend.

use super::{CostHint, GemmBackend, GemmOperand};
use crate::Matrix;
use rayon::prelude::*;
use std::sync::Arc;

/// Parallel row-block tiling: splits the output rows into contiguous blocks and executes
/// each block's `gemm_rows_into` on a worker thread via the inner backend.
///
/// Row blocks are independent by construction — each worker owns a disjoint slab of `C`
/// and only reads `A` and `B` — so no synchronization is needed beyond the final join,
/// and results are bit-identical to a sequential run of the inner backend (each output
/// row's accumulation order is unchanged).
///
/// Small problems are not worth forking for: below
/// [`min_parallel_macs`](ParallelBackend::with_min_parallel_macs) estimated MACs (default
/// 2²¹ ≈ 2M) the inner backend runs inline on the calling thread.
#[derive(Debug, Clone)]
pub struct ParallelBackend {
    inner: Arc<dyn GemmBackend>,
    min_parallel_macs: u64,
}

impl ParallelBackend {
    /// Work threshold (in estimated MACs) below which execution stays sequential.
    pub const DEFAULT_MIN_PARALLEL_MACS: u64 = 1 << 21;

    /// Parallel tiling over the given inner backend.
    pub fn over(inner: Arc<dyn GemmBackend>) -> Self {
        ParallelBackend {
            inner,
            min_parallel_macs: Self::DEFAULT_MIN_PARALLEL_MACS,
        }
    }

    /// Sets the sequential-fallback work threshold (in estimated MACs).
    #[must_use]
    pub fn with_min_parallel_macs(mut self, macs: u64) -> Self {
        self.min_parallel_macs = macs;
        self
    }

    /// The wrapped inner backend.
    pub fn inner(&self) -> &Arc<dyn GemmBackend> {
        &self.inner
    }

    /// Row-block size for an `m`-row output on `workers` threads: enough blocks for load
    /// balance (4 per worker), never smaller than 4 rows.
    fn block_rows(m: usize, workers: usize) -> usize {
        let target_blocks = workers.max(1) * 4;
        m.div_ceil(target_blocks).max(4)
    }
}

impl Default for ParallelBackend {
    fn default() -> Self {
        ParallelBackend::over(Arc::new(super::DenseBackend::default()))
    }
}

impl GemmBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn gemm_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        c: &mut Matrix,
    ) -> Result<(), crate::TensorError> {
        super::check_shapes(self.name(), lhs, b, c)?;
        let (m, _) = lhs.shape();
        let n_cols = b.cols();
        let workers = rayon::current_num_threads();
        // Cost hints scan the operand's non-zeros, an O(nnz) pass — only pay for it once
        // the cheap structural checks say parallelism is even possible (single worker and
        // single-row calls go inline regardless of the hint), and skip it too when the
        // threshold is 0 (the execution engine pre-decides parallelism and builds
        // wrappers that way).
        let below_threshold = || {
            self.min_parallel_macs > 0
                && self.inner.cost_hint(lhs, n_cols).total() < self.min_parallel_macs
        };
        if workers <= 1 || m < 2 || below_threshold() {
            self.inner
                .gemm_rows_into(lhs, b, 0, m, c.rows_slice_mut(0, m), n_cols);
            return Ok(());
        }
        let block = Self::block_rows(m, workers);
        let inner = &self.inner;
        c.rows_slice_mut(0, m)
            .par_chunks_mut(block * n_cols.max(1))
            .enumerate()
            .for_each(|(chunk_idx, slab)| {
                let r0 = chunk_idx * block;
                let r1 = (r0 + slab.len() / n_cols.max(1)).min(m);
                inner.gemm_rows_into(lhs, b, r0, r1, slab, n_cols);
            });
        Ok(())
    }

    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        // Inside another backend's tiling: stay sequential (no nested parallelism).
        self.inner.gemm_rows_into(lhs, b, r0, r1, c_rows, n_cols);
    }

    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
        let inner = self.inner.cost_hint(lhs, n_cols);
        if inner.total() < self.min_parallel_macs {
            return inner;
        }
        let workers = rayon::current_num_threads().max(1) as u64;
        // Ideal speedup on compute, overhead unchanged (scratch fills also parallelize,
        // but keep the hint conservative).
        CostHint {
            compute_macs: inner.compute_macs / workers,
            overhead_macs: inner.overhead_macs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CsrBackend, DenseBackend, NmBackend};
    use crate::{gemm, CsrMatrix, MatrixGenerator};

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let mut gen = MatrixGenerator::seeded(41);
        let a = gen.sparse_normal(97, 64, 0.6);
        let b = gen.normal(64, 33, 0.0, 1.0);
        let inner = Arc::new(DenseBackend::default());
        let parallel = ParallelBackend::over(inner.clone()).with_min_parallel_macs(0);
        let mut seq = Matrix::zeros(97, 33);
        let mut par = Matrix::zeros(97, 33);
        inner.gemm_into(&a, &b, &mut seq).unwrap();
        parallel.gemm_into(&a, &b, &mut par).unwrap();
        // Row-block tiling preserves each row's accumulation order exactly.
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_over_every_inner_backend_is_correct() {
        let mut gen = MatrixGenerator::seeded(42);
        let a = gen.sparse_normal(61, 48, 0.8);
        let csr = CsrMatrix::from_dense(&a);
        let b = gen.normal(48, 21, 0.0, 1.0);
        let reference = gemm(&a, &b).unwrap();
        let inners: [Arc<dyn GemmBackend>; 3] = [
            Arc::new(DenseBackend::default()),
            Arc::new(CsrBackend::default()),
            Arc::new(NmBackend::default()),
        ];
        for inner in inners {
            let name = inner.name();
            let parallel = ParallelBackend::over(inner).with_min_parallel_macs(0);
            let mut c = Matrix::zeros(61, 21);
            parallel.gemm_into(&csr, &b, &mut c).unwrap();
            assert!(c.approx_eq(&reference, 1e-4), "parallel over {name}");
        }
    }

    #[test]
    fn small_problems_run_inline() {
        // Threshold far above the problem size: must still be correct (inline path).
        let mut gen = MatrixGenerator::seeded(43);
        let a = gen.normal(5, 6, 0.0, 1.0);
        let b = gen.normal(6, 4, 0.0, 1.0);
        let parallel = ParallelBackend::default().with_min_parallel_macs(u64::MAX);
        let mut c = Matrix::zeros(5, 4);
        parallel.gemm_into(&a, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }

    #[test]
    fn inline_path_never_pays_the_cost_hint_scan() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Inner backend that counts cost_hint calls (each one is an O(nnz) operand
        /// scan the inline path must not pay).
        #[derive(Debug)]
        struct CountingBackend {
            inner: DenseBackend,
            hints: AtomicU64,
        }
        impl GemmBackend for CountingBackend {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn gemm_rows_into(
                &self,
                lhs: &dyn GemmOperand,
                b: &Matrix,
                r0: usize,
                r1: usize,
                c_rows: &mut [f32],
                n_cols: usize,
            ) {
                self.inner.gemm_rows_into(lhs, b, r0, r1, c_rows, n_cols);
            }
            fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
                self.hints.fetch_add(1, Ordering::Relaxed);
                self.inner.cost_hint(lhs, n_cols)
            }
        }

        let mut gen = MatrixGenerator::seeded(44);
        // m = 1 forces the structural inline path on any worker count, so this test is
        // deterministic whether the ambient rayon pool has 1 thread or 64.
        let a = gen.normal(1, 32, 0.0, 1.0);
        let b = gen.normal(32, 16, 0.0, 1.0);
        let counting = Arc::new(CountingBackend {
            inner: DenseBackend::default(),
            hints: AtomicU64::new(0),
        });
        let parallel = ParallelBackend::over(counting.clone());
        let mut c = Matrix::zeros(1, 16);
        parallel.gemm_into(&a, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
        assert_eq!(
            counting.hints.load(Ordering::Relaxed),
            0,
            "structurally-inline calls must not scan the operand for a cost hint"
        );
    }

    #[test]
    fn block_rows_balances_threads() {
        assert!(ParallelBackend::block_rows(1024, 8) >= 4);
        assert_eq!(ParallelBackend::block_rows(8, 64), 4);
        // Enough blocks to occupy every worker when rows allow it.
        let block = ParallelBackend::block_rows(512, 8);
        assert!(512usize.div_ceil(block) >= 8);
    }
}

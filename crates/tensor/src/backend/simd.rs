//! Runtime-dispatched SIMD microkernels for the GEMM backends.
//!
//! Every backend's innermost loop is some variant of an `axpy`: one left-hand value
//! broadcast against a contiguous span of `B`, accumulated into the matching span of
//! `C`. This module provides that primitive at three instruction tiers and picks the
//! tier **once**, at backend construction — never per call:
//!
//! * [`SimdLevel::Avx2Fma`] / [`SimdLevel::AvxFma`] — 256-bit 8-lane f32 FMA through
//!   `std::arch` intrinsics, selected when the CPU reports the features at runtime.
//!   The two tiers share the same f32 kernels (AVX2 adds integer ops, nothing for
//!   f32 FMA panels); they are kept distinct so bench labels and telemetry name the
//!   actual ISA tier, and so a future integer-metadata kernel (IndexMAC-style lane
//!   gathers for N:M operands) can specialize without re-detection.
//! * [`SimdLevel::Portable`] — a hand-unrolled 8-wide scalar kernel with eight
//!   independent accumulation statements per step: safe code the autovectorizer
//!   reliably turns into the widest SSE/AVX the build target allows, and the always-
//!   available fallback on non-x86-64 targets or when forced for testing.
//!
//! Detection happens in [`SimdLevel::detect`]; backends capture the result in a field
//! at construction (`is_x86_feature_detected!` never runs on a kernel path). The
//! `TASD_SIMD` environment variable (`portable`, `avx-fma`, `avx2-fma`) overrides
//! detection at construction time — CI uses `TASD_SIMD=portable` to force the fallback
//! arm through the whole suite on hardware that would otherwise dispatch AVX.
//!
//! # Numerical contract
//!
//! The portable kernel performs exactly the scalar `c[j] += v * b[j]` operations in
//! element order — bitwise identical to the scalar reference kernels. The FMA tiers
//! fuse the multiply-add (one rounding instead of two), so results may differ from the
//! scalar path in the last ULP; agreement is within `1e-6` relative on well-scaled
//! inputs (pinned by `tests/simd_kernels.rs`). All tiers honor the backends'
//! zero-annihilation contract ([`GemmBackend`](super::GemmBackend)): a caller only
//! invokes these kernels for non-zero `v` lanes.

use std::sync::OnceLock;

/// The instruction tier a backend's inner kernels run at, fixed at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// 256-bit f32 FMA, CPU reports AVX2+FMA (shares kernels with [`SimdLevel::AvxFma`]).
    Avx2Fma,
    /// 256-bit f32 FMA, CPU reports AVX+FMA.
    AvxFma,
    /// Hand-unrolled 8-wide scalar fallback — always available, autovectorizer-friendly,
    /// bitwise identical to the scalar reference kernels.
    Portable,
}

impl SimdLevel {
    /// Short stable name for bench labels and logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Avx2Fma => "avx2-fma",
            SimdLevel::AvxFma => "avx-fma",
            SimdLevel::Portable => "portable",
        }
    }

    /// Detects the best available tier, honoring a `TASD_SIMD` override.
    ///
    /// An override naming a tier the CPU does not support falls back to the best
    /// supported tier (never silently to a *wider* one); unknown values are ignored.
    /// This is the construction-time entry — backends call it once and store the
    /// result, so no kernel path ever re-runs feature detection.
    pub fn detect() -> SimdLevel {
        Self::resolve(
            std::env::var("TASD_SIMD").ok().as_deref(),
            Self::best_supported(),
        )
    }

    /// Applies a `TASD_SIMD`-style override against the best hardware-supported tier
    /// (factored out of [`detect`](Self::detect) so tests need not mutate process env).
    fn resolve(requested: Option<&str>, best: SimdLevel) -> SimdLevel {
        match requested {
            Some("portable") => SimdLevel::Portable,
            Some("avx-fma") if best != SimdLevel::Portable => SimdLevel::AvxFma,
            Some("avx2-fma") if best == SimdLevel::Avx2Fma => SimdLevel::Avx2Fma,
            _ => best,
        }
    }

    /// The process-wide detected tier, computed once and cached. This is what code
    /// without a construction seam (e.g. [`CsrMatrix::spmm`](crate::CsrMatrix::spmm)
    /// convenience entries) dispatches on: one relaxed atomic load, no per-call
    /// feature detection.
    pub fn detected() -> SimdLevel {
        static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
        *DETECTED.get_or_init(SimdLevel::detect)
    }

    #[cfg(target_arch = "x86_64")]
    fn best_supported() -> SimdLevel {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            SimdLevel::Avx2Fma
        } else if is_x86_feature_detected!("avx") && is_x86_feature_detected!("fma") {
            SimdLevel::AvxFma
        } else {
            SimdLevel::Portable
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn best_supported() -> SimdLevel {
        SimdLevel::Portable
    }
}

/// `c[j] += v * b[j]` across equal-length spans — the single-row inner kernel behind
/// the CSR, N:M, and dense-remainder row loops. Callers skip `v == 0.0` (the
/// zero-annihilation contract); `b` and `c` must have equal lengths.
// lint: hot-path, warm-path
#[inline]
pub fn axpy(level: SimdLevel, v: f32, b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(b.len(), c.len(), "axpy span mismatch");
    match level {
        SimdLevel::Portable => axpy_portable(v, b, c),
        // SAFETY: these levels are only constructed after `is_x86_feature_detected!`
        // confirmed AVX and FMA at detection time (SimdLevel::detect), so the
        // target-feature kernel's ISA requirement is met on this CPU.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma | SimdLevel::AvxFma => unsafe { axpy_fma(v, b, c) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_portable(v, b, c),
    }
}

/// Four-row fused axpy: `c_q[j] += v[q] * b[j]` for `q = 0..4` — the register-blocked
/// dense kernel's inner tile, where four output rows share every `B` load. Lanes whose
/// `v` is exactly zero are skipped per the zero-annihilation contract; when all four
/// lanes are live the fused path amortizes each `B` load across four FMA streams.
// lint: hot-path, warm-path, allow(indexing): v is [f32; 4], so the fixed indices
// 0..4 cannot be out of bounds
#[inline]
pub fn axpy4(
    level: SimdLevel,
    v: [f32; 4],
    b: &[f32],
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
) {
    if v[0] != 0.0 && v[1] != 0.0 && v[2] != 0.0 && v[3] != 0.0 {
        match level {
            SimdLevel::Portable => axpy4_portable(v, b, c0, c1, c2, c3),
            // SAFETY: these levels are only constructed after runtime detection
            // confirmed AVX and FMA (see SimdLevel::detect), so the target-feature
            // kernel may be called on this CPU.
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2Fma | SimdLevel::AvxFma => unsafe { axpy4_fma(v, b, c0, c1, c2, c3) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => axpy4_portable(v, b, c0, c1, c2, c3),
        }
        return;
    }
    // Mixed-zero group: per-lane dispatch so zero lanes contribute nothing (0·NaN
    // must not leak into C) while live lanes keep the wide kernel.
    for (vq, cq) in [(v[0], c0), (v[1], c1), (v[2], c2), (v[3], c3)] {
        if vq != 0.0 {
            axpy(level, vq, b, cq);
        }
    }
}

/// Hand-unrolled 8-wide portable axpy: eight independent statements per step keep eight
/// accumulation streams in flight (the autovectorizer maps them onto whatever vector
/// width the build target has), and each element still sees exactly the scalar
/// `c[j] += v * b[j]` — bitwise identical to the reference kernels.
// lint: hot-path, warm-path, allow(indexing): chunks_exact yields exactly-8-element
// windows, so the fixed indices 0..8 are always in bounds
fn axpy_portable(v: f32, b: &[f32], c: &mut [f32]) {
    let mut cw = c.chunks_exact_mut(8);
    let mut bw = b.chunks_exact(8);
    for (cb, bb) in (&mut cw).zip(&mut bw) {
        cb[0] += v * bb[0];
        cb[1] += v * bb[1];
        cb[2] += v * bb[2];
        cb[3] += v * bb[3];
        cb[4] += v * bb[4];
        cb[5] += v * bb[5];
        cb[6] += v * bb[6];
        cb[7] += v * bb[7];
    }
    for (cv, bv) in cw.into_remainder().iter_mut().zip(bw.remainder()) {
        *cv += v * bv;
    }
}

/// Portable four-row fused axpy (all lanes live): one pass over `b`, four accumulation
/// streams per load, same per-element operation order as four sequential
/// [`axpy_portable`] calls — so results stay bitwise identical to the scalar kernels.
// lint: hot-path, warm-path
fn axpy4_portable(
    v: [f32; 4],
    b: &[f32],
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
) {
    let [v0, v1, v2, v3] = v;
    for ((((bv, cv0), cv1), cv2), cv3) in b
        .iter()
        .zip(c0.iter_mut())
        .zip(c1.iter_mut())
        .zip(c2.iter_mut())
        .zip(c3.iter_mut())
    {
        let bv = *bv;
        *cv0 += v0 * bv;
        *cv1 += v1 * bv;
        *cv2 += v2 * bv;
        *cv3 += v3 * bv;
    }
}

/// 256-bit FMA axpy: 8 f32 lanes per step, unaligned loads (matrix rows carry no
/// alignment guarantee), scalar fused tail.
///
/// # Safety
///
/// The caller must have verified at runtime that this CPU supports AVX and FMA
/// (`SimdLevel::detect` does; the dispatchers above only reach here through a
/// detection-gated level).
// lint: hot-path, warm-path, allow(indexing): `tail` starts at the last full 8-lane
// chunk, so every scalar index below is within both slices
// SAFETY: see the # Safety section — callable only behind runtime AVX+FMA detection.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx", enable = "fma")]
unsafe fn axpy_fma(v: f32, b: &[f32], c: &mut [f32]) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    let n = c.len().min(b.len());
    let chunks = n / 8;
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    // SAFETY: `i * 8 + 8 <= chunks * 8 <= n` bounds every 8-lane load/store inside
    // both slices; unaligned load/store intrinsics carry no alignment requirement.
    unsafe {
        let vv = _mm256_set1_ps(v);
        for i in 0..chunks {
            let at = i * 8;
            let bv = _mm256_loadu_ps(bp.add(at));
            let cv = _mm256_loadu_ps(cp.add(at));
            _mm256_storeu_ps(cp.add(at), _mm256_fmadd_ps(vv, bv, cv));
        }
    }
    for j in chunks * 8..n {
        c[j] = v.mul_add(b[j], c[j]);
    }
}

/// 256-bit FMA four-row fused axpy (all lanes live): each 8-lane `B` load feeds four
/// FMA streams — the 4×8 tile the register-blocked dense kernel is built from.
///
/// # Safety
///
/// The caller must have verified at runtime that this CPU supports AVX and FMA
/// (`SimdLevel::detect` does; the dispatchers above only reach here through a
/// detection-gated level).
// lint: hot-path, warm-path, allow(indexing): `tail` indices start at the last full
// 8-lane chunk, so every scalar index below is within all five slices
// SAFETY: see the # Safety section — callable only behind runtime AVX+FMA detection.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx", enable = "fma")]
unsafe fn axpy4_fma(
    v: [f32; 4],
    b: &[f32],
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    let n = b
        .len()
        .min(c0.len())
        .min(c1.len())
        .min(c2.len())
        .min(c3.len());
    let chunks = n / 8;
    let bp = b.as_ptr();
    let (p0, p1, p2, p3) = (
        c0.as_mut_ptr(),
        c1.as_mut_ptr(),
        c2.as_mut_ptr(),
        c3.as_mut_ptr(),
    );
    // SAFETY: `i * 8 + 8 <= chunks * 8 <= n` and `n` is the minimum of all five slice
    // lengths, so every 8-lane load/store is in bounds for its slice; the unaligned
    // intrinsics carry no alignment requirement, and the four output slices are
    // disjoint `&mut` borrows by construction.
    unsafe {
        let v0 = _mm256_set1_ps(v[0]);
        let v1 = _mm256_set1_ps(v[1]);
        let v2 = _mm256_set1_ps(v[2]);
        let v3 = _mm256_set1_ps(v[3]);
        for i in 0..chunks {
            let at = i * 8;
            let bv = _mm256_loadu_ps(bp.add(at));
            _mm256_storeu_ps(
                p0.add(at),
                _mm256_fmadd_ps(v0, bv, _mm256_loadu_ps(p0.add(at))),
            );
            _mm256_storeu_ps(
                p1.add(at),
                _mm256_fmadd_ps(v1, bv, _mm256_loadu_ps(p1.add(at))),
            );
            _mm256_storeu_ps(
                p2.add(at),
                _mm256_fmadd_ps(v2, bv, _mm256_loadu_ps(p2.add(at))),
            );
            _mm256_storeu_ps(
                p3.add(at),
                _mm256_fmadd_ps(v3, bv, _mm256_loadu_ps(p3.add(at))),
            );
        }
    }
    for j in chunks * 8..n {
        let bv = b[j];
        c0[j] = v[0].mul_add(bv, c0[j]);
        c1[j] = v[1].mul_add(bv, c1[j]);
        c2[j] = v[2].mul_add(bv, c2[j]);
        c3[j] = v[3].mul_add(bv, c3[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_axpy(v: f32, b: &[f32], c: &mut [f32]) {
        for (cv, bv) in c.iter_mut().zip(b) {
            *cv += v * bv;
        }
    }

    fn spans(n: usize) -> (Vec<f32>, Vec<f32>) {
        let b: Vec<f32> = (0..n).map(|j| (j as f32 * 0.37).sin()).collect();
        let c: Vec<f32> = (0..n).map(|j| (j as f32 * 0.11).cos()).collect();
        (b, c)
    }

    #[test]
    fn portable_axpy_is_bitwise_scalar_across_remainders() {
        for n in 0..=33 {
            let (b, c0) = spans(n);
            let mut expect = c0.clone();
            scalar_axpy(1.7, &b, &mut expect);
            let mut got = c0.clone();
            axpy(SimdLevel::Portable, 1.7, &b, &mut got);
            assert_eq!(got, expect, "width {n}");
        }
    }

    #[test]
    fn detected_level_axpy_agrees_with_scalar() {
        let level = SimdLevel::detected();
        for n in [1, 7, 8, 9, 31, 64, 250] {
            let (b, c0) = spans(n);
            let mut expect = c0.clone();
            scalar_axpy(-0.83, &b, &mut expect);
            let mut got = c0.clone();
            axpy(level, -0.83, &b, &mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    (g - e).abs() <= 1e-6 * e.abs().max(1.0),
                    "{level:?} width {n}"
                );
            }
        }
    }

    #[test]
    fn axpy4_matches_four_single_axpys() {
        for level in [SimdLevel::Portable, SimdLevel::detected()] {
            for n in [1, 8, 13, 40] {
                let (b, c0) = spans(n);
                let vs = [0.5, -1.25, 0.0, 3.0]; // includes a zero lane
                let mut expect: Vec<Vec<f32>> = (0..4).map(|_| c0.clone()).collect();
                for (q, row) in expect.iter_mut().enumerate() {
                    if vs[q] != 0.0 {
                        axpy(level, vs[q], &b, row);
                    }
                }
                let mut got: Vec<Vec<f32>> = (0..4).map(|_| c0.clone()).collect();
                let [g0, g1, g2, g3] = &mut got[..] else {
                    unreachable!()
                };
                axpy4(level, vs, &b, g0, g1, g2, g3);
                for q in 0..4 {
                    for (g, e) in got[q].iter().zip(&expect[q]) {
                        assert!(
                            (g - e).abs() <= 1e-6 * e.abs().max(1.0),
                            "{level:?} lane {q} width {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_lanes_never_touch_nonfinite_b() {
        // The zero-annihilation contract at the kernel level: a zero lane in axpy4
        // must not propagate NaN from B.
        for level in [SimdLevel::Portable, SimdLevel::detected()] {
            let b = vec![f32::NAN; 16];
            let mut rows: Vec<Vec<f32>> = (0..4).map(|_| vec![1.0; 16]).collect();
            let [c0, c1, c2, c3] = &mut rows[..] else {
                unreachable!()
            };
            axpy4(level, [0.0, 2.0, 0.0, 0.0], &b, c0, c1, c2, c3);
            assert!(rows[0].iter().all(|x| *x == 1.0), "{level:?}");
            assert!(rows[1].iter().all(|x| x.is_nan()), "{level:?}");
            assert!(rows[2].iter().all(|x| *x == 1.0), "{level:?}");
            assert!(rows[3].iter().all(|x| *x == 1.0), "{level:?}");
        }
    }

    #[test]
    fn override_resolution_never_widens_past_hardware() {
        use SimdLevel::*;
        // Forcing portable always wins; forcing a wider tier than the hardware has
        // falls back to the best supported; unknown values are ignored.
        for best in [Avx2Fma, AvxFma, Portable] {
            assert_eq!(SimdLevel::resolve(Some("portable"), best), Portable);
            assert_eq!(SimdLevel::resolve(Some("quantum"), best), best);
            assert_eq!(SimdLevel::resolve(None, best), best);
        }
        assert_eq!(SimdLevel::resolve(Some("avx2-fma"), Avx2Fma), Avx2Fma);
        assert_eq!(SimdLevel::resolve(Some("avx2-fma"), AvxFma), AvxFma);
        assert_eq!(SimdLevel::resolve(Some("avx2-fma"), Portable), Portable);
        assert_eq!(SimdLevel::resolve(Some("avx-fma"), Avx2Fma), AvxFma);
        assert_eq!(SimdLevel::resolve(Some("avx-fma"), Portable), Portable);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimdLevel::Portable.name(), "portable");
        assert_eq!(SimdLevel::AvxFma.name(), "avx-fma");
        assert_eq!(SimdLevel::Avx2Fma.name(), "avx2-fma");
    }
}

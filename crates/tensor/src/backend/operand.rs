//! The left-hand-side operand abstraction shared by every GEMM backend.

use crate::{CsrMatrix, Matrix, NmCompressed};

/// A left-hand GEMM operand in any storage format.
///
/// The trait exposes just enough for a [`GemmBackend`](super::GemmBackend) to execute and
/// cost a multiply: logical shape, stored non-zeros, per-row entry iteration (the
/// format-agnostic fallback kernel), and downcasts to the native formats so backends can
/// take their fast paths.
pub trait GemmOperand: Sync {
    /// Logical `(rows, cols)` of the operand.
    fn shape(&self) -> (usize, usize);

    /// Number of stored non-zero values.
    fn nnz(&self) -> usize;

    /// Fraction of logical elements that are non-zero (0 for an empty operand).
    fn density(&self) -> f64 {
        let (r, c) = self.shape();
        if r * c == 0 {
            0.0
        } else {
            self.nnz() as f64 / (r * c) as f64
        }
    }

    /// Calls `f(column, value)` for every stored non-zero of row `row`, in column order.
    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f32));

    /// The operand as a dense matrix, if that is its native format.
    fn as_dense(&self) -> Option<&Matrix> {
        None
    }

    /// The operand as a CSR matrix, if that is its native format.
    fn as_csr(&self) -> Option<&CsrMatrix> {
        None
    }

    /// The operand as a compressed N:M matrix, if that is its native format.
    fn as_nm(&self) -> Option<&NmCompressed> {
        None
    }
}

impl GemmOperand for Matrix {
    fn shape(&self) -> (usize, usize) {
        Matrix::shape(self)
    }

    fn nnz(&self) -> usize {
        self.count_nonzeros()
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f32)) {
        for (col, &value) in self.row(row).iter().enumerate() {
            if value != 0.0 {
                f(col, value);
            }
        }
    }

    fn as_dense(&self) -> Option<&Matrix> {
        Some(self)
    }
}

impl GemmOperand for CsrMatrix {
    fn shape(&self) -> (usize, usize) {
        CsrMatrix::shape(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f32)) {
        for (col, value) in self.row_entries(row) {
            f(col, value);
        }
    }

    fn as_csr(&self) -> Option<&CsrMatrix> {
        Some(self)
    }
}

impl GemmOperand for NmCompressed {
    fn shape(&self) -> (usize, usize) {
        NmCompressed::shape(self)
    }

    fn nnz(&self) -> usize {
        NmCompressed::nnz(self)
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f32)) {
        for (col, value) in self.row_entries(row) {
            f(col, value);
        }
    }

    fn as_nm(&self) -> Option<&NmCompressed> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatrixGenerator, NmPattern};

    #[test]
    fn operand_views_agree_across_formats() {
        let mut gen = MatrixGenerator::seeded(9);
        let pattern = NmPattern::new(2, 4).unwrap();
        let dense = pattern.view(&gen.sparse_normal(12, 16, 0.5));
        let csr = CsrMatrix::from_dense(&dense);
        let nm = NmCompressed::from_dense_strict(&dense, pattern).unwrap();

        let ops: [&dyn GemmOperand; 3] = [&dense, &csr, &nm];
        for op in ops {
            assert_eq!(op.shape(), (12, 16));
            assert_eq!(op.nnz(), dense.count_nonzeros());
            assert!((op.density() - dense.count_nonzeros() as f64 / 192.0).abs() < 1e-12);
        }
        // Per-row iteration reproduces the dense row everywhere.
        for i in 0..12 {
            let mut rows: Vec<Vec<(usize, f32)>> = Vec::new();
            for op in ops {
                let mut entries = Vec::new();
                op.for_each_in_row(i, &mut |c, v| entries.push((c, v)));
                rows.push(entries);
            }
            assert_eq!(rows[0], rows[1], "row {i} csr");
            assert_eq!(rows[0], rows[2], "row {i} nm");
        }
    }

    #[test]
    fn downcasts_identify_native_formats() {
        let dense = Matrix::zeros(2, 4);
        let csr = CsrMatrix::from_dense(&dense);
        let nm = NmCompressed::from_dense(&dense, NmPattern::new(2, 4).unwrap()).unwrap();
        assert!(dense.as_dense().is_some() && dense.as_csr().is_none() && dense.as_nm().is_none());
        assert!(csr.as_csr().is_some() && csr.as_dense().is_none());
        assert!(nm.as_nm().is_some() && nm.as_dense().is_none());
    }

    #[test]
    fn empty_operand_density_is_zero() {
        let empty = Matrix::zeros(0, 0);
        assert_eq!(GemmOperand::density(&empty), 0.0);
    }
}

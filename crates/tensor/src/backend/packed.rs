//! Backend-native packed operands: a TASD term materialized in the storage format its
//! planned kernel consumes natively.
//!
//! Every [`GemmBackend`](super::GemmBackend) accepts every [`GemmOperand`](super::GemmOperand)
//! — but a non-native operand runs through the per-entry dyn-dispatched fallback
//! ([`gemm_rows_generic`](super::gemm_rows_generic)), which defeats the point of picking
//! that backend. [`PackedOperand`] is the prepare-time answer: convert the operand into
//! the chosen backend's native format **once**, so every subsequent execution hits the
//! fast path. The execution engine in the `tasd` crate performs this packing when it
//! prepares a decomposition for caching; the serving hot path then never converts.
//!
//! Packing never changes results: each conversion preserves the per-row entry order
//! (ascending column), so a GEMM over the packed form accumulates every output element
//! in the same floating-point order as the original — bitwise identical outputs.

use super::GemmOperand;
use crate::{CsrMatrix, Matrix, NmCompressed};
use std::fmt;

/// A left-hand GEMM operand materialized in one backend's native storage format.
///
/// Produced at prepare time from a compressed N:M term (see
/// [`PackedOperand::pack_nm_term`]); consumed as a [`GemmOperand`] by the matching
/// backend's fast path.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedOperand {
    /// Dense row-major storage — native to the cache-blocked dense kernel.
    Dense(Matrix),
    /// Compressed sparse rows — native to the unstructured sparse kernel.
    Csr(CsrMatrix),
    /// Compressed N:M (values + lane metadata) — native to the structured kernel.
    Nm(NmCompressed),
}

impl PackedOperand {
    /// Materializes a compressed N:M term into `target`'s native format.
    ///
    /// Returns the packed operand and whether a format conversion was performed
    /// (`false` when the term is already in the target format, in which case it is
    /// cloned as-is). The per-row entry order is preserved by every conversion, so
    /// executing the packed operand is bitwise identical to executing the original
    /// term.
    pub fn pack_nm_term(term: &NmCompressed, target: PackedKind) -> (Self, bool) {
        match target {
            PackedKind::Dense => (PackedOperand::Dense(term.to_dense()), true),
            PackedKind::Csr => (PackedOperand::Csr(term.to_csr()), true),
            PackedKind::Nm => (PackedOperand::Nm(term.clone()), false),
        }
    }

    /// The format this operand is packed in.
    pub fn kind(&self) -> PackedKind {
        match self {
            PackedOperand::Dense(_) => PackedKind::Dense,
            PackedOperand::Csr(_) => PackedKind::Csr,
            PackedOperand::Nm(_) => PackedKind::Nm,
        }
    }

    /// The operand as a dynamic [`GemmOperand`], for handing to a backend.
    pub fn as_operand(&self) -> &dyn GemmOperand {
        match self {
            PackedOperand::Dense(m) => m,
            PackedOperand::Csr(c) => c,
            PackedOperand::Nm(n) => n,
        }
    }

    /// Storage footprint of the packed form in bytes (what a cache holding prepared
    /// operands must account for).
    pub fn storage_bytes(&self) -> usize {
        match self {
            PackedOperand::Dense(m) => m.storage_bytes(),
            PackedOperand::Csr(c) => c.storage_bytes(),
            PackedOperand::Nm(n) => n.storage_bytes(),
        }
    }
}

impl GemmOperand for PackedOperand {
    fn shape(&self) -> (usize, usize) {
        self.as_operand().shape()
    }

    fn nnz(&self) -> usize {
        self.as_operand().nnz()
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f32)) {
        self.as_operand().for_each_in_row(row, f);
    }

    fn as_dense(&self) -> Option<&Matrix> {
        match self {
            PackedOperand::Dense(m) => Some(m),
            _ => None,
        }
    }

    fn as_csr(&self) -> Option<&CsrMatrix> {
        match self {
            PackedOperand::Csr(c) => Some(c),
            _ => None,
        }
    }

    fn as_nm(&self) -> Option<&NmCompressed> {
        match self {
            PackedOperand::Nm(n) => Some(n),
            _ => None,
        }
    }
}

/// The storage-format tag of a [`PackedOperand`] (mirrors the backend families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedKind {
    /// Dense row-major [`Matrix`].
    Dense,
    /// Unstructured [`CsrMatrix`].
    Csr,
    /// Compressed [`NmCompressed`].
    Nm,
}

impl fmt::Display for PackedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PackedKind::Dense => "dense",
            PackedKind::Csr => "csr",
            PackedKind::Nm => "nm",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CsrBackend, DenseBackend, GemmBackend, NmBackend};
    use crate::{MatrixGenerator, NmPattern};

    fn term(sparsity: f64) -> NmCompressed {
        let mut gen = MatrixGenerator::seeded(101);
        let a = gen.sparse_normal(24, 32, sparsity);
        NmCompressed::from_dense(&a, NmPattern::new(2, 8).unwrap()).unwrap()
    }

    #[test]
    fn packing_preserves_content_and_reports_conversions() {
        let t = term(0.6);
        let (dense, conv) = PackedOperand::pack_nm_term(&t, PackedKind::Dense);
        assert!(conv);
        assert_eq!(dense.as_dense().unwrap(), &t.to_dense());
        let (csr, conv) = PackedOperand::pack_nm_term(&t, PackedKind::Csr);
        assert!(conv);
        assert_eq!(csr.as_csr().unwrap().to_dense(), t.to_dense());
        let (nm, conv) = PackedOperand::pack_nm_term(&t, PackedKind::Nm);
        assert!(!conv, "already-native terms are kept, not converted");
        assert_eq!(nm.as_nm().unwrap(), &t);
        for p in [&dense, &csr, &nm] {
            assert_eq!(p.shape(), t.shape());
            assert_eq!(GemmOperand::nnz(p), t.nnz());
            assert!(p.storage_bytes() > 0);
        }
    }

    #[test]
    fn packed_execution_is_bitwise_identical_to_the_native_term() {
        // The whole point of packing: each format's native kernel accumulates in the
        // same per-row ascending-column order, so outputs agree exactly, not just
        // within tolerance.
        let t = term(0.8);
        let b = MatrixGenerator::seeded(7).normal(32, 16, 0.0, 1.0);
        let mut reference = Matrix::zeros(24, 16);
        NmBackend::default()
            .gemm_into(&t, &b, &mut reference)
            .unwrap();
        let cases: [(&dyn GemmBackend, PackedKind); 3] = [
            (&DenseBackend::default(), PackedKind::Dense),
            (&CsrBackend::default(), PackedKind::Csr),
            (&NmBackend::default(), PackedKind::Nm),
        ];
        for (backend, kind) in cases {
            let (packed, _) = PackedOperand::pack_nm_term(&t, kind);
            let mut c = Matrix::zeros(24, 16);
            backend.gemm_into(packed.as_operand(), &b, &mut c).unwrap();
            assert_eq!(c, reference, "{kind} packing drifted");
        }
    }

    #[test]
    fn to_csr_matches_dense_round_trip() {
        for sparsity in [0.0, 0.5, 0.97] {
            let t = term(sparsity);
            let direct = t.to_csr();
            direct.validate().unwrap();
            assert_eq!(direct.to_dense(), t.to_dense(), "sparsity {sparsity}");
            assert_eq!(direct.nnz(), t.nnz());
        }
    }

    #[test]
    fn kind_tags_round_trip() {
        let t = term(0.5);
        for kind in [PackedKind::Dense, PackedKind::Csr, PackedKind::Nm] {
            let (p, _) = PackedOperand::pack_nm_term(&t, kind);
            assert_eq!(p.kind(), kind);
            assert_eq!(p.kind().to_string(), kind.to_string());
        }
    }
}

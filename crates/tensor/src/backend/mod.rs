//! Pluggable GEMM backends: one trait, four kernels, one seam.
//!
//! Everything in this repository that multiplies a (possibly sparse, possibly compressed)
//! left-hand operand by a dense right-hand matrix goes through [`GemmBackend`]. The trait
//! separates *what* is multiplied — any [`GemmOperand`]: a dense [`Matrix`](crate::Matrix),
//! a [`CsrMatrix`](crate::CsrMatrix), or a compressed [`NmCompressed`](crate::NmCompressed)
//! term of a TASD series — from *how* it is executed:
//!
//! * [`DenseBackend`] — cache-blocked dense kernel (B panels tiled to stay resident across
//!   output rows) with exact-zero skipping; densifies compressed operands into a row-block
//!   scratch first, which wins once operands are dense enough for streaming to beat
//!   per-entry dispatch.
//! * [`CsrBackend`] — unstructured sparse row kernel: one MAC per stored non-zero per
//!   output column, driven off each format's native row entries.
//! * [`NmBackend`] — structured N:M kernel consuming compressed (values + lane metadata)
//!   operands directly, the software analogue of a sparse-tensor-core datapath.
//! * [`ParallelBackend`] — row-block tiling across threads over *any* inner backend.
//!
//! Every kernel's inner loop is an 8-wide f32 SIMD microkernel from the [`simd`] layer
//! (re-exported here as [`SimdLevel`]): the instruction tier — 256-bit AVX/FMA on x86-64
//! hardware that has it, a hand-unrolled portable loop everywhere else — is detected once
//! at backend construction and stored in the backend, so no kernel call ever re-runs
//! feature detection.
//!
//! Backends accept every operand: when the operand is not in a backend's native format the
//! backend falls back to a correct (if slower) path, so backend choice is purely a
//! performance decision. That is what lets the execution engine in the `tasd` crate pick a
//! backend per TASD term from density alone. The fallback is a correctness safety net,
//! not an execution strategy: the engine's *planned* paths materialize each operand into
//! its chosen backend's native format ahead of time ([`PackedOperand`]), so the
//! per-entry dyn-dispatched fallback never runs on a prepared hot path. The relative
//! costs the engine's heuristic encodes are measured by `benches/backends.rs` in the
//! `tasd-bench` crate.
//!
//! # Example
//!
//! ```
//! use tasd_tensor::backend::{DenseBackend, GemmBackend, ParallelBackend};
//! use tasd_tensor::{CsrMatrix, Matrix, MatrixGenerator};
//!
//! let mut gen = MatrixGenerator::seeded(1);
//! let a = gen.sparse_normal(64, 64, 0.8);
//! let b = gen.normal(64, 32, 0.0, 1.0);
//!
//! let dense = DenseBackend::default();
//! let parallel = ParallelBackend::default();
//! let csr = CsrMatrix::from_dense(&a);
//!
//! let mut c1 = Matrix::zeros(64, 32);
//! let mut c2 = Matrix::zeros(64, 32);
//! dense.gemm_into(&a, &b, &mut c1).unwrap();
//! parallel.gemm_into(&csr, &b, &mut c2).unwrap(); // any backend × any operand
//! assert!(c1.approx_eq(&c2, 1e-4));
//! ```

mod csr;
mod dense;
mod multi;
mod nm;
mod operand;
mod packed;
mod parallel;
pub mod simd;

pub use csr::CsrBackend;
pub use dense::DenseBackend;
pub use multi::{pack_panels, unpack_panels, unpack_panels_into};
pub use nm::NmBackend;
pub use operand::GemmOperand;
pub use packed::{PackedKind, PackedOperand};
pub use parallel::ParallelBackend;
pub use simd::SimdLevel;

use crate::{Matrix, Result, TensorError};
use std::fmt;

/// Relative execution-cost estimate a backend reports for a `(operand, output width)`
/// pair, in MAC-equivalents. The execution engine compares hints across backends when
/// planning; absolute values are meaningless, ratios matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostHint {
    /// Multiply-accumulates the backend will execute (its compute proper).
    pub compute_macs: u64,
    /// Additional non-MAC work in MAC-equivalents: format conversion, decompression
    /// scratch fills, per-entry dispatch overhead.
    pub overhead_macs: u64,
}

impl CostHint {
    /// Total estimated cost in MAC-equivalents.
    pub fn total(&self) -> u64 {
        self.compute_macs.saturating_add(self.overhead_macs)
    }
}

/// A GEMM execution strategy: computes `C += A · B` for any [`GemmOperand`] `A`.
///
/// Implementations must be [`Sync`] + [`Send`]: the engine shares one backend across
/// threads, and [`ParallelBackend`] drives inner backends from worker threads.
///
/// # Zero annihilation (non-finite contract)
///
/// An exact-zero operand entry (stored or implicit) **never contributes to the output**,
/// even when the corresponding `B` row contains `NaN` or `±Inf` — zeros annihilate
/// (`0 · NaN` is treated as `0`), rather than propagating non-finite values per IEEE-754
/// `0.0 * NaN = NaN`. This is the only contract a sparse backend *can* honor — CSR and
/// N:M kernels never see unstored zeros — so the dense and SIMD kernels skip exact-zero
/// operand lanes to match. Consequence: which outputs are non-finite is determined by
/// the operand's sparsity pattern alone and is identical across every backend, SIMD
/// tier, and blocking strategy. Pinned by `zero_operand_entries_annihilate_nonfinite_b`
/// in `tests/simd_kernels.rs`.
pub trait GemmBackend: fmt::Debug + Sync + Send {
    /// Short stable name for plans, logs, and bench labels (e.g. `"dense"`, `"csr"`).
    fn name(&self) -> &'static str;

    /// Computes `C += lhs · b`, accumulating into `c`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the operand shapes are inconsistent.
    fn gemm_into(&self, lhs: &dyn GemmOperand, b: &Matrix, c: &mut Matrix) -> Result<()> {
        check_shapes(self.name(), lhs, b, c)?;
        let rows = lhs.shape().0;
        let n_cols = b.cols();
        self.gemm_rows_into(lhs, b, 0, rows, c.rows_slice_mut(0, rows), n_cols);
        Ok(())
    }

    /// Row-block kernel: computes `C[r0..r1] += lhs[r0..r1, :] · b` into the contiguous
    /// row-major slab `c_rows` (length `(r1 - r0) * n_cols`).
    ///
    /// This is the unit of work [`ParallelBackend`] distributes; shape checking happens
    /// once in [`GemmBackend::gemm_into`], so implementations may assume consistent
    /// arguments and panic otherwise.
    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    );

    /// Multi-RHS entry: computes `Cᵢ += lhs · Bᵢ` for a batch of right-hand panels
    /// sharing the operand, in one kernel pass. The panels are packed column-wise into
    /// one wide RHS ([`pack_panels`]), executed through [`GemmBackend::gemm_into`] — so
    /// the row kernel streams every stored entry of `lhs` across the whole batch width
    /// once instead of once per panel — and the wide result is scattered back. Column
    /// independence of GEMM makes each `Cᵢ` identical to a one-at-a-time
    /// `gemm_into(lhs, Bᵢ, Cᵢ)` call, including accumulation order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the panel and output counts differ or
    /// any `(lhs, Bᵢ, Cᵢ)` triple has inconsistent shapes.
    fn gemm_multi_into(
        &self,
        lhs: &dyn GemmOperand,
        panels: &[&Matrix],
        outs: &mut [Matrix],
    ) -> Result<()> {
        if panels.len() != outs.len() {
            return Err(TensorError::ShapeMismatch {
                op: "multi-rhs panel/output count",
                lhs: (panels.len(), 0),
                rhs: (outs.len(), 0),
            });
        }
        for (b, c) in panels.iter().zip(outs.iter()) {
            check_shapes(self.name(), lhs, b, c)?;
        }
        if panels.is_empty() {
            return Ok(());
        }
        let wide_b = pack_panels(panels)?;
        // Pack the outputs too so `+=` accumulation carries through the wide pass.
        let mut wide_c = pack_panels(&outs.iter().collect::<Vec<_>>())?;
        self.gemm_into(lhs, &wide_b, &mut wide_c)?;
        unpack_panels_into(&wide_c, outs);
        Ok(())
    }

    /// Estimated cost of executing `lhs · B` where `B` has `n_cols` columns.
    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
        CostHint {
            compute_macs: lhs.nnz() as u64 * n_cols as u64,
            overhead_macs: 0,
        }
    }
}

/// Validates the `C += A · B` shape contract shared by every backend.
pub(crate) fn check_shapes(
    op: &'static str,
    lhs: &dyn GemmOperand,
    b: &Matrix,
    c: &Matrix,
) -> Result<()> {
    let (m, k) = lhs.shape();
    if k != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: (m, k),
            rhs: b.shape(),
        });
    }
    if c.rows() != m || c.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: (m, b.cols()),
            rhs: c.shape(),
        });
    }
    Ok(())
}

/// Format-agnostic row kernel used by backends as the fallback for non-native operands:
/// per stored entry, `c_row += value * b[col]`.
// lint: hot-path, warm-path, allow(indexing): the debug_assert pins c_rows to
// exactly (r1 - r0) * n_cols elements, so every row slice below is in bounds
pub(crate) fn gemm_rows_generic(
    lhs: &dyn GemmOperand,
    b: &Matrix,
    r0: usize,
    r1: usize,
    c_rows: &mut [f32],
    n_cols: usize,
) {
    debug_assert_eq!(c_rows.len(), (r1 - r0) * n_cols);
    for i in r0..r1 {
        let c_row = &mut c_rows[(i - r0) * n_cols..(i - r0 + 1) * n_cols];
        lhs.for_each_in_row(i, &mut |col, value| {
            // Zero-annihilation contract: stored zeros (e.g. N:M padding lanes) must
            // not propagate NaN/Inf from B.
            if value == 0.0 {
                return;
            }
            let b_row = b.row(col);
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += value * bv;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, CsrMatrix, MatrixGenerator, NmCompressed, NmPattern};

    fn operands(sparsity: f64) -> (Matrix, CsrMatrix, NmCompressed, Matrix) {
        let mut gen = MatrixGenerator::seeded(42);
        let a = gen.sparse_normal(33, 48, sparsity);
        let b = gen.normal(48, 17, 0.0, 1.0);
        let csr = CsrMatrix::from_dense(&a);
        let nm_view = NmPattern::new(2, 8).unwrap().view(&a);
        let nm = NmCompressed::from_dense_strict(&nm_view, NmPattern::new(2, 8).unwrap()).unwrap();
        (a, csr, nm, b)
    }

    fn all_backends() -> Vec<Box<dyn GemmBackend>> {
        vec![
            Box::new(DenseBackend::default()),
            Box::new(CsrBackend::default()),
            Box::new(NmBackend::default()),
            Box::new(ParallelBackend::default()),
            Box::new(ParallelBackend::over(std::sync::Arc::new(
                CsrBackend::default(),
            ))),
        ]
    }

    #[test]
    fn every_backend_matches_reference_on_every_operand() {
        for sparsity in [0.0, 0.5, 0.9] {
            let (a, csr, nm, b) = operands(sparsity);
            let reference = gemm(&a, &b).unwrap();
            let nm_reference = gemm(&nm.to_dense(), &b).unwrap();
            for backend in all_backends() {
                let mut c = Matrix::zeros(a.rows(), b.cols());
                backend.gemm_into(&a, &b, &mut c).unwrap();
                assert!(
                    c.approx_eq(&reference, 1e-4),
                    "{} on dense operand (sparsity {sparsity})",
                    backend.name()
                );
                let mut c = Matrix::zeros(a.rows(), b.cols());
                backend.gemm_into(&csr, &b, &mut c).unwrap();
                assert!(
                    c.approx_eq(&reference, 1e-4),
                    "{} on csr operand (sparsity {sparsity})",
                    backend.name()
                );
                let mut c = Matrix::zeros(a.rows(), b.cols());
                backend.gemm_into(&nm, &b, &mut c).unwrap();
                assert!(
                    c.approx_eq(&nm_reference, 1e-4),
                    "{} on nm operand (sparsity {sparsity})",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn backends_accumulate_rather_than_overwrite() {
        let (a, _, _, b) = operands(0.5);
        for backend in all_backends() {
            let mut c = Matrix::filled(a.rows(), b.cols(), 1.0);
            backend.gemm_into(&a, &b, &mut c).unwrap();
            let mut expected = gemm(&a, &b).unwrap();
            expected.map_inplace(|x| x + 1.0);
            assert!(c.approx_eq(&expected, 1e-4), "{}", backend.name());
        }
    }

    #[test]
    fn shape_mismatches_are_rejected_by_every_backend() {
        let (a, _, _, _) = operands(0.5);
        let bad_b = Matrix::zeros(a.cols() + 1, 4);
        let good_b = Matrix::zeros(a.cols(), 4);
        for backend in all_backends() {
            let mut c = Matrix::zeros(a.rows(), 4);
            assert!(
                backend.gemm_into(&a, &bad_b, &mut c).is_err(),
                "{}",
                backend.name()
            );
            let mut bad_c = Matrix::zeros(a.rows() + 2, 4);
            assert!(
                backend.gemm_into(&a, &good_b, &mut bad_c).is_err(),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn row_range_kernels_cover_partial_ranges() {
        let (a, csr, _, b) = operands(0.7);
        let reference = gemm(&a, &b).unwrap();
        for backend in all_backends() {
            let n = b.cols();
            let mut c = Matrix::zeros(a.rows(), n);
            // Execute in three uneven row blocks.
            for (r0, r1) in [(0usize, 5usize), (5, 20), (20, a.rows())] {
                let slab = c.rows_slice_mut(r0, r1);
                backend.gemm_rows_into(&csr, &b, r0, r1, slab, n);
            }
            assert!(c.approx_eq(&reference, 1e-4), "{}", backend.name());
        }
    }

    #[test]
    fn multi_rhs_matches_one_at_a_time_bit_for_bit() {
        let (a, csr, nm, _) = operands(0.6);
        let mut gen = MatrixGenerator::seeded(77);
        let panels: Vec<Matrix> = [5usize, 1, 9, 3]
            .iter()
            .map(|&w| gen.normal(a.cols(), w, 0.0, 1.0))
            .collect();
        let panel_refs: Vec<&Matrix> = panels.iter().collect();
        for backend in all_backends() {
            for operand in [&a as &dyn GemmOperand, &csr, &nm] {
                let mut batched: Vec<Matrix> = panels
                    .iter()
                    .map(|p| Matrix::filled(a.rows(), p.cols(), 0.5))
                    .collect();
                backend
                    .gemm_multi_into(operand, &panel_refs, &mut batched)
                    .unwrap();
                for (p, got) in panels.iter().zip(&batched) {
                    let mut single = Matrix::filled(a.rows(), p.cols(), 0.5);
                    backend.gemm_into(operand, p, &mut single).unwrap();
                    // Packing only widens the RHS; per-column accumulation order is
                    // unchanged, so the results agree exactly.
                    assert_eq!(&single, got, "{} multi-rhs drift", backend.name());
                }
            }
        }
    }

    #[test]
    fn multi_rhs_rejects_inconsistent_batches() {
        let (a, _, _, _) = operands(0.5);
        let good = Matrix::zeros(a.cols(), 4);
        let bad = Matrix::zeros(a.cols() + 1, 4);
        let backend = DenseBackend::default();
        let mut outs = vec![Matrix::zeros(a.rows(), 4); 2];
        assert!(backend
            .gemm_multi_into(&a, &[&good, &bad], &mut outs)
            .is_err());
        let mut short = vec![Matrix::zeros(a.rows(), 4)];
        assert!(backend
            .gemm_multi_into(&a, &[&good, &good], &mut short)
            .is_err());
        assert!(backend.gemm_multi_into(&a, &[], &mut []).is_ok());
    }

    #[test]
    fn cost_hints_scale_with_nnz() {
        let (a, csr, _, b) = operands(0.9);
        let backend = CsrBackend::default();
        let hint = backend.cost_hint(&csr, b.cols());
        assert_eq!(hint.compute_macs, csr.nnz() as u64 * b.cols() as u64);
        let dense_hint = DenseBackend::default().cost_hint(&a, b.cols());
        assert!(dense_hint.total() >= hint.compute_macs);
    }

    #[test]
    fn empty_operands_are_handled() {
        let a = Matrix::zeros(0, 8);
        let b = Matrix::zeros(8, 3);
        for backend in all_backends() {
            let mut c = Matrix::zeros(0, 3);
            backend.gemm_into(&a, &b, &mut c).unwrap();
            assert_eq!(c.shape(), (0, 3));
        }
    }
}

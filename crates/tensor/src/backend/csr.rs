//! Unstructured sparse (CSR-style) GEMM backend.

use super::{gemm_rows_generic, CostHint, GemmBackend, GemmOperand};
use crate::Matrix;

/// Unstructured sparse row kernel: exactly one MAC per stored non-zero per output column.
///
/// This is the software analogue of an unstructured sparse datapath (SIGMA / DSTC style):
/// work scales with `nnz`, independent of the logical shape, at the price of per-entry
/// indirection into `B`. CSR operands run on their native kernel; dense and compressed
/// N:M operands are driven through their row-entry iterators — no conversion pass, the
/// entries are consumed where they are stored.
///
/// The density regime where this beats [`DenseBackend`](super::DenseBackend) — measured
/// at everything below ~0.85 density on a 512³ GEMM — comes from `tasd-bench`'s
/// `backends` bench, which is what the execution engine's planning thresholds are
/// calibrated from.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsrBackend;

impl GemmBackend for CsrBackend {
    fn name(&self) -> &'static str {
        "csr"
    }

    // lint: hot-path, warm-path
    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        if let Some(csr) = lhs.as_csr() {
            csr.spmm_rows_into(b, r0, r1, c_rows, n_cols);
            return;
        }
        gemm_rows_generic(lhs, b, r0, r1, c_rows, n_cols);
    }

    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
        let compute = lhs.nnz() as u64 * n_cols as u64;
        CostHint {
            compute_macs: compute,
            // Per-entry indirect access to B: charge an eighth of a MAC per entry-column.
            overhead_macs: compute / 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, CsrMatrix, MatrixGenerator};

    #[test]
    fn native_csr_path_matches_reference() {
        let mut gen = MatrixGenerator::seeded(21);
        let a = gen.sparse_normal(29, 37, 0.85);
        let b = gen.normal(37, 13, 0.0, 1.0);
        let csr = CsrMatrix::from_dense(&a);
        let mut c = Matrix::zeros(29, 13);
        CsrBackend.gemm_into(&csr, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }

    #[test]
    fn dense_operand_runs_through_entry_iteration() {
        let mut gen = MatrixGenerator::seeded(22);
        let a = gen.sparse_normal(10, 24, 0.6);
        let b = gen.normal(24, 8, 0.0, 1.0);
        let mut c = Matrix::zeros(10, 8);
        CsrBackend.gemm_into(&a, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }
}

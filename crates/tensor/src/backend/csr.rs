//! Unstructured sparse (CSR-style) GEMM backend.

use super::simd::SimdLevel;
use super::{gemm_rows_generic, CostHint, GemmBackend, GemmOperand};
use crate::Matrix;

/// Unstructured sparse row kernel: exactly one SIMD axpy per stored non-zero.
///
/// This is the software analogue of an unstructured sparse datapath (SIGMA / DSTC style):
/// work scales with `nnz`, independent of the logical shape, at the price of per-entry
/// indirection into `B`. CSR operands run on their native kernel — each stored entry
/// streams its `B` row through an 8-wide SIMD axpy ([`super::simd::axpy`]) at the tier
/// detected once at construction; dense and compressed N:M operands are driven through
/// their row-entry iterators — no conversion pass, the entries are consumed where they
/// are stored.
///
/// The density regime where this beats [`DenseBackend`](super::DenseBackend) comes from
/// `tasd-bench`'s `backends` bench, which is what the execution engine's planning
/// thresholds are calibrated from.
#[derive(Debug, Clone, Copy)]
pub struct CsrBackend {
    /// SIMD tier the native row kernel dispatches to, fixed at construction.
    simd: SimdLevel,
}

impl CsrBackend {
    /// A backend at the tier detected once per process.
    pub fn new() -> Self {
        CsrBackend {
            simd: SimdLevel::detected(),
        }
    }

    /// Pins the SIMD tier (e.g. [`SimdLevel::Portable`] to force the fallback arm in
    /// tests).
    #[must_use]
    pub fn with_simd(mut self, level: SimdLevel) -> Self {
        self.simd = level;
        self
    }

    /// The SIMD tier the native row kernel runs at.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }
}

impl Default for CsrBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl GemmBackend for CsrBackend {
    fn name(&self) -> &'static str {
        "csr"
    }

    // lint: hot-path, warm-path
    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        if let Some(csr) = lhs.as_csr() {
            csr.spmm_rows_into_simd(b, r0, r1, c_rows, n_cols, self.simd);
            return;
        }
        gemm_rows_generic(lhs, b, r0, r1, c_rows, n_cols);
    }

    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
        let compute = lhs.nnz() as u64 * n_cols as u64;
        CostHint {
            compute_macs: compute,
            // Per-entry indirect access to B: charge an eighth of a MAC per entry-column.
            overhead_macs: compute / 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, CsrMatrix, MatrixGenerator};

    #[test]
    fn native_csr_path_matches_reference() {
        let mut gen = MatrixGenerator::seeded(21);
        let a = gen.sparse_normal(29, 37, 0.85);
        let b = gen.normal(37, 13, 0.0, 1.0);
        let csr = CsrMatrix::from_dense(&a);
        let mut c = Matrix::zeros(29, 13);
        CsrBackend::default().gemm_into(&csr, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }

    #[test]
    fn dense_operand_runs_through_entry_iteration() {
        let mut gen = MatrixGenerator::seeded(22);
        let a = gen.sparse_normal(10, 24, 0.6);
        let b = gen.normal(24, 8, 0.0, 1.0);
        let mut c = Matrix::zeros(10, 8);
        CsrBackend::default().gemm_into(&a, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }

    #[test]
    fn portable_tier_matches_detected_tier() {
        let mut gen = MatrixGenerator::seeded(23);
        let a = gen.sparse_normal(17, 41, 0.7);
        let b = gen.normal(41, 19, 0.0, 1.0);
        let csr = CsrMatrix::from_dense(&a);
        let mut fast = Matrix::zeros(17, 19);
        let mut portable = Matrix::zeros(17, 19);
        CsrBackend::new().gemm_into(&csr, &b, &mut fast).unwrap();
        CsrBackend::new()
            .with_simd(SimdLevel::Portable)
            .gemm_into(&csr, &b, &mut portable)
            .unwrap();
        assert!(fast.approx_eq(&portable, 1e-5));
    }
}

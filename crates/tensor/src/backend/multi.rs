//! Multi-RHS panel packing: one LHS operand, many right-hand sides, one kernel pass.
//!
//! A batched serving workload multiplies one (possibly decomposed) operand `A` by many
//! narrow right-hand panels `B₁ … Bₚ` — one per request. Running them one at a time pays
//! the per-entry dispatch cost of `A` once *per panel*; packing the panels column-wise
//! into a single wide `B = [B₁ | B₂ | … | Bₚ]` pays it once per batch, because every
//! [`GemmBackend`](super::GemmBackend) row kernel streams each stored entry of `A` across
//! the full width of `B`. Column independence of GEMM makes the packed result exactly the
//! per-panel results side by side — each output column accumulates in the same order
//! either way, so unpacking reproduces the one-at-a-time outputs bit for bit.
//!
//! [`GemmBackend::gemm_multi_into`](super::GemmBackend::gemm_multi_into) is the
//! trait-level entry built on these helpers; the execution engine's `submit` path packs
//! at the series level so one decomposed `A` serves a whole request group.

use crate::{Matrix, Result, TensorError};

/// Packs right-hand panels column-wise into one wide matrix `[B₁ | B₂ | … | Bₚ]`.
///
/// Zero-width panels are allowed (they contribute no columns); an empty panel list packs
/// to a `0×0` matrix.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the panels do not all have the same number
/// of rows.
pub fn pack_panels(panels: &[&Matrix]) -> Result<Matrix> {
    let rows = panels.first().map_or(0, |p| p.rows());
    let mut total_cols = 0usize;
    for p in panels {
        if p.rows() != rows {
            return Err(TensorError::ShapeMismatch {
                op: "pack panels",
                lhs: (rows, total_cols),
                rhs: p.shape(),
            });
        }
        total_cols += p.cols();
    }
    let mut wide = Matrix::zeros(rows, total_cols);
    for r in 0..rows {
        let dst = wide.row_mut(r);
        let mut offset = 0;
        for p in panels {
            dst[offset..offset + p.cols()].copy_from_slice(p.row(r));
            offset += p.cols();
        }
    }
    Ok(wide)
}

/// Splits a packed wide matrix back into panels of the given widths.
///
/// # Panics
///
/// Panics if the widths do not sum to the wide matrix's column count.
pub fn unpack_panels(wide: &Matrix, widths: &[usize]) -> Vec<Matrix> {
    assert_eq!(
        widths.iter().sum::<usize>(),
        wide.cols(),
        "panel widths must cover the packed matrix exactly"
    );
    let mut outs: Vec<Matrix> = widths
        .iter()
        .map(|&w| Matrix::zeros(wide.rows(), w))
        .collect();
    scatter_columns(wide, &mut outs);
    outs
}

/// Scatters a packed wide matrix's columns into pre-shaped destination panels.
///
/// # Panics
///
/// Panics if the destination row counts or total width disagree with `wide`.
pub fn unpack_panels_into(wide: &Matrix, outs: &mut [Matrix]) {
    assert_eq!(
        outs.iter().map(Matrix::cols).sum::<usize>(),
        wide.cols(),
        "panel widths must cover the packed matrix exactly"
    );
    assert!(
        outs.iter().all(|o| o.rows() == wide.rows()),
        "every destination panel must have the packed matrix's row count"
    );
    scatter_columns(wide, outs);
}

fn scatter_columns(wide: &Matrix, outs: &mut [Matrix]) {
    for r in 0..wide.rows() {
        let src = wide.row(r);
        let mut offset = 0;
        for out in outs.iter_mut() {
            let w = out.cols();
            out.row_mut(r).copy_from_slice(&src[offset..offset + w]);
            offset += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixGenerator;

    #[test]
    fn pack_then_unpack_roundtrips() {
        let mut gen = MatrixGenerator::seeded(7);
        let panels: Vec<Matrix> = [3usize, 1, 0, 5]
            .iter()
            .map(|&w| gen.normal(6, w, 0.0, 1.0))
            .collect();
        let refs: Vec<&Matrix> = panels.iter().collect();
        let wide = pack_panels(&refs).unwrap();
        assert_eq!(wide.shape(), (6, 9));
        let widths: Vec<usize> = panels.iter().map(Matrix::cols).collect();
        let back = unpack_panels(&wide, &widths);
        assert_eq!(back, panels);
    }

    #[test]
    fn packed_columns_are_panel_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let wide = pack_panels(&[&a, &b]).unwrap();
        assert_eq!(
            wide,
            Matrix::from_rows(&[vec![1.0, 2.0, 5.0], vec![3.0, 4.0, 6.0]])
        );
    }

    #[test]
    fn empty_panel_list_packs_to_empty() {
        let wide = pack_panels(&[]).unwrap();
        assert_eq!(wide.shape(), (0, 0));
        assert!(unpack_panels(&wide, &[]).is_empty());
    }

    #[test]
    fn mismatched_rows_are_rejected() {
        let a = Matrix::zeros(4, 2);
        let b = Matrix::zeros(3, 2);
        assert!(pack_panels(&[&a, &b]).is_err());
    }

    #[test]
    fn unpack_into_preserves_accumulated_shapes() {
        let wide = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let mut outs = vec![Matrix::zeros(1, 1), Matrix::zeros(1, 2)];
        unpack_panels_into(&wide, &mut outs);
        assert_eq!(outs[0][(0, 0)], 1.0);
        assert_eq!(outs[1].row(0), &[2.0, 3.0]);
    }
}

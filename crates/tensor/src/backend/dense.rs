//! Cache-blocked dense GEMM backend over runtime-dispatched SIMD tiles.

use super::simd::{self, SimdLevel};
use super::{CostHint, GemmBackend, GemmOperand};
use crate::Matrix;

/// Cache-blocked dense kernel: register-blocked 4×8 SIMD FMA tiles under two levels of
/// cache blocking, with exact-zero skipping.
///
/// Three levels of structure, outermost first:
///
/// * **Cache blocking** — the loop nest tiles the reduction (`K`) and output-column (`N`)
///   dimensions so that one `block_k × block_n` panel of `B` stays cache-resident while
///   every output row of the current row block accumulates against it (with the default
///   `256 × 256` tile the panel is 256 KiB, sized for a typical L2).
/// * **Register blocking** — output rows are processed four at a time, so every `B`
///   element loaded from cache feeds four multiply-accumulate streams instead of one.
///   This cuts `B` traffic 4× — the dominant cost of a row-major GEMM, where the naive
///   kernel re-streams all of `B` once per output row.
/// * **SIMD inner tile** — the four-row body is a 4×8 microkernel
///   ([`simd::axpy4`]): each 8-lane load of `B` feeds four FMA streams. The
///   instruction tier (256-bit AVX/FMA vs. the hand-unrolled portable fallback) is
///   detected **once at construction** ([`SimdLevel::detect`], overridable with
///   [`with_simd`](DenseBackend::with_simd) or `TASD_SIMD=portable`) — no kernel call
///   ever re-runs feature detection.
///
/// ```text
/// for jb in N-blocks            // C and B column panel
///   for kb in K-blocks          // B row panel stays hot
///     for i in row block by 4   // 4 output rows share each B load
///       for p in kb (some a[i..i+4, p] != 0)
///         axpy4: c[i+q, jb..] += a[i+q, p] * b[p, jb..]  8 lanes/step  (q = 0..4)
/// ```
///
/// A reduction step is skipped when all four `A` operands are exact zeros, so very
/// sparse inputs stay cheap; within a live group, zero lanes are skipped per-lane —
/// the [`GemmBackend`] zero-annihilation contract, which keeps this kernel's non-finite
/// behavior identical to the scalar reference and the sparse kernels.
///
/// Compressed operands are densified one row block at a time into a scratch slab before
/// hitting the blocked kernel; the scratch fill is linear in the block size and is
/// reported as overhead in [`GemmBackend::cost_hint`]. That trade — decompress then
/// stream — is what makes this backend the right choice for *dense-ish* TASD terms,
/// while truly sparse terms belong on [`CsrBackend`](super::CsrBackend) /
/// [`NmBackend`](super::NmBackend); the crossover is measured in `tasd-bench`'s
/// `backends` bench and re-derived into the engine's `BackendTable` from
/// `BENCH_backends.json`.
#[derive(Debug, Clone)]
pub struct DenseBackend {
    /// Reduction-dimension tile size.
    block_k: usize,
    /// Output-column tile size.
    block_n: usize,
    /// SIMD tier the inner tiles dispatch to, fixed at construction.
    simd: SimdLevel,
}

impl DenseBackend {
    /// Default reduction tile (`K` direction).
    pub const DEFAULT_BLOCK_K: usize = 256;
    /// Default output-column tile (`N` direction).
    pub const DEFAULT_BLOCK_N: usize = 256;

    /// A backend with explicit tile sizes (both must be positive).
    ///
    /// # Panics
    ///
    /// Panics if either block size is zero.
    pub fn with_block_sizes(block_k: usize, block_n: usize) -> Self {
        assert!(block_k > 0 && block_n > 0, "tile sizes must be positive");
        DenseBackend {
            block_k,
            block_n,
            simd: SimdLevel::detected(),
        }
    }

    /// Pins the SIMD tier (e.g. [`SimdLevel::Portable`] to force the fallback arm in
    /// tests); [`Default`] uses the tier detected once per process.
    #[must_use]
    pub fn with_simd(mut self, level: SimdLevel) -> Self {
        self.simd = level;
        self
    }

    /// The `(block_k, block_n)` tile sizes.
    pub fn block_sizes(&self) -> (usize, usize) {
        (self.block_k, self.block_n)
    }

    /// The SIMD tier the inner tiles run at.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// The blocked kernel over a contiguous row-major slab of `A` rows.
    // lint: hot-path, warm-path, allow(indexing): tile edges are clamped with .min(k)
    // and .min(n), and the row slabs are m_rows*k / m_rows*n elements by contract
    fn gemm_blocked(&self, a_rows: &[f32], k: usize, b: &Matrix, c_rows: &mut [f32], n: usize) {
        if k == 0 || n == 0 {
            return;
        }
        let m_rows = a_rows.len() / k;
        for jb in (0..n).step_by(self.block_n) {
            let j_end = (jb + self.block_n).min(n);
            for kb in (0..k).step_by(self.block_k) {
                let k_end = (kb + self.block_k).min(k);
                let mut i = 0;
                // Register-blocked body: 4 output rows share every B load through the
                // 4×8 SIMD tile.
                while i + 4 <= m_rows {
                    let (a0, rest) = a_rows[i * k..].split_at(k);
                    let (a1, rest) = rest.split_at(k);
                    let (a2, a3) = rest.split_at(k);
                    let (c0, rest) = c_rows[i * n..].split_at_mut(n);
                    let (c1, rest) = rest.split_at_mut(n);
                    let (c2, c3) = rest.split_at_mut(n);
                    let (c0, c1) = (&mut c0[jb..j_end], &mut c1[jb..j_end]);
                    let (c2, c3) = (&mut c2[jb..j_end], &mut c3[jb..j_end]);
                    for p in kb..k_end {
                        let vs = [a0[p], a1[p], a2[p], a3[p]];
                        if vs == [0.0, 0.0, 0.0, 0.0] {
                            continue;
                        }
                        let b_row = &b.row(p)[jb..j_end];
                        simd::axpy4(self.simd, vs, b_row, c0, c1, c2, c3);
                    }
                    i += 4;
                }
                // Remainder rows, one at a time with full zero skipping.
                while i < m_rows {
                    let a_row = &a_rows[i * k..(i + 1) * k];
                    let c_row = &mut c_rows[i * n + jb..i * n + j_end];
                    for (p, &a_ip) in a_row.iter().enumerate().take(k_end).skip(kb) {
                        if a_ip == 0.0 {
                            continue;
                        }
                        let b_row = &b.row(p)[jb..j_end];
                        simd::axpy(self.simd, a_ip, b_row, c_row);
                    }
                    i += 1;
                }
            }
        }
    }
}

impl Default for DenseBackend {
    fn default() -> Self {
        DenseBackend {
            block_k: Self::DEFAULT_BLOCK_K,
            block_n: Self::DEFAULT_BLOCK_N,
            simd: SimdLevel::detected(),
        }
    }
}

impl GemmBackend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    // lint: hot-path, warm-path, allow(indexing): scratch is allocated at
    // (r1 - r0) * k right above its row slices, and operand columns are below k
    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        let (_, k) = lhs.shape();
        if let Some(dense) = lhs.as_dense() {
            self.gemm_blocked(dense.rows_slice(r0, r1), k, b, c_rows, n_cols);
            return;
        }
        // Densify the row block into scratch, then stream through the blocked kernel.
        // lint: allow(alloc): correctness fallback for non-native operands — the
        // engine's prepared paths pack operands dense before choosing this backend
        let mut scratch = vec![0.0f32; (r1 - r0) * k];
        for i in r0..r1 {
            let row = &mut scratch[(i - r0) * k..(i - r0 + 1) * k];
            lhs.for_each_in_row(i, &mut |col, value| row[col] = value);
        }
        self.gemm_blocked(&scratch, k, b, c_rows, n_cols);
    }

    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
        let (rows, k) = lhs.shape();
        // The blocked kernel touches every A element (the zero test) even though only
        // non-zeros multiply. Calibration from the SIMD bench sweep in
        // `BENCH_backends.json` (512³, AVX/FMA tier): 13.4M effectual MACs in 2.32 ms
        // at s90 and 67.1M in 8.83 ms at s50 fit ≈ 0.12 ns per SIMD MAC — about half
        // the scalar kernel's rate, so the scalar zero test now weighs roughly twice
        // what it did against the seed's scalar kernel: half a MAC per element, up
        // from the seed's quarter. (The fit's remaining nnz-independent ≈ 0.7 ms is
        // per-tile B/C traffic that scales with `n_cols`, which the planner already
        // accounts for in compute, not a per-element scan cost.)
        let scan = (rows as u64 * k as u64) / 2;
        // Scratch densification is one store per element — about the same cost per
        // element as the zero-test scan on the SIMD kernels (both are scalar, cache-
        // resident passes), plus the entry iteration to produce it.
        let densify = if lhs.as_dense().is_some() {
            0
        } else {
            rows as u64 * k as u64
        };
        CostHint {
            compute_macs: lhs.nnz() as u64 * n_cols as u64,
            overhead_macs: scan + densify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, CsrMatrix, Matrix, MatrixGenerator};

    #[test]
    fn blocked_kernel_matches_reference_across_tile_boundaries() {
        let mut gen = MatrixGenerator::seeded(11);
        // Sizes straddling the default 256/256 tiles in both K and N: below, at, above.
        for (m, k, n) in [(3, 255, 255), (4, 256, 256), (5, 300, 257), (1, 1, 1)] {
            let a = gen.sparse_normal(m, k, 0.4);
            let b = gen.normal(k, n, 0.0, 1.0);
            let reference = gemm(&a, &b).unwrap();
            let mut c = Matrix::zeros(m, n);
            DenseBackend::default().gemm_into(&a, &b, &mut c).unwrap();
            assert!(c.approx_eq(&reference, 1e-3), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn portable_tier_is_bitwise_identical_to_the_scalar_reference() {
        let mut gen = MatrixGenerator::seeded(14);
        for (m, k, n) in [(6, 40, 33), (5, 17, 8), (9, 64, 31)] {
            let a = gen.sparse_normal(m, k, 0.5);
            let b = gen.normal(k, n, 0.0, 1.0);
            let reference = gemm(&a, &b).unwrap();
            let backend = DenseBackend::default().with_simd(SimdLevel::Portable);
            let mut c = Matrix::zeros(m, n);
            backend.gemm_into(&a, &b, &mut c).unwrap();
            // The portable tile performs exactly the scalar operations in the scalar
            // order, so this is equality, not tolerance.
            assert_eq!(c, reference, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn tiny_tiles_still_correct() {
        let mut gen = MatrixGenerator::seeded(12);
        let a = gen.normal(7, 19, 0.0, 1.0);
        let b = gen.normal(19, 11, 0.0, 1.0);
        let reference = gemm(&a, &b).unwrap();
        let backend = DenseBackend::with_block_sizes(3, 2);
        let mut c = Matrix::zeros(7, 11);
        backend.gemm_into(&a, &b, &mut c).unwrap();
        assert!(c.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn densification_path_matches_native_path() {
        let mut gen = MatrixGenerator::seeded(13);
        let a = gen.sparse_normal(20, 40, 0.8);
        let b = gen.normal(40, 9, 0.0, 1.0);
        let csr = CsrMatrix::from_dense(&a);
        let backend = DenseBackend::default();
        let mut via_dense = Matrix::zeros(20, 9);
        let mut via_csr = Matrix::zeros(20, 9);
        backend.gemm_into(&a, &b, &mut via_dense).unwrap();
        backend.gemm_into(&csr, &b, &mut via_csr).unwrap();
        assert!(via_dense.approx_eq(&via_csr, 1e-4));
    }

    #[test]
    fn cost_hint_charges_densification_for_compressed_operands() {
        let a = Matrix::filled(8, 16, 1.0);
        let csr = CsrMatrix::from_dense(&a);
        let backend = DenseBackend::default();
        let native = backend.cost_hint(&a, 4);
        let foreign = backend.cost_hint(&csr, 4);
        assert_eq!(native.compute_macs, foreign.compute_macs);
        assert!(foreign.overhead_macs > native.overhead_macs);
    }
}

//! Structured N:M sparse GEMM backend.

use super::simd::SimdLevel;
use super::{gemm_rows_generic, CostHint, GemmBackend, GemmOperand};
use crate::Matrix;

/// Structured sparse kernel consuming compressed N:M operands (values + lane metadata)
/// directly — the software analogue of a sparse-tensor-core datapath, and the backend a
/// TASD series term normally executes on.
///
/// Compressed N:M operands run on their native block kernel — each stored value streams
/// its metadata-indexed `B` row through an 8-wide SIMD axpy ([`super::simd::axpy`]) at
/// the tier detected once at construction, the software shape of IndexMAC's indexed
/// vector MACs; other formats fall back to row-entry iteration. Because N:M metadata
/// fixes at most `N` entries per `M`-element block, the native kernel enjoys bounded,
/// regular per-block work — the property that makes the format cheap in hardware — but
/// in software its cost is the same one-axpy-per-stored-value as CSR, so the planner
/// treats the two as cost-equivalent and picks by format instead.
#[derive(Debug, Clone, Copy)]
pub struct NmBackend {
    /// SIMD tier the native block kernel dispatches to, fixed at construction.
    simd: SimdLevel,
}

impl NmBackend {
    /// A backend at the tier detected once per process.
    pub fn new() -> Self {
        NmBackend {
            simd: SimdLevel::detected(),
        }
    }

    /// Pins the SIMD tier (e.g. [`SimdLevel::Portable`] to force the fallback arm in
    /// tests).
    #[must_use]
    pub fn with_simd(mut self, level: SimdLevel) -> Self {
        self.simd = level;
        self
    }

    /// The SIMD tier the native block kernel runs at.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }
}

impl Default for NmBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl GemmBackend for NmBackend {
    fn name(&self) -> &'static str {
        "nm"
    }

    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        if let Some(nm) = lhs.as_nm() {
            nm.spmm_rows_into_simd(b, r0, r1, c_rows, n_cols, self.simd);
            return;
        }
        gemm_rows_generic(lhs, b, r0, r1, c_rows, n_cols);
    }

    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> CostHint {
        let compute = lhs.nnz() as u64 * n_cols as u64;
        CostHint {
            compute_macs: compute,
            // Same per-entry indirection as the CSR kernel.
            overhead_macs: compute / 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, MatrixGenerator, NmCompressed, NmPattern};

    #[test]
    fn native_nm_path_matches_reference() {
        let mut gen = MatrixGenerator::seeded(31);
        let pattern = NmPattern::new(2, 8).unwrap();
        let a = pattern.view(&gen.sparse_normal(24, 32, 0.5));
        let nm = NmCompressed::from_dense_strict(&a, pattern).unwrap();
        let b = gen.normal(32, 12, 0.0, 1.0);
        let mut c = Matrix::zeros(24, 12);
        NmBackend::default().gemm_into(&nm, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }

    #[test]
    fn dense_operand_falls_back_correctly() {
        let mut gen = MatrixGenerator::seeded(32);
        let a = gen.sparse_normal(9, 16, 0.4);
        let b = gen.normal(16, 5, 0.0, 1.0);
        let mut c = Matrix::zeros(9, 5);
        NmBackend::default().gemm_into(&a, &b, &mut c).unwrap();
        assert!(c.approx_eq(&gemm(&a, &b).unwrap(), 1e-4));
    }

    #[test]
    fn portable_tier_matches_detected_tier() {
        let mut gen = MatrixGenerator::seeded(33);
        let pattern = NmPattern::new(2, 8).unwrap();
        let a = pattern.view(&gen.sparse_normal(16, 40, 0.5));
        let nm = NmCompressed::from_dense_strict(&a, pattern).unwrap();
        let b = gen.normal(40, 11, 0.0, 1.0);
        let mut fast = Matrix::zeros(16, 11);
        let mut portable = Matrix::zeros(16, 11);
        NmBackend::new().gemm_into(&nm, &b, &mut fast).unwrap();
        NmBackend::new()
            .with_simd(SimdLevel::Portable)
            .gemm_into(&nm, &b, &mut portable)
            .unwrap();
        assert!(fast.approx_eq(&portable, 1e-5));
    }
}

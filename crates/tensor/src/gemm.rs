//! Reference GEMM kernels over dense matrices.
//!
//! These kernels are the numerical ground truth for the TASD reproduction: the
//! structured-sparse kernels in [`crate::nm_compressed`] and [`crate::csr`] are validated
//! against them, and the approximated TASD-series GEMM in the `tasd` crate reports its
//! error relative to these results.
//!
//! They are deliberately the *simple* kernels — an i-k-j scalar loop with zero skipping.
//! The production kernels (cache-blocked dense, format-native sparse, and parallel
//! row-block tiling) live in [`crate::backend`] and are validated against these.

use crate::{Matrix, Result, TensorError};

/// Computes `C = A * B` with the scalar reference kernel (i-k-j loop order, exact zeros on
/// the `A` side skipped).
///
/// This kernel is unblocked on purpose: it is the ground truth the cache-blocked
/// [`crate::backend::DenseBackend`] and the other [`crate::backend`] kernels are validated
/// against. Production call sites should dispatch through a
/// [`GemmBackend`](crate::backend::GemmBackend) instead of calling this directly.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use tasd_tensor::{gemm, Matrix};
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(gemm(&a, &b).unwrap(), a);
/// ```
pub fn gemm(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut c)?;
    Ok(c)
}

/// Computes `C += A * B` with the scalar reference kernel, accumulating into an existing
/// output matrix.
///
/// Accumulation is the primitive a TASD series execution needs: each structured term
/// contributes `A_i * B` into the same accumulator, mirroring how the hardware keeps the C
/// tile stationary across decomposed terms.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the operand shapes are inconsistent with the
/// accumulator.
pub fn gemm_into(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.rows() != a.rows() || c.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "gemm accumulator",
            lhs: (a.rows(), b.cols()),
            rhs: c.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // i-k-j loop order keeps the B row and C row contiguous in the inner loop.
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                // Skipping exact zeros makes the reference kernel cheap on sparse inputs
                // without changing the result.
                continue;
            }
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
    Ok(())
}

/// Counts the number of effectual multiply-accumulate operations of `A * B`, i.e. MACs
/// whose `A` operand is non-zero.
///
/// This is the operand-gating compute model used by the MAC-reduction experiments
/// (paper Fig. 20): a structured-sparse accelerator skips a MAC when the (decomposed)
/// `A`-side operand is zero.
pub fn effectual_macs(a: &Matrix, b_cols: usize) -> u64 {
    a.count_nonzeros() as u64 * b_cols as u64
}

/// Counts the dense MAC total of a GEMM with the given dimensions (`M*N*K`).
pub fn dense_macs(m: usize, n: usize, k: usize) -> u64 {
    m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::MatrixGenerator;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut gen = MatrixGenerator::seeded(7);
        for &(m, k, n) in &[(5, 8, 3), (16, 16, 16), (33, 17, 9), (1, 64, 1)] {
            let a = gen.normal(m, k, 0.0, 1.0);
            let b = gen.normal(k, n, 0.0, 1.0);
            let fast = gemm(&a, &b).unwrap();
            let slow = naive_gemm(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-4), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            gemm(&a, &b).unwrap_err(),
            TensorError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn accumulator_shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(2, 3);
        assert!(gemm_into(&a, &b, &mut c).is_err());
    }

    #[test]
    fn gemm_into_accumulates() {
        let a = Matrix::identity(3);
        let b = Matrix::filled(3, 3, 2.0);
        let mut c = Matrix::filled(3, 3, 1.0);
        gemm_into(&a, &b, &mut c).unwrap();
        assert_eq!(c, Matrix::filled(3, 3, 3.0));
        gemm_into(&a, &b, &mut c).unwrap();
        assert_eq!(c, Matrix::filled(3, 3, 5.0));
    }

    #[test]
    fn zero_lhs_skip_preserves_result() {
        let mut gen = MatrixGenerator::seeded(11);
        let a = gen.sparse_uniform(12, 16, 0.7);
        let b = gen.normal(16, 10, 0.0, 1.0);
        let fast = gemm(&a, &b).unwrap();
        let slow = naive_gemm(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn mac_counting() {
        assert_eq!(dense_macs(4, 5, 6), 120);
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 0.0, 0.0]]);
        assert_eq!(effectual_macs(&a, 10), 20);
    }

    #[test]
    fn empty_product_dimensions() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 3));
    }
}

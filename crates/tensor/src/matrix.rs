//! Dense, row-major `f32` matrix.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f32` values.
///
/// This is the canonical dense representation used throughout the TASD reproduction:
/// weights and activations are materialized as `Matrix` before decomposition, and the
/// reference GEMM kernels operate on it.
///
/// # Example
///
/// ```
/// use tasd_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimensions`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimensions {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A flat, row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable flat, row-major view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows rows `[r0, r1)` as one contiguous row-major slice (the matrix is row-major,
    /// so a row range is always contiguous). This is what the GEMM backends tile over.
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > rows`.
    pub fn rows_slice(&self, r0: usize, r1: usize) -> &[f32] {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} out of bounds"
        );
        &self.data[r0 * self.cols..r1 * self.cols]
    }

    /// Mutable variant of [`Matrix::rows_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > rows`.
    pub fn rows_slice_mut(&mut self, r0: usize, r1: usize) -> &mut [f32] {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} out of bounds"
        );
        &mut self.data[r0 * self.cols..r1 * self.cols]
    }

    /// A 64-bit content fingerprint of the matrix (shape + element bit patterns).
    ///
    /// Used by the execution engine's decomposition cache to key matrices without storing
    /// them. Equal matrices always produce equal fingerprints; distinct matrices collide
    /// with probability ~2⁻⁶⁴ per pair, which the cache accepts by design (a collision
    /// returns a decomposition of the colliding matrix — detectable, never memory-unsafe).
    ///
    /// The hash runs four independent multiply-xor lanes over pairs of element bit
    /// patterns (so the multiplier's latency pipelines instead of serializing) and
    /// finishes each lane with a splitmix64-style avalanche. This is a content scan —
    /// O(elements) — which is why the engine memoizes fingerprints per operand
    /// allocation on its serving path instead of rescanning per request.
    pub fn fingerprint(&self) -> u64 {
        const M: u64 = 0x9E37_79B9_7F4A_7C15;
        #[inline]
        fn avalanche(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let mut lanes = [
            M ^ self.rows as u64,
            M.rotate_left(17) ^ self.cols as u64,
            M.rotate_left(34),
            M.rotate_left(51),
        ];
        let mut chunks = self.data.chunks_exact(8);
        for chunk in &mut chunks {
            for (lane, pair) in lanes.iter_mut().zip(chunk.chunks_exact(2)) {
                let word = (pair[0].to_bits() as u64) << 32 | pair[1].to_bits() as u64;
                *lane = (*lane ^ word).wrapping_mul(M);
            }
        }
        for (i, &x) in chunks.remainder().iter().enumerate() {
            let lane = &mut lanes[i % 4];
            *lane = (*lane ^ (x.to_bits() as u64 | 1 << 63)).wrapping_mul(M);
        }
        avalanche(
            avalanche(lanes[0])
                .wrapping_add(avalanche(lanes[1]).rotate_left(16))
                .wrapping_add(avalanche(lanes[2]).rotate_left(32))
                .wrapping_add(avalanche(lanes[3]).rotate_left(48)),
        )
    }

    /// Dense storage footprint in bytes (`rows · cols · 4`), the figure the execution
    /// engine's cache accounts for a dense-packed prepared term.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Returns element `(i, j)` or `None` if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f32> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn try_add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn try_sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum of the absolute values of all elements.
    pub fn abs_sum(&self) -> f64 {
        self.data.iter().map(|&x| x.abs() as f64).sum()
    }

    /// Number of non-zero elements.
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Number of exactly-zero elements.
    pub fn count_zeros(&self) -> usize {
        self.len() - self.count_nonzeros()
    }

    /// Extracts rows `[r0, r1)` as a standalone matrix in one contiguous copy (the
    /// storage is row-major, so a row range is a single `memcpy`). This is the shard
    /// extraction primitive of the row-sharded execution path: unlike [`Matrix::block`]
    /// it never walks elements one by one.
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > rows`.
    pub fn row_block(&self, r0: usize, r1: usize) -> Matrix {
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.rows_slice(r0, r1).to_vec(),
        }
    }

    /// Per-row non-zero counts, in row order. One pass over the storage; this is what
    /// nnz-balanced shard policies split on.
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| self.row(i).iter().filter(|&&x| x != 0.0).count())
            .collect()
    }

    /// Returns a sub-matrix covering rows `[r0, r0+nrows)` and columns `[c0, c0+ncols)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block extends past the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Matrix {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "block out of bounds"
        );
        Matrix::from_fn(nrows, ncols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Pads the matrix with zero columns on the right so that the width becomes a multiple
    /// of `multiple`. Returns `self` unchanged (cloned) when already aligned.
    pub fn pad_cols_to_multiple(&self, multiple: usize) -> Matrix {
        assert!(multiple > 0, "padding multiple must be positive");
        let rem = self.cols % multiple;
        if rem == 0 {
            return self.clone();
        }
        let new_cols = self.cols + (multiple - rem);
        Matrix::from_fn(self.rows, new_cols, |i, j| {
            if j < self.cols {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Returns `true` if every corresponding element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        crate::gemm::gemm(self, rhs).expect("matrix multiplication shape mismatch")
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:8.3}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.iter().all(|&x| x == 0.0));
        assert_eq!(m.count_nonzeros(), 0);
        assert_eq!(m.count_zeros(), 15);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimensions { .. }));
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 7.5;
        assert_eq!(m[(1, 2)], 7.5);
        assert_eq!(m.get(1, 2), Some(7.5));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn identity_multiplication() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f32);
        let id = Matrix::identity(4);
        assert_eq!(&m * &id, m);
        assert_eq!(&id * &m, m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!((&a + &b)[(0, 0)], 3.0);
        assert_eq!((&a - &b)[(1, 1)], 2.0);
        assert_eq!(a.hadamard(&b).unwrap()[(1, 0)], 6.0);
        assert_eq!(a.scale(0.5)[(1, 1)], 2.0);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.abs_sum(), 10.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_add(&b).unwrap_err(),
            TensorError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let mut m = m;
        m.row_mut(0)[2] = 9.0;
        assert_eq!(m[(0, 2)], 9.0);
    }

    #[test]
    fn block_extraction() {
        let m = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32);
        let b = m.block(1, 2, 2, 3);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 2)], m[(2, 4)]);
    }

    #[test]
    fn pad_cols() {
        let m = Matrix::filled(2, 6, 1.0);
        let p = m.pad_cols_to_multiple(4);
        assert_eq!(p.shape(), (2, 8));
        assert_eq!(p[(0, 5)], 1.0);
        assert_eq!(p[(0, 6)], 0.0);
        assert_eq!(p[(1, 7)], 0.0);
        // Already aligned: unchanged.
        let q = p.pad_cols_to_multiple(4);
        assert_eq!(q, p);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0005;
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn count_nonzeros_counts_exact_zeros_only() {
        let m = Matrix::from_rows(&[vec![0.0, 1e-30, -0.0, 2.0]]);
        assert_eq!(m.count_nonzeros(), 2);
    }

    #[test]
    fn rows_slice_is_contiguous_row_major() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.rows_slice(1, 3), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(m.rows_slice(0, 4).len(), 12);
        assert_eq!(m.rows_slice(2, 2), &[] as &[f32]);
        let mut m = m;
        m.rows_slice_mut(3, 4)[0] = -1.0;
        assert_eq!(m[(3, 0)], -1.0);
    }

    #[test]
    fn row_block_is_a_contiguous_row_slice() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f32);
        let b = m.row_block(1, 4);
        assert_eq!(b.shape(), (3, 3));
        assert_eq!(b.as_slice(), m.rows_slice(1, 4));
        assert_eq!(b, m.block(1, 0, 3, 3));
        // Degenerate ranges stay well-formed.
        assert_eq!(m.row_block(2, 2).shape(), (0, 3));
        assert_eq!(m.row_block(0, 5), m);
    }

    #[test]
    fn row_nnz_counts_match_per_row_scans() {
        let m = Matrix::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![2.0, 3.0, -4.0],
        ]);
        assert_eq!(m.row_nnz_counts(), vec![1, 0, 3]);
        assert_eq!(m.row_nnz_counts().iter().sum::<usize>(), m.count_nonzeros());
        assert!(Matrix::zeros(0, 4).row_nnz_counts().is_empty());
    }

    #[test]
    fn fingerprint_tracks_content_and_shape() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f32);
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c[(2, 3)] += 1.0;
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same data, different shape.
        let flat = a.as_slice().to_vec();
        let reshaped = Matrix::from_vec(4, 3, flat).unwrap();
        assert_ne!(a.fingerprint(), reshaped.fingerprint());
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        let doubled = m.map(|x| x * 2.0);
        let mut m2 = m.clone();
        m2.map_inplace(|x| x * 2.0);
        assert_eq!(doubled, m2);
    }
}

//! Compressed sparse row storage for unstructured sparse matrices.
//!
//! The unstructured-sparse baselines in the paper (SCNN, SIGMA, DSTC) consume operands in a
//! fully unstructured compressed form. [`CsrMatrix`] is the reference for that: it stores
//! only non-zeros with explicit column indices, and its SpMM performs exactly one MAC per
//! stored value per output column.

use crate::backend::simd::{self, SimdLevel};
use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row matrix of `f32` values.
///
/// # Example
///
/// ```
/// use tasd_tensor::{CsrMatrix, Matrix};
///
/// let dense = Matrix::from_rows(&[vec![0.0, 3.0], vec![1.0, 0.0]]);
/// let csr = CsrMatrix::from_dense(&dense);
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.to_dense(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense matrix, storing only the exact non-zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::CorruptCompressed`] if the parts are structurally
    /// inconsistent (pointer monotonicity, index bounds, array lengths).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self> {
        let csr = CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape of the logical matrix as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparsity degree of the logical matrix.
    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Storage footprint in bytes: 4-byte values, 4-byte column indices, 8-byte row
    /// pointers — the indexing overhead that makes unstructured formats expensive in
    /// hardware relative to N:M metadata.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 8
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[(i, self.col_idx[k])] = self.values[k];
            }
        }
        out
    }

    /// Iterator over the stored `(column, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Sparse-dense matrix multiply `C = self * B`, one MAC per stored non-zero per output
    /// column.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != b.rows()`.
    pub fn spmm(&self, b: &Matrix) -> Result<Matrix> {
        if self.cols != b.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "csr spmm",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        let mut c = Matrix::zeros(self.rows, b.cols());
        let rows = self.rows;
        let n = b.cols();
        self.spmm_rows_into(b, 0, rows, c.rows_slice_mut(0, rows), n);
        Ok(c)
    }

    /// Row-range SpMM kernel: `C[r0..r1] += self[r0..r1, :] * B`, where `c_rows` is the
    /// contiguous row-major slab covering output rows `[r0, r1)` with `n_cols` columns.
    /// This is the format-native kernel the GEMM backends (and their parallel row-block
    /// tiling) drive.
    ///
    /// # Panics
    ///
    /// Panics if the row range, `b`, or `c_rows` are inconsistent with this matrix. Use the
    /// backend layer ([`crate::backend`]) for checked dispatch.
    // lint: hot-path, warm-path, allow(panic, indexing): the asserts are this kernel's
    // documented # Panics contract, and they pin the slab and row-pointer indexing below
    pub fn spmm_rows_into(
        &self,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        self.spmm_rows_into_simd(b, r0, r1, c_rows, n_cols, SimdLevel::detected());
    }

    /// [`spmm_rows_into`](Self::spmm_rows_into) at an explicit SIMD tier: each stored
    /// non-zero streams its `B` row through an 8-wide axpy at `level`. Stored zeros are
    /// skipped — the backend layer's zero-annihilation contract
    /// ([`crate::backend::GemmBackend`]).
    ///
    /// # Panics
    ///
    /// Panics if the row range, `b`, or `c_rows` are inconsistent with this matrix. Use the
    /// backend layer ([`crate::backend`]) for checked dispatch.
    // lint: hot-path, warm-path, allow(panic, indexing): the asserts are this kernel's
    // documented # Panics contract, and they pin the slab and row-pointer indexing below
    pub fn spmm_rows_into_simd(
        &self,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
        level: SimdLevel,
    ) {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} out of bounds"
        );
        assert_eq!(self.cols, b.rows(), "reduction depth mismatch");
        assert_eq!(n_cols, b.cols(), "output width mismatch");
        assert_eq!(
            c_rows.len(),
            (r1 - r0) * n_cols,
            "output slab size mismatch"
        );
        for i in r0..r1 {
            let c_row = &mut c_rows[(i - r0) * n_cols..(i - r0 + 1) * n_cols];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                if v == 0.0 {
                    continue;
                }
                simd::axpy(level, v, b.row(self.col_idx[k]), c_row);
            }
        }
    }

    /// Number of effectual MACs this operand contributes to a GEMM with `n_cols` output
    /// columns.
    pub fn effectual_macs(&self, n_cols: usize) -> u64 {
        self.nnz() as u64 * n_cols as u64
    }

    /// Verifies structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::CorruptCompressed`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(TensorError::CorruptCompressed(format!(
                "row_ptr length {} does not match {} rows",
                self.row_ptr.len(),
                self.rows
            )));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(TensorError::CorruptCompressed(
                "col_idx and values lengths differ".to_string(),
            ));
        }
        if *self.row_ptr.last().unwrap_or(&0) != self.values.len() {
            return Err(TensorError::CorruptCompressed(
                "final row pointer does not cover all values".to_string(),
            ));
        }
        if self.row_ptr.windows(2).any(|w| w[1] < w[0]) {
            return Err(TensorError::CorruptCompressed(
                "row pointers are not monotone".to_string(),
            ));
        }
        if self.col_idx.iter().any(|&j| j >= self.cols) {
            return Err(TensorError::CorruptCompressed(
                "column index out of bounds".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::random::MatrixGenerator;

    #[test]
    fn round_trip_dense() {
        let m = MatrixGenerator::seeded(3).sparse_normal(20, 30, 0.8);
        let csr = CsrMatrix::from_dense(&m);
        assert_eq!(csr.to_dense(), m);
        assert_eq!(csr.nnz(), m.count_nonzeros());
        csr.validate().unwrap();
    }

    #[test]
    fn spmm_matches_gemm() {
        let mut gen = MatrixGenerator::seeded(4);
        let a = gen.sparse_normal(17, 23, 0.6);
        let b = gen.normal(23, 9, 0.0, 1.0);
        let c_ref = gemm(&a, &b).unwrap();
        let c_sp = CsrMatrix::from_dense(&a).spmm(&b).unwrap();
        assert!(c_sp.approx_eq(&c_ref, 1e-4));
    }

    #[test]
    fn spmm_shape_mismatch() {
        let a = CsrMatrix::from_dense(&Matrix::zeros(3, 4));
        assert!(a.spmm(&Matrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn from_parts_validation() {
        // Valid 2x2 with one nonzero.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![1], vec![5.0]).is_ok());
        // Bad row_ptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![1], vec![5.0]).is_err());
        // Column index out of bounds.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![2], vec![5.0]).is_err());
        // Non-monotone pointers.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 0], vec![1], vec![5.0]).is_err());
        // Mismatched values / col_idx lengths.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![1, 0], vec![5.0]).is_err());
    }

    #[test]
    fn sparsity_and_storage() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0, 0.0]]);
        let csr = CsrMatrix::from_dense(&m);
        assert_eq!(csr.sparsity(), 7.0 / 8.0);
        assert_eq!(csr.effectual_macs(10), 10);
        assert_eq!(csr.storage_bytes(), 4 + 4 + 3 * 8);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(0, 0));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.sparsity(), 0.0);
        csr.validate().unwrap();
    }
}

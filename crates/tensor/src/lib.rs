//! # tasd-tensor
//!
//! Tensor substrate for the TASD (Tensor Approximation via Structured Decomposition)
//! reproduction. This crate provides everything below the decomposition algorithm itself:
//!
//! * [`Matrix`] — a dense, row-major `f32` matrix with the usual constructors and
//!   element-wise helpers.
//! * [`NmPattern`] — fine-grained N:M structured-sparsity patterns (at most N non-zeros in
//!   every M consecutive elements of a row), N:M *views* of dense matrices, and validity
//!   checks.
//! * [`NmCompressed`] — a compressed storage format for N:M structured sparse matrices
//!   (values + per-block metadata indices), mirroring what sparse tensor cores consume.
//! * [`CsrMatrix`] — compressed sparse row storage for unstructured sparse baselines.
//! * Reference GEMM kernels for dense, CSR and structured N:M operands ([`gemm`]).
//! * [`backend`] — the pluggable [`GemmBackend`] execution layer: cache-blocked dense,
//!   CSR, native N:M, and parallel row-block kernels behind one trait, over any
//!   [`GemmOperand`]. All production matmul traffic dispatches through it.
//! * [`im2col`] lowering so convolution layers can be executed and counted as GEMMs.
//! * Norms, error metrics, random sparse-matrix generators, and sparsity statistics.
//!
//! # Example
//!
//! ```
//! use tasd_tensor::{Matrix, NmPattern};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 3.0, 0.0, 0.0], vec![2.0, 4.0, 4.0, 1.0]]);
//! let pattern = NmPattern::new(2, 4).unwrap();
//! // The first row already satisfies 2:4; the second row drops its smallest element.
//! let view = pattern.view(&a);
//! assert!(pattern.is_satisfied_by(&view));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod csr;
pub mod error;
pub mod gemm;
pub mod im2col;
pub mod matrix;
pub mod nm;
pub mod nm_compressed;
pub mod norms;
pub mod random;
pub mod stats;

pub use backend::{
    CostHint, CsrBackend, DenseBackend, GemmBackend, GemmOperand, NmBackend, PackedKind,
    PackedOperand, ParallelBackend,
};
pub use csr::CsrMatrix;
pub use error::TensorError;
pub use gemm::{gemm, gemm_into};
pub use im2col::{im2col, Conv2dDims};
pub use matrix::Matrix;
pub use nm::NmPattern;
pub use nm_compressed::NmCompressed;
pub use norms::{
    dropped_magnitude_fraction, dropped_nonzero_fraction, frobenius_norm, max_abs_error,
    mean_squared_error, relative_frobenius_error,
};
pub use random::{magnitude_prune, MatrixGenerator};
pub use stats::{pseudo_density, sparsity_degree};

/// Result alias used across the tensor substrate.
pub type Result<T> = std::result::Result<T, TensorError>;

//! Offline stand-in for the `serde_json` crate (see `crates/compat/README.md`).
//!
//! The shim `serde` provides no serialization framework, so JSON encoding cannot be
//! performed: both entry points return [`Error::Stubbed`]. Call sites in this workspace
//! treat JSON dumps as optional side outputs and degrade to a warning.

use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Serialization is unavailable in the offline shim build.
    Stubbed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serde_json is stubbed in this offline build (crates/compat/serde_json); \
             JSON output is unavailable"
        )
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stubbed `serde_json::to_string_pretty`: always returns [`Error::Stubbed`].
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error::Stubbed)
}

/// Stubbed `serde_json::to_string`: always returns [`Error::Stubbed`].
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error::Stubbed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_reports_itself() {
        let err = to_string_pretty(&42u32).unwrap_err();
        assert!(err.to_string().contains("stubbed"));
    }
}

//! Offline stand-in for the `rayon` crate (see `crates/compat/README.md`).
//!
//! Implements the parallel-iterator surface this workspace uses on top of
//! [`std::thread::scope`]: `par_iter().map().collect()`, `par_iter().enumerate().map()`,
//! `par_chunks_mut(..).enumerate().for_each(..)`, plus [`join`] and
//! [`current_num_threads`]. Work is statically partitioned into contiguous index blocks —
//! no work stealing — which is the right shape for the uniform row-block workloads here.
//! Results always come back in input order.

use std::num::NonZeroUsize;

/// Number of worker threads used by the parallel primitives (the available hardware
/// parallelism, overridable with the standard `RAYON_NUM_THREADS` variable).
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        rb = Some(handle.join().expect("rayon::join worker panicked"));
        ra
    });
    (ra, rb.expect("join completed"))
}

/// Evaluates `f(i)` for `i in 0..len` across worker threads, returning results in order.
fn parallel_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = current_num_threads().min(len).max(1);
    if workers == 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let chunk = len.div_ceil(workers);
    std::thread::scope(|s| {
        for (w, out) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = w * chunk;
                for (off, slot) in out.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Conversion from an ordered result vector, mirroring `FromParallelIterator` for the
/// collection types this workspace collects into.
pub trait FromParallelVec<T>: Sized {
    /// Builds the collection from results in input order.
    fn from_parallel_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelVec<T> for Vec<T> {
    fn from_parallel_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Borrowed parallel iterator over a slice, mirroring `rayon::slice::Iter`.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIterEnumerate<'a, T> {
        ParIterEnumerate { items: self.items }
    }

    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Enumerated parallel iterator.
#[derive(Debug)]
pub struct ParIterEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIterEnumerate<'a, T> {
    /// Maps every `(index, item)` pair through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        ParEnumerateMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator (terminal: `collect`).
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map across worker threads and collects results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        C::from_parallel_vec(parallel_map_indexed(items.len(), |i| f(&items[i])))
    }
}

/// Enumerated-and-mapped parallel iterator (terminal: `collect`).
#[derive(Debug)]
pub struct ParEnumerateMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParEnumerateMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'a T)) -> R + Sync,
{
    /// Runs the map across worker threads and collects results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        C::from_parallel_vec(parallel_map_indexed(items.len(), |i| f((i, &items[i]))))
    }
}

/// `par_iter` entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Borrowing parallel iterator over this collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel mutable chunking of slices, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into mutable chunks of `chunk_size` (last may be shorter) that can
    /// be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel mutable chunk iterator.
#[derive(Debug)]
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Processes every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel mutable chunk iterator (terminal: `for_each`).
#[derive(Debug)]
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Processes every `(index, chunk)` pair in parallel: chunks are distributed across
    /// worker threads in contiguous groups.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size)
            .enumerate()
            .collect();
        let n_chunks = chunks.len();
        let workers = current_num_threads().min(n_chunks).max(1);
        if workers == 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        let group = n_chunks.div_ceil(workers);
        let mut remaining = chunks;
        std::thread::scope(|s| {
            while !remaining.is_empty() {
                let take = group.min(remaining.len());
                let batch: Vec<(usize, &mut [T])> = remaining.drain(..take).collect();
                let f = &f;
                s.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelVec, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_enumerate_map_sees_correct_indices() {
        let input = vec!["a"; 257];
        let out: Vec<usize> = input.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(64)
            .enumerate()
            .for_each(|(idx, chunk)| {
                for v in chunk.iter_mut() {
                    *v += 1 + idx as u32;
                }
            });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 64) as u32, "element {i}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}

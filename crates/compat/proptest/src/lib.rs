//! Offline stand-in for the `proptest` crate (see `crates/compat/README.md`).
//!
//! Implements the subset this workspace's property tests use: range and tuple
//! [`Strategy`]s, `prop_map` / `prop_flat_map`, the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and `prop_assert!` / `prop_assert_eq!`. Sampling is
//! deterministic (a fixed-seed ChaCha8 stream per test), there is **no shrinking** — a
//! failing case panics with the standard assertion message for that case.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = ChaCha8Rng;

/// Configuration for the [`proptest!`] runner, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let intermediate = self.base.sample(rng);
        (self.f)(intermediate).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assertion inside a [`proptest!`] body; panics with context on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_eq!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        assert_eq!($lhs, $rhs, $($fmt)*)
    };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_ne!($lhs, $rhs)
    };
}

/// Declares property tests: each listed function becomes a `#[test]` that samples its
/// argument strategies `cases` times and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic stream, varied per test by the name's bytes.
                let seed = {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in stringify!($name).bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                let mut rng: $crate::TestRng =
                    <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    let run = |rng: &mut $crate::TestRng| {
                        $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                        $body
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(&mut rng)),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} of {} failed in {} (no shrinking in the \
                             offline shim)",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($pat in $strat),+ ) $body )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds((a, b) in (0usize..10, 5u64..9), x in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn flat_map_threads_dependent_values(pair in (1usize..8).prop_flat_map(|m| {
            (0usize..m).prop_map(move |n| (n, m))
        })) {
            let (n, m) = pair;
            prop_assert!(n < m);
        }
    }
}

//! Offline stand-in for the `rand_chacha` crate (see `crates/compat/README.md`).
//!
//! [`ChaCha8Rng`] runs a genuine ChaCha keystream with 8 rounds (Bernstein 2008). The
//! `seed_from_u64` key expansion differs from upstream `rand_chacha` (SplitMix64 here), so
//! *streams are not bit-identical to crates.io*; everything in this repository only relies
//! on determinism for a fixed seed and on statistical quality, both of which hold.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key/nonce state words 4..16 of the ChaCha matrix (words 0..4 are constants).
    state: [u32; 12],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
    /// Block counter.
    counter: u64,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        // "expand 32-byte k" constants.
        s[0] = 0x6170_7865;
        s[1] = 0x3320_646E;
        s[2] = 0x7962_2D32;
        s[3] = 0x6B20_6574;
        s[4..16].copy_from_slice(&self.state);
        // Counter occupies the first two nonce words.
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        let input = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, (mixed, orig)) in self.block.iter_mut().zip(s.iter().zip(input.iter())) {
            *out = mixed.wrapping_add(*orig);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 12];
        // Expand the u64 seed into the 8 key words; nonce words start at zero.
        for pair in 0..4 {
            let w = splitmix64(&mut sm);
            state[pair * 2] = w as u32;
            state[pair * 2 + 1] = (w >> 32) as u32;
        }
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
            counter: 0,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn keystream_is_statistically_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Mean of uniform [0,1) samples should sit near 0.5.
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // All 64 bit positions toggle.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ones = 0u64;
        let mut zeros = 0u64;
        for _ in 0..256 {
            let w = rng.next_u64();
            ones |= w;
            zeros |= !w;
        }
        assert_eq!(ones, u64::MAX);
        assert_eq!(zeros, u64::MAX);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

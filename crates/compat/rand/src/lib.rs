//! Offline stand-in for the `rand` crate (see `crates/compat/README.md`).
//!
//! Provides the exact API surface this workspace uses — `Rng` (`gen_range`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, `distributions::Distribution`, and
//! `seq::SliceRandom::shuffle` — over a caller-supplied `u64` source. Integer range
//! sampling uses modulo reduction (biased by at most `span / 2^64`, negligible for every
//! range in this repository).

/// Core random-number source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (e.g. `0.0f32..1.0`, `0usize..n`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniformly random mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample one value from an RNG, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// 24 uniform mantissa bits in `[0, 1)` — exactly representable in `f32`.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// 53 uniform mantissa bits in `[0, 1)` — exactly representable in `f64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f32(rng);
        // Clamp below end: rounding of start + u*(end-start) can land exactly on end.
        (self.start + u * (self.end - self.start)).min(f32_before(self.end))
    }
}

/// The largest `f32` strictly below `x` (identity for non-finite inputs).
fn f32_before(x: f32) -> f32 {
    if x.is_finite() {
        f32::from_bits(if x > 0.0 {
            x.to_bits() - 1
        } else {
            x.to_bits() + 1
        })
    } else {
        x
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span.max(1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

/// Mirrors `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with any RNG, mirroring
    /// `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Mirrors `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 over an incrementing counter: decent bits for testing.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = Counter(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let i: usize = rng.gen_range(0usize..8);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Counter(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(4);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}

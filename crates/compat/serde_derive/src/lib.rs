//! Offline stand-in for `serde_derive` (see `crates/compat/README.md`).
//!
//! The derive macros emit nothing: the sibling `serde` shim blanket-implements its marker
//! traits for every type, so there is no impl to generate. `#[serde(...)]` helper
//! attributes are accepted and ignored.

use proc_macro::TokenStream;

/// No-op derive for the shim `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for the shim `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

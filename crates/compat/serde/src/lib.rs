//! Offline stand-in for the `serde` crate (see `crates/compat/README.md`).
//!
//! `Serialize` and `Deserialize` are blanket-implemented marker traits and the derive
//! macros are no-ops, so `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds
//! compile exactly as they would against real serde — there is simply no serialization
//! framework behind them. Swap this shim for crates.io serde in the workspace manifest to
//! get real (de)serialization without touching library code.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

//! Offline stand-in for the `criterion` crate (see `crates/compat/README.md`).
//!
//! Implements the harness surface this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurement is plain wall-clock over a fixed sample count (one warm-up sample
//! discarded), reporting min / mean / max per benchmark — no statistical analysis, outlier
//! rejection, or HTML reports. Bench targets must set `harness = false`.
//!
//! Like the real crate, `cargo bench -- --test` runs every benchmark in **test mode**:
//! each routine executes exactly once, as a smoke check that bench code still compiles
//! and runs — no timings worth reading. [`is_test_mode`] exposes the flag so bench-side
//! acceptance gates can skip wall-clock assertions under it.

use std::fmt;
use std::time::{Duration, Instant};

/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Whether the process was invoked in `--test` smoke mode (`cargo bench -- --test`):
/// every benchmark routine runs exactly once and timings are meaningless.
pub fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (printed under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handed to benchmark closures, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one discarded
    /// warm-up). In `--test` mode the routine runs exactly once, with no warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if is_test_mode() {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples = vec![start.elapsed()];
            return;
        }
        std::hint::black_box(routine()); // Warm-up: page in code and data.
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{group}/{label}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        samples.len()
    );
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, &id.label, &bencher.samples);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        report(&self.name, &id.label, &bencher.samples);
        self
    }

    /// Ends the group (prints a separator; analysis happens per-benchmark here).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        };
        group.bench_function(id, f);
        self
    }
}

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits the `main` function running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 3 measured + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("2:4").to_string(), "2:4");
        assert_eq!(BenchmarkId::new("gemm", 512).to_string(), "gemm/512");
    }
}

//! Per-access energy constants.
//!
//! Absolute values follow the usual accelerator-modelling ballpark (Eyeriss / Sparseloop
//! style, ~45 nm class, 32-bit words): what matters for reproducing the paper's trends is
//! the *relative* ordering — DRAM ≫ L2 SMEM > L1 SMEM > RF ≳ MAC — which determines where
//! data reuse pays off and how much skipping ineffectual compute helps.

use serde::{Deserialize, Serialize};

/// Energy cost (picojoules) of one access / operation at each level of the design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One 32-bit DRAM access.
    pub dram_pj: f64,
    /// One 32-bit access to the shared L2 scratchpad.
    pub l2_pj: f64,
    /// One 32-bit access to a TTC-local L1 scratchpad.
    pub l1_pj: f64,
    /// One 32-bit register-file access inside a PE.
    pub rf_pj: f64,
    /// One multiply-accumulate operation.
    pub mac_pj: f64,
    /// One element passing through a TASD unit (comparator-tree compare/select step).
    pub tasd_unit_pj: f64,
    /// Extra per-MAC energy an unstructured design pays for indexing/intersection logic.
    pub unstructured_index_pj: f64,
}

impl EnergyModel {
    /// The default energy model used throughout the reproduction.
    pub fn standard() -> Self {
        EnergyModel {
            dram_pj: 160.0,
            l2_pj: 12.0,
            l1_pj: 2.5,
            rf_pj: 0.25,
            mac_pj: 1.0,
            tasd_unit_pj: 0.12,
            unstructured_index_pj: 0.9,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering_holds() {
        let e = EnergyModel::standard();
        assert!(e.dram_pj > e.l2_pj);
        assert!(e.l2_pj > e.l1_pj);
        assert!(e.l1_pj > e.rf_pj);
        assert!(e.mac_pj > e.rf_pj);
        assert!(
            e.tasd_unit_pj < e.l1_pj,
            "TASD unit must be cheaper than an SMEM access"
        );
        assert!(e.unstructured_index_pj < e.mac_pj * 2.0);
    }

    #[test]
    fn default_matches_standard() {
        assert_eq!(EnergyModel::default(), EnergyModel::standard());
    }
}

//! Real-system model: an RTX-3080-class GPU with 2:4 sparse tensor cores running a
//! TensorRT-style engine (paper §5.5, Fig. 16).
//!
//! The paper exports TASD-W-transformed models to ONNX and measures TensorRT latency on an
//! RTX 3080. Offline, this module substitutes an analytical GPU execution-time model: each
//! CONV/FC layer's time is its dense-GEMM time divided by the sparse-kernel speedup when
//! the layer's weights have been made 2:4 (≈1.6–1.8× for realistic shapes, not the ideal
//! 2×), plus a fixed per-layer framework/kernel-launch overhead, plus a fixed share for the
//! non-GEMM layers TASD does not touch. Speedup therefore grows with the number of layers
//! converted and saturates Amdahl-style — the shape of Fig. 16.

use serde::{Deserialize, Serialize};
use tasd_dnn::NetworkSpec;

/// GPU execution-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Sustained dense tensor-core throughput in MACs per nanosecond (RTX-3080 class at
    /// FP16 ≈ 60 TMAC/s → 60 000 MACs/ns; real kernels reach roughly half of peak).
    pub dense_macs_per_ns: f64,
    /// Effective speedup of a 2:4 sparse kernel over the dense kernel for the same layer
    /// (the hardware peak is 2×; measured end-to-end kernel gains are lower).
    pub sparse_kernel_speedup: f64,
    /// Fixed per-layer overhead in nanoseconds (kernel launch, tensor reformat).
    pub per_layer_overhead_ns: f64,
    /// Fraction of end-to-end time spent outside CONV/FC GEMMs (element-wise ops,
    /// batch-norm, data movement) that TASD cannot accelerate.
    pub non_gemm_fraction: f64,
}

impl GpuModel {
    /// Parameters calibrated to an RTX-3080-class device running batched ImageNet CNNs.
    pub fn rtx3080() -> Self {
        GpuModel {
            dense_macs_per_ns: 30_000.0,
            sparse_kernel_speedup: 1.6,
            per_layer_overhead_ns: 10_000.0,
            non_gemm_fraction: 0.18,
        }
    }

    /// Estimated end-to-end latency (nanoseconds) of `spec` at the given batch size when
    /// the layers listed in `tasd_layers` (by index) run on the 2:4 sparse tensor cores.
    ///
    /// The non-GEMM share of the network (element-wise ops, normalization, data movement)
    /// is sized from the *dense* model and added as a constant — TASD does not shrink it,
    /// which is what bounds the end-to-end speedup (Amdahl's law).
    pub fn latency_ns(&self, spec: &NetworkSpec, batch: usize, tasd_layers: &[usize]) -> f64 {
        let mut gemm_time = 0.0f64;
        let mut dense_gemm_time = 0.0f64;
        for (i, layer) in spec.iter().enumerate() {
            let dense_t = layer.dense_macs(batch) as f64 / self.dense_macs_per_ns;
            let t = if tasd_layers.contains(&i) {
                dense_t / self.sparse_kernel_speedup
            } else {
                dense_t
            };
            gemm_time += t + self.per_layer_overhead_ns;
            dense_gemm_time += dense_t + self.per_layer_overhead_ns;
        }
        let non_gemm_time =
            dense_gemm_time * self.non_gemm_fraction / (1.0 - self.non_gemm_fraction);
        gemm_time + non_gemm_time
    }

    /// Speedup of running with the given TASD-W layers relative to the fully dense model.
    pub fn speedup(&self, spec: &NetworkSpec, batch: usize, tasd_layers: &[usize]) -> f64 {
        let dense = self.latency_ns(spec, batch, &[]);
        let sparse = self.latency_ns(spec, batch, tasd_layers);
        dense / sparse
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::rtx3080()
    }
}

/// One point of the Fig. 16 sweep: convert the `num_layers` layers with the largest dense
/// MAC counts to 2:4 TASD-W and report the resulting speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealSystemPoint {
    /// Number of layers running with 2:4 TASD-W weights.
    pub num_tasd_layers: usize,
    /// End-to-end speedup over the dense model (1.0 = no gain).
    pub speedup: f64,
    /// Performance improvement in percent (`(speedup - 1) * 100`).
    pub improvement_pct: f64,
}

/// Sweeps the number of TASD-W layers from 0 to every CONV/FC layer of `spec`, converting
/// layers in descending order of dense MACs (the order TASDER's greedy pass would convert
/// them, since big layers buy the most time for the least accuracy risk).
pub fn sweep_tasd_layers(
    model: &GpuModel,
    spec: &NetworkSpec,
    batch: usize,
) -> Vec<RealSystemPoint> {
    let mut order: Vec<usize> = (0..spec.num_layers()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(spec.layers[i].dense_macs(batch)));
    (0..=spec.num_layers())
        .map(|count| {
            let chosen: Vec<usize> = order.iter().copied().take(count).collect();
            let speedup = model.speedup(spec, batch, &chosen);
            RealSystemPoint {
                num_tasd_layers: count,
                speedup,
                improvement_pct: (speedup - 1.0) * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_dnn::{Activation, LayerSpec};
    use tasd_tensor::Conv2dDims;

    fn small_net() -> NetworkSpec {
        NetworkSpec::new(
            "net",
            vec![
                LayerSpec::conv(
                    "c1",
                    Conv2dDims::square(64, 64, 56, 3, 1, 1),
                    Activation::Relu,
                ),
                LayerSpec::conv(
                    "c2",
                    Conv2dDims::square(128, 256, 28, 3, 1, 1),
                    Activation::Relu,
                ),
                LayerSpec::linear("fc", 512, 1000, 1, Activation::None),
            ],
        )
    }

    #[test]
    fn no_tasd_layers_means_no_speedup() {
        let model = GpuModel::rtx3080();
        let net = small_net();
        assert!((model.speedup(&net, 32, &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_grows_with_layer_count_and_saturates_below_kernel_speedup() {
        let model = GpuModel::rtx3080();
        let net = small_net();
        let sweep = sweep_tasd_layers(&model, &net, 32);
        assert_eq!(sweep.len(), net.num_layers() + 1);
        // Monotone non-decreasing speedup.
        for w in sweep.windows(2) {
            assert!(w[1].speedup >= w[0].speedup - 1e-12);
        }
        let full = sweep.last().unwrap();
        assert!(
            full.speedup > 1.05,
            "full conversion speedup {}",
            full.speedup
        );
        // Amdahl: never reaches the raw kernel speedup.
        assert!(full.speedup < model.sparse_kernel_speedup);
    }

    #[test]
    fn resnet34_scale_speedup_matches_paper_ballpark() {
        // Paper Fig. 16: up to ~39% end-to-end gain on sparse ResNet-34 with most layers
        // converted. With default parameters the model should land in the 20-60% band.
        let model = GpuModel::rtx3080();
        let net = tasd_models_like_resnet34();
        let sweep = sweep_tasd_layers(&model, &net, 32);
        let full = sweep.last().unwrap();
        assert!(
            (15.0..60.0).contains(&full.improvement_pct),
            "improvement {}%",
            full.improvement_pct
        );
    }

    /// A stand-in ResNet-34-shaped network (the real builder lives in `tasd-models`, which
    /// this crate does not depend on).
    fn tasd_models_like_resnet34() -> NetworkSpec {
        let mut layers = vec![LayerSpec::conv(
            "conv1",
            Conv2dDims::square(3, 64, 224, 7, 2, 3),
            Activation::Relu,
        )];
        let stages = [
            (64usize, 56usize, 6usize),
            (128, 28, 8),
            (256, 14, 12),
            (512, 7, 6),
        ];
        for (ch, size, count) in stages {
            for i in 0..count {
                layers.push(LayerSpec::conv(
                    format!("c{ch}_{i}"),
                    Conv2dDims::square(ch, ch, size, 3, 1, 1),
                    Activation::Relu,
                ));
            }
        }
        layers.push(LayerSpec::linear("fc", 512, 1000, 1, Activation::None));
        NetworkSpec::new("resnet34-like", layers)
    }

    #[test]
    fn biggest_layers_convert_first() {
        let model = GpuModel::rtx3080();
        let net = small_net();
        let sweep = sweep_tasd_layers(&model, &net, 32);
        // Converting only the single biggest layer should already capture most of the gain
        // available from converting the two biggest.
        let one = sweep[1].speedup - 1.0;
        let two = sweep[2].speedup - 1.0;
        assert!(one > 0.0);
        assert!(one >= two * 0.4);
    }

    #[test]
    fn batch_size_scales_gemm_time_but_not_overhead() {
        let model = GpuModel::rtx3080();
        let net = small_net();
        let small_batch = model.latency_ns(&net, 1, &[]);
        let big_batch = model.latency_ns(&net, 64, &[]);
        assert!(big_batch > small_batch);
        assert!(
            big_batch < small_batch * 64.0,
            "fixed overheads must not scale"
        );
    }
}

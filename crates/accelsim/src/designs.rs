//! The hardware designs compared in the paper (Table 3 plus the appendix ablation).

use serde::{Deserialize, Serialize};
use std::fmt;
use tasd::PatternMenu;

/// A hardware design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HwDesign {
    /// Dense tensor core (TC): no sparsity support.
    DenseTc,
    /// Dual-side sparse tensor core (DSTC): unstructured sparsity on both operands, at the
    /// cost of indexing/merging overheads and load imbalance.
    Dstc,
    /// TASD tensor core built on an STC-like engine with M=4: native 2:4 plus dense,
    /// TASD limited to one term.
    TtcStcM4,
    /// TASD tensor core built on an STC-like engine widened to M=8: native 4:8 plus dense.
    TtcStcM8,
    /// TASD tensor core built on a VEGETA-like engine with M=4: native {1:4, 2:4}, TASD up
    /// to two terms (adds 3:4).
    TtcVegetaM4,
    /// TASD tensor core built on a VEGETA-like engine with M=8: native {1:8, 2:8, 4:8},
    /// TASD up to two terms (adds 3:8, 5:8, 6:8) — paper Table 2.
    TtcVegetaM8,
    /// A plain VEGETA engine with the M=8 menu but *no* TASD units: it can only exploit
    /// weights that are already structured-pruned (appendix Fig. 19 ablation).
    Vegeta,
}

impl HwDesign {
    /// The six designs of the paper's main comparison (Fig. 12/13), in presentation order.
    pub fn main_comparison() -> [HwDesign; 6] {
        [
            HwDesign::DenseTc,
            HwDesign::Dstc,
            HwDesign::TtcStcM4,
            HwDesign::TtcStcM8,
            HwDesign::TtcVegetaM4,
            HwDesign::TtcVegetaM8,
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            HwDesign::DenseTc => "TC",
            HwDesign::Dstc => "DSTC",
            HwDesign::TtcStcM4 => "TTC-STC-M4",
            HwDesign::TtcStcM8 => "TTC-STC-M8",
            HwDesign::TtcVegetaM4 => "TTC-VEGETA-M4",
            HwDesign::TtcVegetaM8 => "TTC-VEGETA-M8",
            HwDesign::Vegeta => "VEGETA",
        }
    }

    /// The structured-sparsity pattern menu this design supports natively, or `None` for
    /// designs with no structured support (dense TC, DSTC).
    pub fn pattern_menu(&self) -> Option<PatternMenu> {
        match self {
            HwDesign::DenseTc | HwDesign::Dstc => None,
            HwDesign::TtcStcM4 => Some(PatternMenu::stc_m4()),
            HwDesign::TtcStcM8 => Some(PatternMenu::stc_m8()),
            HwDesign::TtcVegetaM4 => Some(PatternMenu::vegeta_m4()),
            HwDesign::TtcVegetaM8 | HwDesign::Vegeta => Some(PatternMenu::vegeta_m8()),
        }
    }

    /// Maximum number of TASD terms the design can chain (0 for designs without TASD
    /// units: dense TC, DSTC, and the plain VEGETA ablation point).
    pub fn max_tasd_terms(&self) -> usize {
        match self {
            HwDesign::DenseTc | HwDesign::Dstc | HwDesign::Vegeta => 0,
            HwDesign::TtcStcM4 | HwDesign::TtcStcM8 => 1,
            HwDesign::TtcVegetaM4 | HwDesign::TtcVegetaM8 => 2,
        }
    }

    /// Whether the design has TASD units and can therefore decompose *activations*
    /// dynamically at runtime (TASD-A). Weight-side decomposition is an offline software
    /// transform and only requires the structured menu.
    pub fn supports_dynamic_decomposition(&self) -> bool {
        self.max_tasd_terms() > 0
    }

    /// Whether the design natively handles unstructured sparsity in both operands.
    pub fn supports_unstructured(&self) -> bool {
        matches!(self, HwDesign::Dstc)
    }

    /// Whether the design can gate MAC energy for zero operands on the *streaming* side
    /// (the paper's "gating the compute units for sparse activations"). Structured designs
    /// and DSTC can; the dense TC cannot.
    pub fn supports_operand_gating(&self) -> bool {
        !matches!(self, HwDesign::DenseTc)
    }

    /// Relative area of the design's PE array and sparsity logic, normalized to the dense
    /// TC (= 1.0). Structured support costs a few percent (metadata muxing); TASD units add
    /// ≈2 % more (§5.4); DSTC-class unstructured support costs ≈35 % extra
    /// (SIGMA/SCNN-class overheads, §2.3).
    pub fn relative_area(&self) -> f64 {
        match self {
            HwDesign::DenseTc => 1.00,
            HwDesign::Dstc => 1.35,
            HwDesign::Vegeta => 1.05,
            HwDesign::TtcStcM4 | HwDesign::TtcStcM8 => 1.05 + 0.02,
            HwDesign::TtcVegetaM4 | HwDesign::TtcVegetaM8 => 1.05 + 0.02,
        }
    }
}

impl fmt::Display for HwDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_comparison_matches_table3() {
        let designs = HwDesign::main_comparison();
        assert_eq!(designs.len(), 6);
        assert_eq!(designs[0].label(), "TC");
        assert_eq!(designs[5].label(), "TTC-VEGETA-M8");
    }

    #[test]
    fn pattern_menus_match_table3() {
        assert!(HwDesign::DenseTc.pattern_menu().is_none());
        assert!(HwDesign::Dstc.pattern_menu().is_none());
        assert_eq!(HwDesign::TtcStcM4.pattern_menu().unwrap().native_n(), &[2]);
        assert_eq!(HwDesign::TtcStcM8.pattern_menu().unwrap().native_n(), &[4]);
        assert_eq!(
            HwDesign::TtcVegetaM8.pattern_menu().unwrap().native_n(),
            &[1, 2, 4]
        );
        assert_eq!(HwDesign::TtcVegetaM4.pattern_menu().unwrap().m(), 4);
    }

    #[test]
    fn tasd_term_limits() {
        assert_eq!(HwDesign::DenseTc.max_tasd_terms(), 0);
        assert_eq!(HwDesign::TtcStcM4.max_tasd_terms(), 1);
        assert_eq!(HwDesign::TtcVegetaM8.max_tasd_terms(), 2);
        assert_eq!(HwDesign::Vegeta.max_tasd_terms(), 0);
        assert!(HwDesign::TtcVegetaM8.supports_dynamic_decomposition());
        assert!(!HwDesign::Vegeta.supports_dynamic_decomposition());
    }

    #[test]
    fn vegeta_with_tasd_covers_more_patterns_than_without() {
        // Table 2: the VEGETA menu natively has 3 sparse patterns; with 2 TASD terms the
        // TTC reaches 6 sparse patterns (+ dense).
        let menu = HwDesign::TtcVegetaM8.pattern_menu().unwrap();
        let native = menu.native_patterns().len();
        let with_tasd = menu
            .compose_table(HwDesign::TtcVegetaM8.max_tasd_terms())
            .iter()
            .filter(|r| r.is_supported() && !r.series.as_ref().unwrap().is_dense())
            .count();
        assert_eq!(native, 3);
        assert_eq!(with_tasd, 6);
    }

    #[test]
    fn area_ordering() {
        assert!(HwDesign::Dstc.relative_area() > HwDesign::TtcVegetaM8.relative_area());
        assert!(HwDesign::TtcVegetaM8.relative_area() > HwDesign::DenseTc.relative_area());
        assert!(HwDesign::TtcVegetaM8.relative_area() > HwDesign::Vegeta.relative_area());
        // TASD unit overhead is ~2% on top of the structured design.
        let tasd_overhead =
            HwDesign::TtcVegetaM8.relative_area() - HwDesign::Vegeta.relative_area();
        assert!((tasd_overhead - 0.02).abs() < 1e-9);
    }

    #[test]
    fn gating_support() {
        assert!(!HwDesign::DenseTc.supports_operand_gating());
        assert!(HwDesign::Dstc.supports_operand_gating());
        assert!(HwDesign::TtcVegetaM8.supports_operand_gating());
        assert!(HwDesign::Dstc.supports_unstructured());
        assert!(!HwDesign::TtcVegetaM8.supports_unstructured());
    }
}

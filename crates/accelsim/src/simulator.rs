//! The analytical execution model: effectual MACs, per-level access counts, energy and
//! cycles for one GEMM layer on one hardware design.
//!
//! The model follows the decomposition-aware, output-stationary dataflow of the paper's
//! Fig. 11: the decomposed operand ("A side") streams through the PE array term by term
//! while the streaming operand ("B side") is reused out of the L2 scratchpad and the output
//! tile stays stationary in the L1 scratchpad / register file across TASD terms. Access
//! counts are first-order (Sparseloop-style): every operand moves through
//! DRAM → L2 → L1 → RF once per reuse opportunity, with reuse factors set by the tile
//! sizes in [`AcceleratorConfig`].

use crate::config::AcceleratorConfig;
use crate::designs::HwDesign;
use crate::metrics::{EnergyBreakdown, LayerMetrics, NetworkMetrics};
use crate::workload::{LayerRun, OperandSide};
use rayon::prelude::*;

/// Fraction of peak PE utilization an unstructured (DSTC-like) design sustains once load
/// imbalance across rows/columns of a random sparse operand is accounted for (§2.3).
const DSTC_UTILIZATION: f64 = 0.6;

/// Per-non-zero storage expansion of an unstructured compressed format
/// (value + explicit coordinate), relative to storing just the value.
const UNSTRUCTURED_INDEX_OVERHEAD: f64 = 1.5;

/// Per-non-zero storage expansion of an N:M structured compressed format
/// (value + a few metadata bits), relative to storing just the value.
const STRUCTURED_META_OVERHEAD: f64 = 1.125;

/// Simulates one layer on one design.
///
/// The `run.tasd_config` is interpreted according to the design: designs without
/// structured support (dense TC, DSTC) ignore it; designs without TASD units
/// (plain VEGETA) honour it only if it is a single native term (i.e. the weights were
/// actually structured-pruned offline); TTC designs honour any configuration whose terms
/// are within their menu.
pub fn simulate_layer(
    design: HwDesign,
    config: &AcceleratorConfig,
    run: &LayerRun,
) -> LayerMetrics {
    let (m, n, k) = run.dims;
    let (m, n, k) = (m as f64, n as f64, k as f64);
    let dense_macs = m * n * k;
    let e = &config.energy;

    // --- What fraction of the decomposed operand is stored / computed on. ---
    let kept = effective_kept_fraction(design, run);
    let weight_density = run.weight_density.clamp(0.0, 1.0);
    let act_density = run.activation_density.clamp(0.0, 1.0);

    // --- Effectual MACs. ---
    let effectual_macs = match design {
        HwDesign::DenseTc => dense_macs,
        HwDesign::Dstc => dense_macs * weight_density * act_density,
        _ => dense_macs * kept,
    };

    // --- Operand footprints (words). ---
    let a_elements = run.tasd_side_elements(); // decomposed side
    let b_elements = run.other_side_elements(); // streaming side
    let c_elements = run.output_elements();
    let (a_words, b_words) = match design {
        HwDesign::DenseTc => (a_elements, b_elements),
        HwDesign::Dstc => (
            a_elements * run.tasd_side_density() * UNSTRUCTURED_INDEX_OVERHEAD,
            b_elements * run.other_side_density() * UNSTRUCTURED_INDEX_OVERHEAD,
        ),
        _ => (a_elements * kept * STRUCTURED_META_OVERHEAD, b_elements),
    };

    // --- DRAM traffic: each operand streamed once, output written once. ---
    let dram_words = a_words + b_words + c_elements;

    // --- L2 traffic: A passes through once; the B panel is re-read for every output-row
    //     tile; C is written through once. ---
    let row_tiles = (m / config.tile_m as f64).ceil().max(1.0);
    let l2_words = a_words + b_words * row_tiles + c_elements;

    // --- L1 traffic: A passes through; B enters once per effectual MAC divided by the
    //     spatial reuse across a PE column; the output tile is read+written once per TASD
    //     term (C stays in L1 across terms — the decomposition-aware dataflow — but each
    //     extra term still re-touches it). ---
    let terms = effective_terms(design, run) as f64;
    let b_l1 = effectual_macs / config.pe_rows as f64;
    let mut l1_words = a_words + b_l1 + 2.0 * c_elements * terms;
    // DSTC pays for its accumulation/merge buffer: partial outputs are spilled and merged
    // far more often than in an output-stationary structured dataflow.
    if design == HwDesign::Dstc {
        l1_words += 1.5 * effectual_macs;
    }

    // --- RF traffic: two operand reads and one accumulation per effectual MAC. ---
    let rf_words = 3.0 * effectual_macs;

    // --- Compute energy, with operand gating for zeros on the streaming side. ---
    let gating = if design.supports_operand_gating() {
        run.other_side_density().clamp(0.0, 1.0)
    } else {
        1.0
    };
    let mut mac_energy = effectual_macs * e.mac_pj * gating;
    if design == HwDesign::Dstc {
        mac_energy += effectual_macs * e.unstructured_index_pj;
    }

    // --- TASD-unit energy: dynamic decomposition of activations only. ---
    let tasd_unit_energy = if design.supports_dynamic_decomposition()
        && run.tasd_side == OperandSide::Activations
        && run.tasd_config.as_ref().is_some_and(|c| !c.is_dense())
    {
        a_elements * terms * e.tasd_unit_pj
    } else {
        0.0
    };

    // --- Cycles: compute bound vs DRAM bandwidth bound. ---
    let utilization = if design == HwDesign::Dstc {
        DSTC_UTILIZATION
    } else {
        1.0
    };
    let compute_cycles = effectual_macs / (config.macs_per_cycle() * utilization);
    let memory_cycles = dram_words / config.dram_words_per_cycle;
    let cycles = compute_cycles.max(memory_cycles);

    let energy = EnergyBreakdown {
        dram: dram_words * e.dram_pj,
        l2: l2_words * e.l2_pj,
        l1: l1_words * e.l1_pj,
        rf: rf_words * e.rf_pj,
        mac: mac_energy,
        tasd_unit: tasd_unit_energy,
    };

    LayerMetrics {
        name: run.name.clone(),
        cycles,
        energy,
        effectual_macs,
        dense_macs,
    }
}

/// Simulates every layer of a network (in parallel) and aggregates the results.
pub fn simulate_network(
    design: HwDesign,
    config: &AcceleratorConfig,
    runs: &[LayerRun],
) -> NetworkMetrics {
    let layers: Vec<LayerMetrics> = runs
        .par_iter()
        .map(|run| simulate_layer(design, config, run))
        .collect();
    NetworkMetrics {
        design: design.label().to_string(),
        layers,
        frequency_ghz: config.frequency_ghz,
    }
}

/// The fraction of the decomposed operand a design actually keeps/computes on, after
/// accounting for what the design can honour.
fn effective_kept_fraction(design: HwDesign, run: &LayerRun) -> f64 {
    match design {
        // No structured support: the configuration is irrelevant.
        HwDesign::DenseTc | HwDesign::Dstc => 1.0,
        _ => {
            let Some(cfg) = &run.tasd_config else {
                return 1.0;
            };
            if cfg.is_dense() {
                return 1.0;
            }
            // Designs without TASD units can only honour single-term native patterns
            // (offline structured-pruned weights); anything else falls back to dense.
            if design.max_tasd_terms() == 0 {
                let native_single = cfg.order() == 1
                    && design
                        .pattern_menu()
                        .is_some_and(|menu| menu.native_patterns().contains(&cfg.terms()[0]));
                let weights_side = run.tasd_side == OperandSide::Weights;
                if !(native_single && weights_side) {
                    return 1.0;
                }
            }
            // Dynamic (activation-side) decomposition needs TASD units.
            if run.tasd_side == OperandSide::Activations && !design.supports_dynamic_decomposition()
            {
                return 1.0;
            }
            run.kept_fraction()
        }
    }
}

/// Number of decomposition terms the design actually executes for this layer.
fn effective_terms(design: HwDesign, run: &LayerRun) -> usize {
    if effective_kept_fraction(design, run) >= 1.0 {
        1
    } else {
        run.num_terms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd::TasdConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::standard()
    }

    /// A sparse-ResNet-50-like layer: weights 95% sparse, activations 50% sparse.
    fn sparse_conv_layer(tasd: Option<&str>) -> LayerRun {
        LayerRun {
            name: "l".to_string(),
            dims: (784, 128, 1152),
            weight_density: 0.05,
            activation_density: 0.5,
            tasd_side: OperandSide::Weights,
            tasd_config: tasd.map(|s| TasdConfig::parse(s).unwrap()),
            plan: None,
        }
    }

    /// A dense-BERT-like layer: everything dense.
    fn dense_fc_layer(tasd: Option<&str>, side: OperandSide) -> LayerRun {
        LayerRun {
            name: "fc".to_string(),
            dims: (128, 3072, 768),
            weight_density: 1.0,
            activation_density: 1.0,
            tasd_side: side,
            tasd_config: tasd.map(|s| TasdConfig::parse(s).unwrap()),
            plan: None,
        }
    }

    #[test]
    fn dense_tc_executes_all_macs() {
        let run = sparse_conv_layer(Some("1:8"));
        let m = simulate_layer(HwDesign::DenseTc, &cfg(), &run);
        assert_eq!(m.effectual_macs, m.dense_macs);
        assert_eq!(m.mac_reduction(), 0.0);
        assert_eq!(m.energy.tasd_unit, 0.0);
        assert!(m.cycles > 0.0 && m.energy_pj() > 0.0);
    }

    #[test]
    fn structured_design_skips_by_kept_fraction() {
        let run = sparse_conv_layer(Some("1:8"));
        let m = simulate_layer(HwDesign::TtcVegetaM8, &cfg(), &run);
        // A 1:8 engine processes one slot per 8-element block: 12.5% of the dense MACs.
        assert!((m.effectual_macs / m.dense_macs - 0.125).abs() < 1e-9);
        let dense = simulate_layer(HwDesign::DenseTc, &cfg(), &run);
        assert!(m.cycles < dense.cycles);
        assert!(m.energy_pj() < dense.energy_pj());
        assert!(m.edp(1.0) < dense.edp(1.0));
    }

    #[test]
    fn dstc_skips_on_both_operands_but_pays_overheads() {
        let sparse = sparse_conv_layer(None);
        let dstc = simulate_layer(HwDesign::Dstc, &cfg(), &sparse);
        // Both-side skipping: 0.05 * 0.5 of dense MACs.
        assert!((dstc.effectual_macs / dstc.dense_macs - 0.025).abs() < 1e-9);
        // For a fully dense layer, DSTC is strictly worse than the dense TC in EDP.
        let dense = dense_fc_layer(None, OperandSide::Weights);
        let tc = simulate_layer(HwDesign::DenseTc, &cfg(), &dense);
        let dstc_dense = simulate_layer(HwDesign::Dstc, &cfg(), &dense);
        assert!(dstc_dense.edp(1.0) > tc.edp(1.0));
        assert!(
            dstc_dense.cycles > tc.cycles,
            "imbalance penalty must show up"
        );
        // For the doubly-sparse layer, DSTC beats the dense TC by a wide margin.
        let tc_sparse = simulate_layer(HwDesign::DenseTc, &cfg(), &sparse);
        assert!(dstc.edp(1.0) < 0.5 * tc_sparse.edp(1.0));
    }

    #[test]
    fn vegeta_without_tasd_cannot_exploit_unstructured_weights() {
        // Two-term config on unstructured weights: plain VEGETA must fall back to dense.
        let run = sparse_conv_layer(Some("4:8+1:8"));
        let vegeta = simulate_layer(HwDesign::Vegeta, &cfg(), &run);
        assert_eq!(vegeta.effectual_macs, vegeta.dense_macs);
        // The TTC variant with TASD honours it.
        let ttc = simulate_layer(HwDesign::TtcVegetaM8, &cfg(), &run);
        assert!(ttc.effectual_macs < vegeta.effectual_macs);
        // But a single native pattern (offline structured-pruned weights) is fine.
        let structured = sparse_conv_layer(Some("2:8"));
        let vegeta_structured = simulate_layer(HwDesign::Vegeta, &cfg(), &structured);
        assert!(vegeta_structured.effectual_macs < vegeta_structured.dense_macs);
    }

    #[test]
    fn activation_decomposition_needs_tasd_units_and_costs_energy() {
        let run = LayerRun {
            name: "act".to_string(),
            dims: (3136, 64, 576),
            weight_density: 1.0,
            activation_density: 0.5,
            tasd_side: OperandSide::Activations,
            tasd_config: Some(TasdConfig::parse("4:8+1:8").unwrap()),
            plan: None,
        };
        let ttc = simulate_layer(HwDesign::TtcVegetaM8, &cfg(), &run);
        assert!(
            ttc.energy.tasd_unit > 0.0,
            "dynamic decomposition must cost energy"
        );
        // 4:8+1:8 keeps 5 of 8 slots per block.
        assert!((ttc.effectual_macs / ttc.dense_macs - 0.625).abs() < 1e-9);
        // Plain VEGETA has no TASD units: runs densely, no TASD-unit energy.
        let vegeta = simulate_layer(HwDesign::Vegeta, &cfg(), &run);
        assert_eq!(vegeta.effectual_macs, vegeta.dense_macs);
        assert_eq!(vegeta.energy.tasd_unit, 0.0);
    }

    #[test]
    fn more_tasd_terms_cost_more_output_traffic() {
        let one_term = LayerRun {
            tasd_config: Some(TasdConfig::parse("4:8").unwrap()),
            ..sparse_conv_layer(None)
        };
        let two_terms = LayerRun {
            tasd_config: Some(TasdConfig::parse("2:8+2:8").unwrap()),
            ..sparse_conv_layer(None)
        };
        let m1 = simulate_layer(HwDesign::TtcVegetaM8, &cfg(), &one_term);
        let m2 = simulate_layer(HwDesign::TtcVegetaM8, &cfg(), &two_terms);
        // Same kept fraction (both configurations keep 4 of 8 slots), but the two-term run
        // re-touches the output tile once more.
        assert_eq!(m1.effectual_macs, m2.effectual_macs);
        assert!(m2.energy.l1 > m1.energy.l1);
    }

    #[test]
    fn operand_gating_saves_mac_energy_on_sparse_activations() {
        let run = sparse_conv_layer(Some("4:8"));
        let ttc = simulate_layer(HwDesign::TtcVegetaM8, &cfg(), &run);
        // Activations are 50% dense, so gated MAC energy is half of ungated.
        let expected = ttc.effectual_macs * cfg().energy.mac_pj * 0.5;
        assert!((ttc.energy.mac - expected).abs() < 1e-6);
        let tc = simulate_layer(HwDesign::DenseTc, &cfg(), &run);
        assert!((tc.energy.mac - tc.dense_macs * cfg().energy.mac_pj).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_kicks_in_for_tiny_compute() {
        // A wide, shallow GEMM where streaming the large output dominates: cycles should
        // equal the DRAM-bandwidth bound rather than the compute bound.
        let run = LayerRun {
            name: "tiny".to_string(),
            dims: (64, 4096, 64),
            weight_density: 0.05,
            activation_density: 1.0,
            tasd_side: OperandSide::Weights,
            tasd_config: Some(TasdConfig::parse("1:8").unwrap()),
            plan: None,
        };
        let c = cfg();
        let m = simulate_layer(HwDesign::TtcVegetaM8, &c, &run);
        let memory_cycles = (run.tasd_side_elements() * 0.125 * STRUCTURED_META_OVERHEAD
            + run.other_side_elements()
            + run.output_elements())
            / c.dram_words_per_cycle;
        assert!((m.cycles - memory_cycles).abs() / memory_cycles < 1e-9);
    }

    #[test]
    fn network_simulation_aggregates_layers() {
        let runs = vec![
            sparse_conv_layer(Some("2:8")),
            sparse_conv_layer(Some("1:8")),
        ];
        let net = simulate_network(HwDesign::TtcVegetaM8, &cfg(), &runs);
        assert_eq!(net.layers.len(), 2);
        let sum: f64 = net.layers.iter().map(|l| l.cycles).sum();
        assert_eq!(net.total_cycles(), sum);
        assert_eq!(net.design, "TTC-VEGETA-M8");
    }

    #[test]
    fn edp_ordering_matches_paper_for_a_sparse_layer() {
        // For a representative sparse-ResNet-50 layer with a good TASD config (the layer is
        // 95% sparse, so layer-wise TASDER would pick 1:8), the paper's ordering is:
        // TTC-VEGETA-M8 (best or close) < DSTC < TC (worst).
        let run = sparse_conv_layer(Some("1:8"));
        let c = cfg();
        let tc = simulate_layer(HwDesign::DenseTc, &c, &run).edp(1.0);
        let dstc = simulate_layer(HwDesign::Dstc, &c, &run).edp(1.0);
        let ttc = simulate_layer(HwDesign::TtcVegetaM8, &c, &run).edp(1.0);
        assert!(ttc < tc);
        assert!(dstc < tc);
        // TTC is within the same ballpark as DSTC without the 35% area overhead.
        assert!(ttc < dstc * 3.0);
    }
}

//! Accelerator configuration shared by all designs (paper §5.1: "All designs use the same
//! memory hierarchy and the same amount of PEs to ensure a fair comparison").

use crate::energy::EnergyModel;
use serde::{Deserialize, Serialize};

/// The common accelerator configuration: PE-array geometry, clock, memory hierarchy, and
/// energy constants. Individual [`crate::HwDesign`]s change *how* they use these resources,
/// not how many they have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of TASD tensor cores (TTCs) or equivalent sub-arrays.
    pub num_cores: usize,
    /// PE rows per core.
    pub pe_rows: usize,
    /// PE columns per core.
    pub pe_cols: usize,
    /// Clock frequency in GHz (used to convert cycles to seconds).
    pub frequency_ghz: f64,
    /// DRAM bandwidth in 32-bit words per cycle (all cores combined).
    pub dram_words_per_cycle: f64,
    /// L1 scratchpad capacity per core, in KiB.
    pub l1_kib: usize,
    /// L2 scratchpad capacity (shared), in KiB.
    pub l2_kib: usize,
    /// GEMM output-row tile size used by the dataflow model (controls B reuse out of L2).
    pub tile_m: usize,
    /// GEMM output-column tile size (controls A reuse out of the RF).
    pub tile_n: usize,
    /// Energy constants.
    pub energy: EnergyModel,
}

impl AcceleratorConfig {
    /// The default configuration: four 16×16 cores at 1 GHz (1024 MACs/cycle), 64 KiB L1
    /// per core, 2 MiB shared L2, 64 words/cycle of DRAM bandwidth — the same scale as the
    /// four-TTC system of the paper's Fig. 9.
    pub fn standard() -> Self {
        AcceleratorConfig {
            num_cores: 4,
            pe_rows: 16,
            pe_cols: 16,
            frequency_ghz: 1.0,
            dram_words_per_cycle: 64.0,
            l1_kib: 64,
            l2_kib: 2048,
            tile_m: 128,
            tile_n: 128,
            energy: EnergyModel::standard(),
        }
    }

    /// Total MACs the PE arrays can issue per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        (self.num_cores * self.pe_rows * self.pe_cols) as f64
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_values() {
        let c = AcceleratorConfig::standard();
        assert_eq!(c.macs_per_cycle(), 1024.0);
        assert!(c.frequency_ghz > 0.0);
        assert!(c.dram_words_per_cycle > 0.0);
        assert!(c.tile_m > 0 && c.tile_n > 0);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(AcceleratorConfig::default(), AcceleratorConfig::standard());
    }
}

//! Area model for the TASD-unit extension (paper §5.4).
//!
//! The paper prototypes the TASD units in RTL and synthesizes them with a 15 nm library,
//! reporting ≤ 2 % of the PE-array area. Offline, this module reproduces that estimate from
//! first principles: a TASD unit for block size M is a comparator tree that selects the
//! largest remaining element of an M-element block each cycle, so its size is dominated by
//! `M − 1` comparators plus M small value/index registers, while a PE is a fused
//! multiply-accumulate plus operand registers.

use serde::{Deserialize, Serialize};

/// Gate-equivalent cost model for the datapath building blocks (32-bit datapath).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Gate equivalents of one 32-bit magnitude comparator.
    pub comparator_ge: f64,
    /// Gate equivalents of one 32-bit register.
    pub register_ge: f64,
    /// Gate equivalents of one 32-bit fused multiply-accumulate unit.
    pub mac_ge: f64,
    /// Gate equivalents of small control/muxing per structured-sparse PE (metadata decode).
    pub pe_sparse_control_ge: f64,
}

impl AreaModel {
    /// Typical standard-cell gate-equivalent counts (32-bit FP datapath: an FP32 FMA is in
    /// the 10–15 k gate-equivalent range, a 32-bit magnitude comparator well under 200).
    pub fn standard() -> Self {
        AreaModel {
            comparator_ge: 150.0,
            register_ge: 150.0,
            mac_ge: 12_000.0,
            pe_sparse_control_ge: 300.0,
        }
    }

    /// Gate equivalents of one TASD unit for block size `m`: an (m−1)-comparator selection
    /// tree plus value and index registers for the block.
    pub fn tasd_unit_ge(&self, m: usize) -> f64 {
        let comparators = (m.saturating_sub(1)) as f64 * self.comparator_ge;
        let registers = m as f64 * (self.register_ge + 0.25 * self.register_ge);
        comparators + registers
    }

    /// Gate equivalents of one PE (MAC + two operand registers + accumulator register).
    pub fn pe_ge(&self) -> f64 {
        self.mac_ge + 3.0 * self.register_ge
    }

    /// Area overhead of adding `tasd_units` TASD units (block size `m`) to a PE array of
    /// `pes` processing elements, as a fraction of the PE-array area.
    pub fn tasd_overhead_fraction(&self, pes: usize, tasd_units: usize, m: usize) -> f64 {
        let pe_array = pes as f64 * self.pe_ge();
        let tasd = tasd_units as f64 * self.tasd_unit_ge(m);
        tasd / pe_array
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::standard()
    }
}

/// The paper's TTC-VEGETA configuration: each 16×16 TTC carries 16 TASD units (enough, by
/// Little's law, to hide the M-cycle decomposition latency of the 2-blocks-per-cycle output
/// stream — §4.4). Returns the TASD-unit area overhead fraction for that configuration.
pub fn ttc_vegeta_overhead(model: &AreaModel, m: usize) -> f64 {
    model.tasd_overhead_fraction(16 * 16, 16, m)
}

/// Minimum number of TASD units per TTC needed to decompose `blocks_per_cycle` output
/// blocks without stalling, when each decomposition takes up to `m` cycles
/// (Little's law: units = rate × latency, §4.4).
pub fn tasd_units_required(blocks_per_cycle: usize, m: usize) -> usize {
    blocks_per_cycle * m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasd_unit_is_tiny_compared_to_a_pe() {
        let a = AreaModel::standard();
        assert!(a.tasd_unit_ge(8) < a.pe_ge());
        assert!(a.tasd_unit_ge(4) < a.tasd_unit_ge(8));
    }

    #[test]
    fn paper_overhead_claim_holds() {
        // 16 TASD units (M=8) on a 256-PE array: at most 2% of the PE-array area.
        let a = AreaModel::standard();
        let overhead = ttc_vegeta_overhead(&a, 8);
        assert!(overhead <= 0.02, "overhead {overhead}");
        assert!(overhead > 0.001, "overhead implausibly small: {overhead}");
    }

    #[test]
    fn littles_law_unit_count() {
        // 2 blocks per cycle, 8-cycle decomposition: 16 units, matching Fig. 10.
        assert_eq!(tasd_units_required(2, 8), 16);
        assert_eq!(tasd_units_required(2, 4), 8);
    }

    #[test]
    fn overhead_scales_with_unit_count() {
        let a = AreaModel::standard();
        let few = a.tasd_overhead_fraction(256, 8, 8);
        let many = a.tasd_overhead_fraction(256, 32, 8);
        assert!(many > few);
        assert!((many / few - 4.0).abs() < 1e-9);
    }
}

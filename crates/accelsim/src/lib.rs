//! # tasd-accelsim
//!
//! Analytical accelerator model for the TASD reproduction — the stand-in for the paper's
//! Sparseloop-based evaluation (§5.1). Given a GEMM layer, its operand densities, and the
//! TASD configuration chosen for it, the model counts effectual MACs and per-level data
//! movement (DRAM → L2 SMEM → L1 SMEM → RF) under a decomposition-aware output-stationary
//! dataflow, converts the counts to energy with per-access energy constants, and derives
//! latency from the compute/memory bound — yielding energy, delay, and EDP per layer and
//! per network.
//!
//! Modelled hardware designs (paper Table 3):
//!
//! | design | sparsity support |
//! |---|---|
//! | [`HwDesign::DenseTc`] | none (dense tensor core) |
//! | [`HwDesign::Dstc`] | unstructured, both operands (dual-side sparse tensor core) |
//! | [`HwDesign::TtcStcM4`] / [`HwDesign::TtcStcM8`] | 2:4 / 4:8 (+ dense), TASD 1 term |
//! | [`HwDesign::TtcVegetaM4`] / [`HwDesign::TtcVegetaM8`] | N:4 / N:8 menus, TASD ≤ 2 terms |
//! | [`HwDesign::Vegeta`] | N:8 menu but *no* TASD units (appendix ablation) |
//!
//! The [`realsys`] module additionally models an RTX-3080-class GPU with 2:4 sparse tensor
//! cores for the paper's real-system experiment (Fig. 16), and [`area`] provides the
//! comparator-tree area estimate for the TASD units (§5.4).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod config;
pub mod designs;
pub mod energy;
pub mod metrics;
pub mod realsys;
pub mod simulator;
pub mod workload;

pub use config::AcceleratorConfig;
pub use designs::HwDesign;
pub use energy::EnergyModel;
pub use metrics::{EnergyBreakdown, LayerMetrics, NetworkMetrics};
pub use simulator::{simulate_layer, simulate_network};
pub use workload::{LayerRun, OperandSide};

//! Per-layer workload descriptions consumed by the simulator.

use serde::{Deserialize, Serialize};
use tasd::{ExecutionEngine, MatmulPlan, TasdConfig};
use tasd_dnn::LayerSpec;

/// Which operand of the GEMM is the "stationary"/decomposed side that structured-sparse
/// hardware skips on.
///
/// For weight-sparse workloads (TASD-W) the weights are the decomposed operand; for
/// dense-weight workloads with sparse activations (TASD-A) the activations are. The paper
/// never exploits both sides at once (§5.1), and neither does this model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandSide {
    /// The weight tensor is the skipped/decomposed operand (TASD-W).
    Weights,
    /// The activation tensor is the skipped/decomposed operand (TASD-A).
    Activations,
}

/// One GEMM layer as the accelerator sees it: dimensions, operand densities, and the TASD
/// configuration (if any) chosen for the decomposed side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRun {
    /// Layer name, carried through to reports.
    pub name: String,
    /// GEMM dimensions `(M, N, K)`: output rows, output columns, reduction depth.
    pub dims: (usize, usize, usize),
    /// Density (1 − sparsity) of the weight tensor.
    pub weight_density: f64,
    /// Density (1 − sparsity) of the input-activation tensor.
    pub activation_density: f64,
    /// Which operand TASD (or native structured support) is applied to.
    pub tasd_side: OperandSide,
    /// The TASD configuration chosen for the decomposed operand; `None` means the layer
    /// runs densely (no decomposition).
    pub tasd_config: Option<TasdConfig>,
    /// The execution engine's plan for this layer's GEMM (backend per term, estimated
    /// effectual MACs), when the run was built through
    /// [`LayerRun::from_spec_with_engine`]. Purely informational for the analytical
    /// model — reports use it to show how software would execute the same layer.
    pub plan: Option<MatmulPlan>,
}

impl LayerRun {
    /// Builds a run from a [`LayerSpec`], taking densities from the spec's recorded weight
    /// and input-activation sparsity.
    pub fn from_spec(
        spec: &LayerSpec,
        batch: usize,
        tasd_side: OperandSide,
        tasd_config: Option<TasdConfig>,
    ) -> Self {
        LayerRun {
            name: spec.name.clone(),
            dims: spec.gemm_dims(batch),
            weight_density: 1.0 - spec.weight_sparsity,
            activation_density: 1.0 - spec.input_activation_sparsity,
            tasd_side,
            tasd_config,
            plan: None,
        }
    }

    /// Builds a run from a [`LayerSpec`] and attaches the execution engine's shape-only
    /// plan for the decomposed operand ([`ExecutionEngine::plan_dims`]): the decomposed
    /// tensor is treated as the engine's left-hand operand and the streamed dimension as
    /// the output width, so the plan's estimated MACs match the layer's effectual MACs.
    pub fn from_spec_with_engine(
        engine: &ExecutionEngine,
        spec: &LayerSpec,
        batch: usize,
        tasd_side: OperandSide,
        tasd_config: Option<TasdConfig>,
    ) -> Self {
        let mut run = Self::from_spec(spec, batch, tasd_side, tasd_config);
        let (m, n, k) = run.dims;
        // Engine convention: lhs is (rows × cols) multiplied into out_cols columns.
        // Weights (K×N) stream against M output columns; activations (M×K) against N.
        let (lhs_rows, lhs_cols, out_cols) = match run.tasd_side {
            OperandSide::Weights => (k, n, m),
            OperandSide::Activations => (m, k, n),
        };
        run.plan = Some(engine.plan_dims(
            lhs_rows,
            lhs_cols,
            out_cols,
            run.tasd_side_density(),
            run.tasd_config.as_ref(),
        ));
        run
    }

    /// Dense MAC count of this GEMM.
    pub fn dense_macs(&self) -> f64 {
        let (m, n, k) = self.dims;
        m as f64 * n as f64 * k as f64
    }

    /// Density of the operand on the decomposed/skipped side.
    pub fn tasd_side_density(&self) -> f64 {
        match self.tasd_side {
            OperandSide::Weights => self.weight_density,
            OperandSide::Activations => self.activation_density,
        }
    }

    /// Density of the *other* (streaming) operand.
    pub fn other_side_density(&self) -> f64 {
        match self.tasd_side {
            OperandSide::Weights => self.activation_density,
            OperandSide::Activations => self.weight_density,
        }
    }

    /// The fraction of the decomposed operand the hardware stores and computes on when the
    /// layer executes with its TASD configuration: `Σ nᵢ/mᵢ` of the configuration.
    ///
    /// Note that this is a property of the *configuration*, not of the tensor: an N:M
    /// engine always processes N operand slots per M-element block, whether or not some of
    /// the stored values happen to be zero. This is exactly why the paper's flexible menus
    /// matter — a 95 %-sparse layer on a 2:4-only engine still pays for 50 % of the dense
    /// compute, while a 1:8-capable engine pays only 12.5 %.
    ///
    /// Without a configuration the layer runs densely and the kept fraction is 1.
    pub fn kept_fraction(&self) -> f64 {
        match &self.tasd_config {
            None => 1.0,
            Some(cfg) => {
                if cfg.is_dense() {
                    1.0
                } else {
                    cfg.kept_density().clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Number of TASD terms this layer executes (1 when running densely).
    pub fn num_terms(&self) -> usize {
        match &self.tasd_config {
            None => 1,
            Some(cfg) => cfg.order().max(1),
        }
    }

    /// Size of the decomposed-side operand tensor in elements (`M·K` for activations,
    /// `K·N` for weights).
    pub fn tasd_side_elements(&self) -> f64 {
        let (m, n, k) = self.dims;
        match self.tasd_side {
            OperandSide::Weights => k as f64 * n as f64,
            OperandSide::Activations => m as f64 * k as f64,
        }
    }

    /// Size of the streaming-side operand tensor in elements.
    pub fn other_side_elements(&self) -> f64 {
        let (m, n, k) = self.dims;
        match self.tasd_side {
            OperandSide::Weights => m as f64 * k as f64,
            OperandSide::Activations => k as f64 * n as f64,
        }
    }

    /// Output tensor size in elements (`M·N`).
    pub fn output_elements(&self) -> f64 {
        let (m, n, _) = self.dims;
        m as f64 * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_dnn::Activation;

    fn spec() -> LayerSpec {
        LayerSpec::linear("fc", 512, 256, 64, Activation::Relu)
            .with_weight_sparsity(0.9)
            .with_input_activation_sparsity(0.5)
    }

    #[test]
    fn from_spec_maps_densities() {
        let run = LayerRun::from_spec(&spec(), 2, OperandSide::Weights, None);
        assert_eq!(run.dims, (128, 256, 512));
        assert!((run.weight_density - 0.1).abs() < 1e-12);
        assert!((run.activation_density - 0.5).abs() < 1e-12);
        assert_eq!(run.dense_macs(), 128.0 * 256.0 * 512.0);
        assert_eq!(run.kept_fraction(), 1.0);
        assert_eq!(run.num_terms(), 1);
    }

    #[test]
    fn kept_fraction_follows_the_configuration_not_the_tensor() {
        let mut run = LayerRun::from_spec(&spec(), 1, OperandSide::Weights, None);
        run.tasd_config = Some(TasdConfig::parse("4:8").unwrap());
        // The weights are only 10% dense, but a 4:8 engine still processes 4 slots per
        // 8-element block: the hardware-kept fraction is the configuration's density.
        assert!((run.kept_fraction() - 0.5).abs() < 1e-12);
        run.tasd_config = Some(TasdConfig::parse("1:16").unwrap());
        assert!((run.kept_fraction() - 0.0625).abs() < 1e-12);
        run.tasd_config = Some(TasdConfig::dense(8));
        assert_eq!(run.kept_fraction(), 1.0);
    }

    #[test]
    fn activation_side_uses_activation_density() {
        let mut run = LayerRun::from_spec(&spec(), 1, OperandSide::Activations, None);
        run.tasd_config = Some(TasdConfig::parse("4:8+1:8").unwrap());
        assert!((run.tasd_side_density() - 0.5).abs() < 1e-12);
        assert!((run.kept_fraction() - 0.625).abs() < 1e-12);
        assert_eq!(run.num_terms(), 2);
        assert!((run.other_side_density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn from_spec_with_engine_attaches_a_matching_plan() {
        let engine = ExecutionEngine::global();
        let cfg = TasdConfig::parse("4:8+1:8").unwrap();
        let run = LayerRun::from_spec_with_engine(
            engine,
            &spec(),
            1,
            OperandSide::Weights,
            Some(cfg.clone()),
        );
        let plan = run.plan.as_ref().expect("engine-built runs carry a plan");
        // Weights are only 10% dense, so the first term absorbs all of it and the second
        // is empty: the plan's MAC estimate tracks the tensor, the hardware kept fraction
        // tracks the configuration.
        assert_eq!(plan.num_terms(), cfg.order());
        let planned_fraction = plan.compute_fraction();
        // (estimated MACs are truncated to whole integers, hence the loose tolerance)
        assert!(
            (planned_fraction - 0.1).abs() < 1e-4,
            "planned {planned_fraction}"
        );
        assert!(planned_fraction <= run.kept_fraction());
        // Dense (no-config) runs plan a single undecomposed term.
        let dense = LayerRun::from_spec_with_engine(engine, &spec(), 1, OperandSide::Weights, None);
        assert_eq!(dense.plan.as_ref().unwrap().num_terms(), 1);
        // The plain constructor attaches no plan.
        assert!(LayerRun::from_spec(&spec(), 1, OperandSide::Weights, None)
            .plan
            .is_none());
    }

    #[test]
    fn operand_element_counts() {
        let run = LayerRun::from_spec(&spec(), 1, OperandSide::Weights, None);
        let (m, n, k) = run.dims;
        assert_eq!(run.tasd_side_elements(), (k * n) as f64);
        assert_eq!(run.other_side_elements(), (m * k) as f64);
        assert_eq!(run.output_elements(), (m * n) as f64);
        let act_run = LayerRun::from_spec(&spec(), 1, OperandSide::Activations, None);
        assert_eq!(act_run.tasd_side_elements(), (m * k) as f64);
    }
}

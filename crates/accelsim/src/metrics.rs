//! Per-layer and per-network performance/energy metrics.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Energy consumed at each level of the design, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// DRAM access energy.
    pub dram: f64,
    /// L2 scratchpad access energy.
    pub l2: f64,
    /// L1 scratchpad access energy.
    pub l1: f64,
    /// Register-file access energy.
    pub rf: f64,
    /// MAC (compute) energy, including any unstructured indexing overhead.
    pub mac: f64,
    /// TASD-unit (dynamic decomposition) energy.
    pub tasd_unit: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dram + self.l2 + self.l1 + self.rf + self.mac + self.tasd_unit
    }

    /// The breakdown as `(label, value)` pairs, in hierarchy order.
    pub fn components(&self) -> [(&'static str, f64); 6] {
        [
            ("DRAM", self.dram),
            ("L2 SMEM", self.l2),
            ("L1 SMEM", self.l1),
            ("RF", self.rf),
            ("MAC", self.mac),
            ("TASD unit", self.tasd_unit),
        ]
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            dram: self.dram + rhs.dram,
            l2: self.l2 + rhs.l2,
            l1: self.l1 + rhs.l1,
            rf: self.rf + rhs.rf,
            mac: self.mac + rhs.mac,
            tasd_unit: self.tasd_unit + rhs.tasd_unit,
        }
    }
}

/// Simulation result for one layer on one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMetrics {
    /// Layer name.
    pub name: String,
    /// Execution cycles (the max of the compute and DRAM-bandwidth bounds).
    pub cycles: f64,
    /// Energy by level.
    pub energy: EnergyBreakdown,
    /// Effectual MACs actually executed.
    pub effectual_macs: f64,
    /// Dense MACs of the layer (for utilization/skip reporting).
    pub dense_macs: f64,
}

impl LayerMetrics {
    /// Total energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Latency in seconds at the given clock frequency.
    pub fn latency_s(&self, frequency_ghz: f64) -> f64 {
        self.cycles / (frequency_ghz * 1e9)
    }

    /// Energy-delay product in joule-seconds at the given clock frequency.
    pub fn edp(&self, frequency_ghz: f64) -> f64 {
        (self.energy_pj() * 1e-12) * self.latency_s(frequency_ghz)
    }

    /// Fraction of dense MACs that were skipped.
    pub fn mac_reduction(&self) -> f64 {
        if self.dense_macs == 0.0 {
            0.0
        } else {
            1.0 - self.effectual_macs / self.dense_macs
        }
    }
}

/// Aggregated metrics for a whole network on one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Design label these metrics belong to.
    pub design: String,
    /// Per-layer results, in network order.
    pub layers: Vec<LayerMetrics>,
    /// Clock frequency used for latency/EDP conversion.
    pub frequency_ghz: f64,
}

impl NetworkMetrics {
    /// Total cycles across layers (layers execute sequentially).
    pub fn total_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total energy in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.layers.iter().map(LayerMetrics::energy_pj).sum()
    }

    /// Summed energy breakdown across layers.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.layers
            .iter()
            .fold(EnergyBreakdown::default(), |acc, l| acc + l.energy)
    }

    /// End-to-end latency in seconds.
    pub fn total_latency_s(&self) -> f64 {
        self.total_cycles() / (self.frequency_ghz * 1e9)
    }

    /// End-to-end energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        (self.total_energy_pj() * 1e-12) * self.total_latency_s()
    }

    /// Total effectual MACs.
    pub fn total_effectual_macs(&self) -> f64 {
        self.layers.iter().map(|l| l.effectual_macs).sum()
    }

    /// Total dense MACs.
    pub fn total_dense_macs(&self) -> f64 {
        self.layers.iter().map(|l| l.dense_macs).sum()
    }

    /// Overall MAC reduction versus dense execution.
    pub fn mac_reduction(&self) -> f64 {
        if self.total_dense_macs() == 0.0 {
            0.0
        } else {
            1.0 - self.total_effectual_macs() / self.total_dense_macs()
        }
    }

    /// Metrics for a single layer by name.
    pub fn layer(&self, name: &str) -> Option<&LayerMetrics> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// Ratio helpers for "normalized to the dense TC" reporting used by every figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedMetrics {
    /// Latency relative to the baseline (lower is better).
    pub latency: f64,
    /// Energy relative to the baseline.
    pub energy: f64,
    /// EDP relative to the baseline.
    pub edp: f64,
}

impl NormalizedMetrics {
    /// Normalizes `metrics` against `baseline`.
    pub fn against(metrics: &NetworkMetrics, baseline: &NetworkMetrics) -> Self {
        NormalizedMetrics {
            latency: metrics.total_cycles() / baseline.total_cycles().max(f64::MIN_POSITIVE),
            energy: metrics.total_energy_pj() / baseline.total_energy_pj().max(f64::MIN_POSITIVE),
            edp: metrics.edp() / baseline.edp().max(f64::MIN_POSITIVE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, cycles: f64, mac_energy: f64) -> LayerMetrics {
        LayerMetrics {
            name: name.to_string(),
            cycles,
            energy: EnergyBreakdown {
                dram: 10.0,
                l2: 5.0,
                l1: 2.0,
                rf: 1.0,
                mac: mac_energy,
                tasd_unit: 0.5,
            },
            effectual_macs: 100.0,
            dense_macs: 200.0,
        }
    }

    #[test]
    fn breakdown_total_and_components() {
        let b = layer("x", 1.0, 3.0).energy;
        assert!((b.total_pj() - 21.5).abs() < 1e-12);
        assert_eq!(b.components().len(), 6);
        let sum: f64 = b.components().iter().map(|(_, v)| v).sum();
        assert!((sum - b.total_pj()).abs() < 1e-12);
    }

    #[test]
    fn layer_metric_derivations() {
        let l = layer("x", 1000.0, 3.0);
        assert_eq!(l.mac_reduction(), 0.5);
        assert!((l.latency_s(1.0) - 1e-6).abs() < 1e-18);
        let edp = l.edp(1.0);
        assert!((edp - 21.5e-12 * 1e-6).abs() < 1e-24);
    }

    #[test]
    fn network_aggregation() {
        let net = NetworkMetrics {
            design: "TC".to_string(),
            layers: vec![layer("a", 100.0, 1.0), layer("b", 300.0, 2.0)],
            frequency_ghz: 1.0,
        };
        assert_eq!(net.total_cycles(), 400.0);
        assert!((net.total_energy_pj() - (19.5 + 20.5)).abs() < 1e-9);
        assert_eq!(net.total_effectual_macs(), 200.0);
        assert_eq!(net.mac_reduction(), 0.5);
        assert!(net.layer("a").is_some());
        assert!(net.layer("c").is_none());
        let bd = net.energy_breakdown();
        assert!((bd.dram - 20.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = NetworkMetrics {
            design: "TC".to_string(),
            layers: vec![layer("a", 200.0, 10.0)],
            frequency_ghz: 1.0,
        };
        let better = NetworkMetrics {
            design: "TTC".to_string(),
            layers: vec![layer("a", 100.0, 10.0)],
            frequency_ghz: 1.0,
        };
        let norm = NormalizedMetrics::against(&better, &base);
        assert!((norm.latency - 0.5).abs() < 1e-12);
        assert!((norm.energy - 1.0).abs() < 1e-12);
        assert!((norm.edp - 0.5).abs() < 1e-12);
    }
}

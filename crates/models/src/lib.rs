//! # tasd-models
//!
//! Model zoo for the TASD reproduction. Every network the paper evaluates is described here
//! as a [`tasd_dnn::NetworkSpec`] — the ordered CONV/FC layers with their im2col GEMM
//! dimensions and activation functions — together with SparseZoo-like per-layer sparsity
//! profiles and the paper's representative layers (Table 4).
//!
//! The shapes are the standard ImageNet / BERT-base geometries:
//!
//! * ResNet-18/34/50/101 ([`resnet`])
//! * VGG-11/16 ([`vgg`])
//! * BERT-base and ViT-B/16 ([`transformer`])
//! * ConvNeXt-Tiny ([`convnext`])
//!
//! Use [`by_name`] to look a model up by its paper name (e.g. `"resnet50"`, `"bert-base"`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod convnext;
pub mod profiles;
pub mod representative;
pub mod resnet;
pub mod transformer;
pub mod vgg;

pub use profiles::{activation_sparsity_profile, sparsezoo_like_profile};
pub use representative::{representative_layers, RepresentativeLayer, Workload};

use tasd_dnn::NetworkSpec;

/// Looks up a model specification by name.
///
/// Supported names: `resnet18`, `resnet34`, `resnet50`, `resnet101`, `vgg11`, `vgg16`,
/// `bert-base`, `vit-b-16`, `convnext-tiny`.
///
/// # Example
///
/// ```
/// let rn50 = tasd_models::by_name("resnet50").unwrap();
/// assert_eq!(rn50.name, "resnet50");
/// assert!(rn50.num_layers() > 50);
/// ```
pub fn by_name(name: &str) -> Option<NetworkSpec> {
    match name {
        "resnet18" => Some(resnet::resnet18()),
        "resnet34" => Some(resnet::resnet34()),
        "resnet50" => Some(resnet::resnet50()),
        "resnet101" => Some(resnet::resnet101()),
        "vgg11" => Some(vgg::vgg11()),
        "vgg16" => Some(vgg::vgg16()),
        "bert-base" => Some(transformer::bert_base(128)),
        "vit-b-16" => Some(transformer::vit_b_16()),
        "convnext-tiny" => Some(convnext::convnext_tiny()),
        _ => None,
    }
}

/// All model names known to [`by_name`].
pub fn model_names() -> Vec<&'static str> {
    vec![
        "resnet18",
        "resnet34",
        "resnet50",
        "resnet101",
        "vgg11",
        "vgg16",
        "bert-base",
        "vit-b-16",
        "convnext-tiny",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_names() {
        for name in model_names() {
            let spec = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(spec.num_layers() > 0, "{name} has no layers");
            assert!(spec.total_dense_macs(1) > 0, "{name} has no MACs");
        }
        assert!(by_name("alexnet").is_none());
    }
}

//! VGG layer-shape builders (Simonyan & Zisserman) for ImageNet inputs (224×224).

use tasd_dnn::{Activation, LayerSpec, NetworkSpec};
use tasd_tensor::Conv2dDims;

/// One entry of a VGG configuration string: a convolution producing the given channel
/// count, or a max-pool (which halves the spatial size and carries no MACs).
#[derive(Debug, Clone, Copy)]
enum VggItem {
    Conv(usize),
    Pool,
}

fn build(name: &str, config: &[VggItem]) -> NetworkSpec {
    let mut layers = Vec::new();
    let mut in_ch = 3usize;
    let mut size = 224usize;
    let mut conv_idx = 0usize;
    for item in config {
        match *item {
            VggItem::Conv(out_ch) => {
                layers.push(LayerSpec::conv(
                    format!("features.conv{conv_idx}"),
                    Conv2dDims::square(in_ch, out_ch, size, 3, 1, 1),
                    Activation::Relu,
                ));
                in_ch = out_ch;
                conv_idx += 1;
            }
            VggItem::Pool => size /= 2,
        }
    }
    // Classifier: 512×7×7 → 4096 → 4096 → 1000.
    layers.push(LayerSpec::linear(
        "classifier.fc1",
        512 * 7 * 7,
        4096,
        1,
        Activation::Relu,
    ));
    layers.push(LayerSpec::linear(
        "classifier.fc2",
        4096,
        4096,
        1,
        Activation::Relu,
    ));
    layers.push(LayerSpec::linear(
        "classifier.fc3",
        4096,
        1000,
        1,
        Activation::None,
    ));
    NetworkSpec::new(name, layers)
}

/// VGG-11 (configuration "A").
pub fn vgg11() -> NetworkSpec {
    use VggItem::{Conv, Pool};
    build(
        "vgg11",
        &[
            Conv(64),
            Pool,
            Conv(128),
            Pool,
            Conv(256),
            Conv(256),
            Pool,
            Conv(512),
            Conv(512),
            Pool,
            Conv(512),
            Conv(512),
            Pool,
        ],
    )
}

/// VGG-16 (configuration "D").
pub fn vgg16() -> NetworkSpec {
    use VggItem::{Conv, Pool};
    build(
        "vgg16",
        &[
            Conv(64),
            Conv(64),
            Pool,
            Conv(128),
            Conv(128),
            Pool,
            Conv(256),
            Conv(256),
            Conv(256),
            Pool,
            Conv(512),
            Conv(512),
            Conv(512),
            Pool,
            Conv(512),
            Conv(512),
            Conv(512),
            Pool,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_reference_totals() {
        let net = vgg16();
        // 13 convs + 3 FCs; ~15.5 GMACs; ~138 M params.
        assert_eq!(net.num_layers(), 16);
        let gmacs = net.total_dense_macs(1) as f64 / 1e9;
        assert!((14.5..16.0).contains(&gmacs), "GMACs {gmacs}");
        let mparams = net.total_weight_params() as f64 / 1e6;
        assert!((130.0..142.0).contains(&mparams), "Mparams {mparams}");
    }

    #[test]
    fn vgg11_reference_totals() {
        let net = vgg11();
        assert_eq!(net.num_layers(), 11);
        let gmacs = net.total_dense_macs(1) as f64 / 1e9;
        assert!((7.0..8.0).contains(&gmacs), "GMACs {gmacs}");
    }

    #[test]
    fn classifier_dominates_parameters_but_not_macs() {
        let net = vgg16();
        let fc1 = net.layer("classifier.fc1").unwrap();
        assert_eq!(fc1.weight_params(), 25088 * 4096);
        assert!(fc1.weight_params() > net.total_weight_params() / 2);
        assert!(fc1.dense_macs(1) < net.total_dense_macs(1) / 10);
    }

    #[test]
    fn spatial_sizes_halve_at_pools() {
        let net = vgg16();
        // Last conv runs at 14x14 (before the final pool).
        let last_conv = net.layer("features.conv12").unwrap();
        assert_eq!(last_conv.gemm_dims(1).0, 14 * 14);
        // First conv runs at 224x224.
        assert_eq!(
            net.layer("features.conv0").unwrap().gemm_dims(1).0,
            224 * 224
        );
    }
}

//! Transformer layer-shape builders: BERT-base (Devlin et al.) and ViT-B/16
//! (Dosovitskiy et al.).
//!
//! Each encoder block contributes six GEMM layers: the Q/K/V projections, the attention
//! output projection, and the two feed-forward (MLP) layers. The attention score GEMMs
//! (`QKᵀ` and `·V`) are activation–activation products with no weight operand, so TASD-W
//! does not apply to them and the paper leaves them untouched; they are omitted from the
//! spec (their MAC share at sequence length 128 is small). GELU follows the first MLP
//! layer, which is what makes the pseudo-density heuristic necessary for these models.

use tasd_dnn::{Activation, LayerSpec, NetworkSpec};
use tasd_tensor::Conv2dDims;

/// Appends one transformer encoder block's GEMM layers.
fn encoder_block(
    layers: &mut Vec<LayerSpec>,
    name: &str,
    hidden: usize,
    ffn: usize,
    tokens: usize,
) {
    for proj in ["query", "key", "value"] {
        layers.push(LayerSpec::linear(
            format!("{name}.attn.{proj}"),
            hidden,
            hidden,
            tokens,
            Activation::None,
        ));
    }
    layers.push(LayerSpec::linear(
        format!("{name}.attn.output"),
        hidden,
        hidden,
        tokens,
        Activation::None,
    ));
    layers.push(LayerSpec::linear(
        format!("{name}.ffn.fc1"),
        hidden,
        ffn,
        tokens,
        Activation::Gelu,
    ));
    layers.push(LayerSpec::linear(
        format!("{name}.ffn.fc2"),
        ffn,
        hidden,
        tokens,
        Activation::None,
    ));
}

/// BERT-base: 12 encoder blocks, hidden 768, FFN 3072, evaluated at the given sequence
/// length (the paper uses 128).
pub fn bert_base(seq_len: usize) -> NetworkSpec {
    let mut layers = Vec::new();
    for b in 0..12 {
        encoder_block(&mut layers, &format!("encoder.{b}"), 768, 3072, seq_len);
    }
    NetworkSpec::new("bert-base", layers)
}

/// ViT-B/16 for 224×224 inputs: a 16×16/16 patch-embedding convolution (3 → 768) producing
/// 196 patch tokens (plus the class token, 197 total), followed by 12 encoder blocks with
/// hidden 768 and MLP 3072.
pub fn vit_b_16() -> NetworkSpec {
    let mut layers = Vec::new();
    layers.push(LayerSpec::conv(
        "patch_embed",
        Conv2dDims::square(3, 768, 224, 16, 16, 0),
        Activation::None,
    ));
    let tokens = 197;
    for b in 0..12 {
        encoder_block(&mut layers, &format!("encoder.{b}"), 768, 3072, tokens);
    }
    layers.push(LayerSpec::linear("head", 768, 1000, 1, Activation::None));
    NetworkSpec::new("vit-b-16", layers)
}

/// Returns `true` if the named layer is one of the feed-forward (MLP) layers — the layers
/// the paper replaces with TASD/TFC in a Transformer block (Fig. 8d). Applying TASD to the
/// attention projections was found to hurt model quality (§4.3).
pub fn is_ffn_layer(layer_name: &str) -> bool {
    layer_name.contains(".ffn.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_reference_totals() {
        let net = bert_base(128);
        // 12 blocks x 6 GEMM layers.
        assert_eq!(net.num_layers(), 72);
        // ~85 M parameters in the encoder GEMMs (embeddings excluded).
        let mparams = net.total_weight_params() as f64 / 1e6;
        assert!((80.0..90.0).contains(&mparams), "Mparams {mparams}");
        // ~10.9 GMACs at sequence length 128 for the weight GEMMs.
        let gmacs = net.total_dense_macs(1) as f64 / 1e9;
        assert!((10.0..12.0).contains(&gmacs), "GMACs {gmacs}");
    }

    #[test]
    fn table4_bert_layers_exist() {
        let net = bert_base(128);
        // Paper Table 4 (M and N are written swapped relative to our (tokens, out, in)
        // convention): QKV projection 128x768x768, FFN fc1 128x3072x768, fc2 128x768x3072.
        let has = |m: usize, n: usize, k: usize| net.iter().any(|l| l.gemm_dims(1) == (m, n, k));
        assert!(has(128, 768, 768));
        assert!(has(128, 3072, 768));
        assert!(has(128, 768, 3072));
    }

    #[test]
    fn bert_uses_gelu_not_relu() {
        let net = bert_base(128);
        assert!(!net.has_relu_activations());
        assert!(net.iter().any(|l| l.activation == Activation::Gelu));
    }

    #[test]
    fn ffn_layer_classification() {
        assert!(is_ffn_layer("encoder.3.ffn.fc1"));
        assert!(!is_ffn_layer("encoder.3.attn.query"));
    }

    #[test]
    fn vit_reference_totals() {
        let net = vit_b_16();
        // patch embed + 72 encoder GEMMs + head.
        assert_eq!(net.num_layers(), 74);
        let mparams = net.total_weight_params() as f64 / 1e6;
        assert!((85.0..90.0).contains(&mparams), "Mparams {mparams}");
        // ~17 GMACs at 197 tokens.
        let gmacs = net.total_dense_macs(1) as f64 / 1e9;
        assert!((15.0..19.0).contains(&gmacs), "GMACs {gmacs}");
        // Patch embedding produces 196 tokens.
        assert_eq!(net.layer("patch_embed").unwrap().gemm_dims(1).0, 196);
    }

    #[test]
    fn sequence_length_scales_macs_linearly() {
        let short = bert_base(64);
        let long = bert_base(128);
        assert_eq!(short.total_dense_macs(1) * 2, long.total_dense_macs(1));
    }
}

//! The paper's representative layers (Table 4) and workload definitions (§5.1).

use serde::{Deserialize, Serialize};
use tasd_dnn::NetworkSpec;

/// The four workloads evaluated in the paper's main experiments (Fig. 12/13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Dense ResNet-50 from TorchVision (ReLU-based: dense weights, sparse activations).
    DenseResNet50,
    /// 95 % unstructured-sparse ResNet-50 from SparseZoo (sparse weights and activations).
    SparseResNet50,
    /// Dense BERT-base (GeLU-based: dense weights, dense activations).
    DenseBert,
    /// Unstructured-sparse BERT-base (sparse weights, dense activations).
    SparseBert,
}

impl Workload {
    /// All four workloads, in the paper's presentation order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::DenseResNet50,
            Workload::DenseBert,
            Workload::SparseResNet50,
            Workload::SparseBert,
        ]
    }

    /// Display name used in tables and figure output.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::DenseResNet50 => "Dense ResNet50",
            Workload::SparseResNet50 => "Sparse ResNet50",
            Workload::DenseBert => "Dense BERT",
            Workload::SparseBert => "Sparse BERT",
        }
    }

    /// Whether the workload's weights are unstructured sparse.
    pub fn has_sparse_weights(&self) -> bool {
        matches!(self, Workload::SparseResNet50 | Workload::SparseBert)
    }

    /// Whether the workload's activations carry ReLU-induced sparsity.
    pub fn has_sparse_activations(&self) -> bool {
        matches!(self, Workload::DenseResNet50 | Workload::SparseResNet50)
    }

    /// Builds the annotated network spec for this workload: the base model with the
    /// appropriate SparseZoo-like weight profile (95 % for the sparse variants, as in the
    /// paper) and ReLU activation-sparsity profile.
    pub fn network(&self, seed: u64) -> NetworkSpec {
        match self {
            Workload::DenseResNet50 => crate::profiles::dense_model_with_activation_sparsity(
                &crate::resnet::resnet50(),
                seed,
            ),
            Workload::SparseResNet50 => {
                crate::profiles::sparse_model(&crate::resnet::resnet50(), 0.95, seed)
            }
            Workload::DenseBert => crate::profiles::dense_model_with_activation_sparsity(
                &crate::transformer::bert_base(128),
                seed,
            ),
            Workload::SparseBert => {
                crate::profiles::sparse_model(&crate::transformer::bert_base(128), 0.90, seed)
            }
        }
    }
}

/// One representative layer from Table 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepresentativeLayer {
    /// Short label used in the per-layer bars of Fig. 12 ("L1", "L2", "L3").
    pub label: &'static str,
    /// GEMM dimensions as `(M, N, K)` in the `(output rows, output cols, reduction)`
    /// convention of this repository.
    pub gemm_dims: (usize, usize, usize),
}

/// The representative layers of a workload (paper Table 4): one early, one mid, one late
/// layer. ResNet-50 layers are shared between the dense and sparse variants, as are the
/// BERT layers.
pub fn representative_layers(workload: Workload) -> Vec<RepresentativeLayer> {
    match workload {
        Workload::DenseResNet50 | Workload::SparseResNet50 => vec![
            RepresentativeLayer {
                label: "L1",
                gemm_dims: (784, 128, 1152),
            },
            RepresentativeLayer {
                label: "L2",
                gemm_dims: (3136, 64, 576),
            },
            RepresentativeLayer {
                label: "L3",
                gemm_dims: (196, 256, 2304),
            },
        ],
        Workload::DenseBert | Workload::SparseBert => vec![
            RepresentativeLayer {
                label: "L1",
                gemm_dims: (128, 768, 768),
            },
            RepresentativeLayer {
                label: "L2",
                gemm_dims: (128, 3072, 768),
            },
            RepresentativeLayer {
                label: "L3",
                gemm_dims: (128, 768, 3072),
            },
        ],
    }
}

/// Finds the name of a layer in `spec` whose GEMM dimensions match a representative layer.
pub fn find_layer_by_dims(spec: &NetworkSpec, dims: (usize, usize, usize)) -> Option<String> {
    spec.iter()
        .find(|l| l.gemm_dims(1) == dims)
        .map(|l| l.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_layers_exist_in_their_models() {
        for wl in Workload::all() {
            let spec = wl.network(1);
            for rep in representative_layers(wl) {
                assert!(
                    find_layer_by_dims(&spec, rep.gemm_dims).is_some(),
                    "{:?} {} missing {:?}",
                    wl,
                    rep.label,
                    rep.gemm_dims
                );
            }
        }
    }

    #[test]
    fn workload_sparsity_flags() {
        assert!(Workload::SparseResNet50.has_sparse_weights());
        assert!(Workload::SparseResNet50.has_sparse_activations());
        assert!(!Workload::DenseBert.has_sparse_weights());
        assert!(!Workload::DenseBert.has_sparse_activations());
        assert!(Workload::DenseResNet50.has_sparse_activations());
        assert!(Workload::SparseBert.has_sparse_weights());
        assert!(!Workload::SparseBert.has_sparse_activations());
    }

    #[test]
    fn workload_networks_match_their_profiles() {
        let sparse_rn = Workload::SparseResNet50.network(3);
        assert!((sparse_rn.overall_weight_sparsity() - 0.95).abs() < 0.01);
        let dense_rn = Workload::DenseResNet50.network(3);
        assert_eq!(dense_rn.overall_weight_sparsity(), 0.0);
        let dense_bert = Workload::DenseBert.network(3);
        assert!(dense_bert
            .layers
            .iter()
            .all(|l| l.input_activation_sparsity == 0.0));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Workload::all().iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}

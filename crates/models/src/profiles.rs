//! SparseZoo-like sparsity profiles.
//!
//! The paper's sparse workloads come from SparseZoo: models pruned with *global* magnitude
//! pruning to ≈95 % overall weight sparsity, which leaves different layers with different
//! sparsity degrees (Fig. 6 — early, small layers stay denser; large mid/late layers are
//! pruned hardest). Activation sparsity similarly varies per layer between roughly 35 % and
//! 85 % for ReLU networks. These profiles synthesize both shapes deterministically.

use tasd_dnn::NetworkSpec;
use tasd_tensor::MatrixGenerator;

/// Produces a per-layer *weight* sparsity profile for `spec` whose parameter-weighted mean
/// equals `overall_sparsity`, with the qualitative shape of a globally magnitude-pruned
/// model (larger layers are pruned harder, the first convolution and the classifier stay
/// noticeably denser), plus small deterministic per-layer jitter.
///
/// # Panics
///
/// Panics if `overall_sparsity` is not within `[0, 1)`.
pub fn sparsezoo_like_profile(spec: &NetworkSpec, overall_sparsity: f64, seed: u64) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&overall_sparsity),
        "overall sparsity must be in [0, 1)"
    );
    if spec.num_layers() == 0 {
        return Vec::new();
    }
    if overall_sparsity == 0.0 {
        return vec![0.0; spec.num_layers()];
    }
    let params: Vec<f64> = spec.iter().map(|l| l.weight_params() as f64).collect();
    let total_params: f64 = params.iter().sum();
    let median = {
        let mut sorted = params.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    };
    let mut gen = MatrixGenerator::seeded(seed);
    // Raw keep-fractions: small layers keep relatively more of their weights.
    let mut keep: Vec<f64> = params
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let size_factor = (median / p.max(1.0)).powf(0.25).clamp(0.6, 3.0);
            let first_layer_bonus = if i == 0 { 2.0 } else { 1.0 };
            let jitter = 1.0 + 0.15 * (gen.unit() as f64 - 0.5);
            (1.0 - overall_sparsity) * size_factor * first_layer_bonus * jitter
        })
        .collect();
    // Rescale so the parameter-weighted mean keep-fraction matches the target, then clamp.
    for _ in 0..8 {
        let kept_params: f64 = keep.iter().zip(&params).map(|(k, p)| k * p).sum();
        let target_kept = (1.0 - overall_sparsity) * total_params;
        let scale = target_kept / kept_params.max(1e-12);
        for k in keep.iter_mut() {
            *k = (*k * scale).clamp(0.005, 1.0);
        }
    }
    keep.iter().map(|k| (1.0 - k).clamp(0.0, 0.995)).collect()
}

/// Produces a per-layer *input-activation* sparsity profile for `spec`: layers whose input
/// comes from a ReLU-family activation get a sparsity in roughly 0.35–0.85 (varying by
/// depth, as in Fig. 6), and layers fed by GELU/Swish or the raw network input get 0.
pub fn activation_sparsity_profile(spec: &NetworkSpec, seed: u64) -> Vec<f64> {
    let mut gen = MatrixGenerator::seeded(seed.wrapping_add(0x5EED));
    let n = spec.num_layers();
    (0..n)
        .map(|i| {
            if i == 0 {
                // The first layer reads the network input (dense images / embeddings).
                return 0.0;
            }
            let producer = &spec.layers[i - 1];
            if !producer.activation.induces_sparsity() {
                return 0.0;
            }
            // Deeper ReLU layers tend to be sparser; add deterministic jitter.
            let depth_frac = i as f64 / n.max(1) as f64;
            let base = 0.40 + 0.35 * depth_frac;
            (base + 0.10 * (gen.unit() as f64 - 0.5)).clamp(0.2, 0.9)
        })
        .collect()
}

/// Applies both profiles (weight sparsity of `overall_sparsity`, ReLU activation sparsity)
/// to `spec`, returning the annotated network — the offline stand-in for downloading a
/// SparseZoo checkpoint.
#[must_use]
pub fn sparse_model(spec: &NetworkSpec, overall_sparsity: f64, seed: u64) -> NetworkSpec {
    let weight_profile = sparsezoo_like_profile(spec, overall_sparsity, seed);
    let act_profile = activation_sparsity_profile(spec, seed);
    let mut out = spec.clone();
    for ((layer, w), a) in out.layers.iter_mut().zip(&weight_profile).zip(&act_profile) {
        layer.weight_sparsity = *w;
        layer.input_activation_sparsity = *a;
    }
    out
}

/// Annotates a *dense* model with its natural activation sparsity only (weights stay
/// dense) — the "dense ResNet-50 / dense BERT" workloads of the paper.
#[must_use]
pub fn dense_model_with_activation_sparsity(spec: &NetworkSpec, seed: u64) -> NetworkSpec {
    let act_profile = activation_sparsity_profile(spec, seed);
    let mut out = spec.clone();
    for (layer, a) in out.layers.iter_mut().zip(&act_profile) {
        layer.weight_sparsity = 0.0;
        layer.input_activation_sparsity = *a;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::resnet50;
    use crate::transformer::bert_base;

    #[test]
    fn weight_profile_hits_overall_target() {
        let spec = resnet50();
        let profile = sparsezoo_like_profile(&spec, 0.95, 1);
        assert_eq!(profile.len(), spec.num_layers());
        let params: Vec<f64> = spec.iter().map(|l| l.weight_params() as f64).collect();
        let total: f64 = params.iter().sum();
        let overall: f64 = profile.iter().zip(&params).map(|(s, p)| s * p).sum::<f64>() / total;
        assert!((overall - 0.95).abs() < 0.01, "overall {overall}");
        // Every layer within [0, 0.995].
        assert!(profile.iter().all(|&s| (0.0..=0.995).contains(&s)));
        // Figure-6 shape: the first conv is notably denser than the median layer.
        let mut sorted = profile.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            profile[0] < median,
            "first layer {} vs median {median}",
            profile[0]
        );
        // Layers are not all identical.
        let spread = sorted.last().unwrap() - sorted.first().unwrap();
        assert!(spread > 0.05, "spread {spread}");
    }

    #[test]
    fn weight_profile_is_deterministic() {
        let spec = resnet50();
        assert_eq!(
            sparsezoo_like_profile(&spec, 0.9, 7),
            sparsezoo_like_profile(&spec, 0.9, 7)
        );
        assert_ne!(
            sparsezoo_like_profile(&spec, 0.9, 7),
            sparsezoo_like_profile(&spec, 0.9, 8)
        );
    }

    #[test]
    fn zero_sparsity_profile_is_all_zero() {
        let spec = resnet50();
        assert!(sparsezoo_like_profile(&spec, 0.0, 1)
            .iter()
            .all(|&s| s == 0.0));
    }

    #[test]
    fn activation_profile_respects_activations() {
        let rn = resnet50();
        let profile = activation_sparsity_profile(&rn, 3);
        assert_eq!(profile[0], 0.0, "first layer input is dense");
        // Most ResNet layers read ReLU outputs and should be 0.2-0.9 sparse.
        let relu_fed = profile.iter().skip(1).filter(|&&s| s > 0.0).count();
        assert!(relu_fed > rn.num_layers() / 2);
        assert!(profile.iter().all(|&s| (0.0..=0.9).contains(&s)));

        // BERT uses GELU, so activation sparsity must be zero everywhere.
        let bert = bert_base(128);
        let bert_profile = activation_sparsity_profile(&bert, 3);
        assert!(bert_profile.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn sparse_model_annotates_both_profiles() {
        let spec = sparse_model(&resnet50(), 0.95, 11);
        assert!((spec.overall_weight_sparsity() - 0.95).abs() < 0.01);
        assert!(spec
            .layers
            .iter()
            .skip(1)
            .any(|l| l.input_activation_sparsity > 0.0));
        let dense = dense_model_with_activation_sparsity(&resnet50(), 11);
        assert_eq!(dense.overall_weight_sparsity(), 0.0);
        assert!(dense
            .layers
            .iter()
            .skip(1)
            .any(|l| l.input_activation_sparsity > 0.0));
    }

    #[test]
    #[should_panic(expected = "overall sparsity")]
    fn profile_rejects_out_of_range_target() {
        let _ = sparsezoo_like_profile(&resnet50(), 1.0, 1);
    }
}

//! ConvNeXt-Tiny layer-shape builder (Liu et al., 2022).
//!
//! ConvNeXt blocks consist of a 7×7 depthwise convolution followed by two pointwise (1×1)
//! convolutions with a GELU in between. The depthwise convolutions do not lower to the
//! dense GEMM form TASD targets (each output channel reads a single input channel) and
//! contribute only a few percent of the model's MACs, so — as documented in DESIGN.md —
//! the spec records the stem, the downsampling convolutions, and the pointwise expansion /
//! reduction convolutions, which carry essentially all of the GEMM work TASD can touch.

use tasd_dnn::{Activation, LayerSpec, NetworkSpec};
use tasd_tensor::Conv2dDims;

/// ConvNeXt-Tiny: depths [3, 3, 9, 3], widths [96, 192, 384, 768], 224×224 input.
pub fn convnext_tiny() -> NetworkSpec {
    let depths = [3usize, 3, 9, 3];
    let dims = [96usize, 192, 384, 768];
    let sizes = [56usize, 28, 14, 7];
    let mut layers = Vec::new();
    // Stem: 4x4 stride-4 convolution, 3 -> 96, 224 -> 56.
    layers.push(LayerSpec::conv(
        "stem",
        Conv2dDims::square(3, 96, 224, 4, 4, 0),
        Activation::None,
    ));
    for (stage, ((&depth, &dim), &size)) in depths.iter().zip(&dims).zip(&sizes).enumerate() {
        if stage > 0 {
            // Downsample layer: 2x2 stride-2 convolution from the previous width.
            layers.push(LayerSpec::conv(
                format!("downsample{stage}"),
                Conv2dDims::square(dims[stage - 1], dim, size * 2, 2, 2, 0),
                Activation::None,
            ));
        }
        for b in 0..depth {
            // Pointwise expansion (dim -> 4*dim) with GELU, then reduction (4*dim -> dim).
            layers.push(LayerSpec::conv(
                format!("stage{stage}.block{b}.pw1"),
                Conv2dDims::square(dim, dim * 4, size, 1, 1, 0),
                Activation::Gelu,
            ));
            layers.push(LayerSpec::conv(
                format!("stage{stage}.block{b}.pw2"),
                Conv2dDims::square(dim * 4, dim, size, 1, 1, 0),
                Activation::None,
            ));
        }
    }
    layers.push(LayerSpec::linear("head", 768, 1000, 1, Activation::None));
    NetworkSpec::new("convnext-tiny", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_totals() {
        let net = convnext_tiny();
        // stem + 3 downsamples + 18 blocks x 2 pointwise convs + head.
        assert_eq!(net.num_layers(), 1 + 3 + 18 * 2 + 1);
        // ~4.0 GMACs for the pointwise/stem path (the full model is ~4.5 including
        // depthwise convs); ~27 M params.
        let gmacs = net.total_dense_macs(1) as f64 / 1e9;
        assert!((3.5..4.6).contains(&gmacs), "GMACs {gmacs}");
        let mparams = net.total_weight_params() as f64 / 1e6;
        assert!((25.0..30.0).contains(&mparams), "Mparams {mparams}");
    }

    #[test]
    fn uses_gelu_only() {
        let net = convnext_tiny();
        assert!(!net.has_relu_activations());
        assert!(net.iter().any(|l| l.activation == Activation::Gelu));
    }

    #[test]
    fn expansion_ratio_is_four() {
        let net = convnext_tiny();
        let pw1 = net.layer("stage2.block0.pw1").unwrap();
        let (_, n, k) = pw1.gemm_dims(1);
        assert_eq!(n, (4 * k), "expansion produces 4x channels");
        assert_eq!(k, 384);
        assert_eq!(n, 1536);
    }
}

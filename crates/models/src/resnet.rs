//! ResNet layer-shape builders (He et al., 2016) for ImageNet inputs (224×224).
//!
//! Every convolution is recorded with its im2col GEMM dimensions; batch-norm and pooling
//! layers carry no TASD-relevant compute and are folded into the activation annotation
//! (ReLU follows every convolution except the residual-add positions, which still feed a
//! ReLU before the next block — for TASD purposes each conv's output passes through ReLU).

use tasd_dnn::{Activation, LayerSpec, NetworkSpec};
use tasd_tensor::Conv2dDims;

/// The stem shared by all ImageNet ResNets: 7×7/2 convolution producing 64 channels at
/// 112×112, followed by a 3×3/2 max-pool (no MACs) down to 56×56.
fn stem(layers: &mut Vec<LayerSpec>) {
    layers.push(LayerSpec::conv(
        "conv1",
        Conv2dDims::square(3, 64, 224, 7, 2, 3),
        Activation::Relu,
    ));
}

/// Appends one *basic block* (two 3×3 convolutions) used by ResNet-18/34.
fn basic_block(
    layers: &mut Vec<LayerSpec>,
    name: &str,
    in_ch: usize,
    out_ch: usize,
    in_size: usize,
    stride: usize,
) {
    layers.push(LayerSpec::conv(
        format!("{name}.conv1"),
        Conv2dDims::square(in_ch, out_ch, in_size, 3, stride, 1),
        Activation::Relu,
    ));
    let mid_size = in_size / stride;
    layers.push(LayerSpec::conv(
        format!("{name}.conv2"),
        Conv2dDims::square(out_ch, out_ch, mid_size, 3, 1, 1),
        Activation::Relu,
    ));
    if stride != 1 || in_ch != out_ch {
        layers.push(LayerSpec::conv(
            format!("{name}.downsample"),
            Conv2dDims::square(in_ch, out_ch, in_size, 1, stride, 0),
            Activation::None,
        ));
    }
}

/// Appends one *bottleneck block* (1×1 reduce, 3×3, 1×1 expand) used by ResNet-50/101.
fn bottleneck_block(
    layers: &mut Vec<LayerSpec>,
    name: &str,
    in_ch: usize,
    mid_ch: usize,
    in_size: usize,
    stride: usize,
) {
    let out_ch = mid_ch * 4;
    layers.push(LayerSpec::conv(
        format!("{name}.conv1"),
        Conv2dDims::square(in_ch, mid_ch, in_size, 1, 1, 0),
        Activation::Relu,
    ));
    layers.push(LayerSpec::conv(
        format!("{name}.conv2"),
        Conv2dDims::square(mid_ch, mid_ch, in_size, 3, stride, 1),
        Activation::Relu,
    ));
    let out_size = in_size / stride;
    layers.push(LayerSpec::conv(
        format!("{name}.conv3"),
        Conv2dDims::square(mid_ch, out_ch, out_size, 1, 1, 0),
        Activation::Relu,
    ));
    if stride != 1 || in_ch != out_ch {
        layers.push(LayerSpec::conv(
            format!("{name}.downsample"),
            Conv2dDims::square(in_ch, out_ch, in_size, 1, stride, 0),
            Activation::None,
        ));
    }
}

/// Builds a basic-block ResNet with the given per-stage block counts (ResNet-18/34).
fn basic_resnet(name: &str, blocks: [usize; 4]) -> NetworkSpec {
    let mut layers = Vec::new();
    stem(&mut layers);
    let stage_channels = [64usize, 128, 256, 512];
    let stage_sizes = [56usize, 28, 14, 7];
    let mut in_ch = 64usize;
    for (stage, (&out_ch, &count)) in stage_channels.iter().zip(&blocks).enumerate() {
        for b in 0..count {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            // The block's spatial input: the previous stage's output size, except the
            // first block of a striding stage which reads the larger map.
            let in_size = if stride == 2 {
                stage_sizes[stage] * 2
            } else {
                stage_sizes[stage]
            };
            basic_block(
                &mut layers,
                &format!("layer{}.{b}", stage + 1),
                in_ch,
                out_ch,
                in_size,
                stride,
            );
            in_ch = out_ch;
        }
    }
    layers.push(LayerSpec::linear("fc", 512, 1000, 1, Activation::None));
    NetworkSpec::new(name, layers)
}

/// Builds a bottleneck ResNet with the given per-stage block counts (ResNet-50/101).
fn bottleneck_resnet(name: &str, blocks: [usize; 4]) -> NetworkSpec {
    let mut layers = Vec::new();
    stem(&mut layers);
    let stage_mid = [64usize, 128, 256, 512];
    let stage_sizes = [56usize, 28, 14, 7];
    let mut in_ch = 64usize;
    for (stage, (&mid_ch, &count)) in stage_mid.iter().zip(&blocks).enumerate() {
        for b in 0..count {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            let in_size = if stride == 2 {
                stage_sizes[stage] * 2
            } else {
                stage_sizes[stage]
            };
            bottleneck_block(
                &mut layers,
                &format!("layer{}.{b}", stage + 1),
                in_ch,
                mid_ch,
                in_size,
                stride,
            );
            in_ch = mid_ch * 4;
        }
    }
    layers.push(LayerSpec::linear("fc", 2048, 1000, 1, Activation::None));
    NetworkSpec::new(name, layers)
}

/// ResNet-18: basic blocks [2, 2, 2, 2].
pub fn resnet18() -> NetworkSpec {
    basic_resnet("resnet18", [2, 2, 2, 2])
}

/// ResNet-34: basic blocks [3, 4, 6, 3].
pub fn resnet34() -> NetworkSpec {
    basic_resnet("resnet34", [3, 4, 6, 3])
}

/// ResNet-50: bottleneck blocks [3, 4, 6, 3].
pub fn resnet50() -> NetworkSpec {
    bottleneck_resnet("resnet50", [3, 4, 6, 3])
}

/// ResNet-101: bottleneck blocks [3, 4, 23, 3].
pub fn resnet101() -> NetworkSpec {
    bottleneck_resnet("resnet101", [3, 4, 23, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_totals_match_reference() {
        let net = resnet50();
        // 53 convolutions + 1 FC (the torchvision layer count).
        assert_eq!(net.num_layers(), 54);
        // ~4.1 GMACs and ~25.5 M parameters for ImageNet ResNet-50.
        let gmacs = net.total_dense_macs(1) as f64 / 1e9;
        assert!((3.7..4.4).contains(&gmacs), "GMACs {gmacs}");
        let mparams = net.total_weight_params() as f64 / 1e6;
        assert!((22.0..26.5).contains(&mparams), "Mparams {mparams}");
    }

    #[test]
    fn resnet18_and_34_totals() {
        let r18 = resnet18();
        let r34 = resnet34();
        // 1.8 GMACs / 11.2 M params and 3.6 GMACs / 21.3 M params respectively
        // (conv + fc only).
        let g18 = r18.total_dense_macs(1) as f64 / 1e9;
        let g34 = r34.total_dense_macs(1) as f64 / 1e9;
        assert!((1.6..2.0).contains(&g18), "resnet18 GMACs {g18}");
        assert!((3.3..3.9).contains(&g34), "resnet34 GMACs {g34}");
        assert!(r34.num_layers() > r18.num_layers());
        // ResNet-18: stem + 16 block convs + 3 downsample convs + fc.
        assert_eq!(r18.num_layers(), 1 + 16 + 3 + 1);
        // ResNet-34: stem + 32 block convs + 3 downsample convs + fc.
        assert_eq!(r34.num_layers(), 1 + 32 + 3 + 1);
    }

    #[test]
    fn resnet101_is_deeper_than_resnet50() {
        let r50 = resnet50();
        let r101 = resnet101();
        assert!(r101.num_layers() > r50.num_layers());
        assert!(r101.total_dense_macs(1) > r50.total_dense_macs(1));
        let gmacs = r101.total_dense_macs(1) as f64 / 1e9;
        assert!((7.0..8.2).contains(&gmacs), "resnet101 GMACs {gmacs}");
    }

    #[test]
    fn table4_layers_exist_in_resnet50() {
        let net = resnet50();
        // Paper Table 4 representative ResNet-50 GEMMs.
        let has = |m: usize, n: usize, k: usize| net.iter().any(|l| l.gemm_dims(1) == (m, n, k));
        assert!(has(784, 128, 1152), "L1 M784-N128-K1152 missing");
        assert!(has(3136, 64, 576), "L2 M3136-N64-K576 missing");
        assert!(has(196, 256, 2304), "L3 M196-N256-K2304 missing");
    }

    #[test]
    fn every_conv_follows_relu_except_downsample_and_fc() {
        let net = resnet50();
        for layer in &net {
            if layer.name.contains("downsample") || layer.name == "fc" {
                assert_eq!(layer.activation, Activation::None);
            } else {
                assert_eq!(layer.activation, Activation::Relu, "layer {}", layer.name);
            }
        }
        assert!(net.has_relu_activations());
    }

    #[test]
    fn spatial_sizes_chain_consistently() {
        // The output pixel count of each stage's last conv matches the next stage's input.
        let net = resnet50();
        let l2 = net.layer("layer2.0.conv2").unwrap();
        let (m, _, _) = l2.gemm_dims(1);
        assert_eq!(m, 28 * 28);
        let l4 = net.layer("layer4.2.conv3").unwrap();
        assert_eq!(l4.gemm_dims(1).0, 7 * 7);
    }
}

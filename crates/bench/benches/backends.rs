//! Backend comparison on a 512×512×512 GEMM at 50% and 90% sparsity.
//!
//! This bench grounds the execution engine's backend-choice heuristic
//! (`tasd::engine::DEFAULT_DENSE_DENSITY_THRESHOLD`, parallelism thresholds) in measured
//! numbers, and carries the PR's performance gate: `parallel(dense)` must beat the scalar
//! reference `gemm` by ≥2× wall-clock on a multi-core runner.
//!
//! Run with: `cargo bench --bench backends`

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tasd::{ExecutionEngine, TasdConfig};
use tasd_tensor::backend::{CsrBackend, DenseBackend, GemmBackend, NmBackend, ParallelBackend};
use tasd_tensor::{gemm, CsrMatrix, Matrix, MatrixGenerator, NmCompressed, NmPattern};

const SIZE: usize = 512;

fn bench_backends_at(c: &mut Criterion, sparsity: f64) {
    let mut group = c.benchmark_group(format!("backends_512_s{:02.0}", sparsity * 100.0));
    group.sample_size(10);

    let mut gen = MatrixGenerator::seeded(0x5EED);
    let a = gen.sparse_normal(SIZE, SIZE, sparsity);
    let b = gen.normal(SIZE, SIZE, 0.0, 1.0);
    let csr = CsrMatrix::from_dense(&a);
    // Structured operand: the 4:8 view of `a` (content differs from `a`; this measures
    // the native compressed kernel's throughput at the same logical shape).
    let pattern = NmPattern::new(4, 8).unwrap();
    let nm = NmCompressed::from_dense(&a, pattern).unwrap();

    // The PR's reference point: the seed's scalar i-k-j kernel.
    group.bench_function("scalar_gemm_reference", |bench| {
        bench.iter(|| gemm(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap());
    });

    let dense = DenseBackend::default();
    group.bench_function("dense_blocked", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(SIZE, SIZE);
            dense
                .gemm_into(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });

    let csr_backend = CsrBackend;
    group.bench_function("csr", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(SIZE, SIZE);
            csr_backend
                .gemm_into(
                    std::hint::black_box(&csr),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });

    // The planner's hot path for dense-storage activations below the density threshold:
    // CsrBackend over a dense Matrix operand runs the generic entry-iteration fallback,
    // so its cost is measured here and not assumed equal to the native CSR kernel.
    group.bench_function("csr_on_dense_operand", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(SIZE, SIZE);
            csr_backend
                .gemm_into(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });

    let nm_backend = NmBackend;
    group.bench_function("nm_4_8", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(SIZE, SIZE);
            nm_backend
                .gemm_into(
                    std::hint::black_box(&nm),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });

    let parallel_dense = ParallelBackend::default();
    group.bench_function("parallel_dense", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(SIZE, SIZE);
            parallel_dense
                .gemm_into(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });

    let parallel_csr = ParallelBackend::over(Arc::new(CsrBackend));
    group.bench_function("parallel_csr", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(SIZE, SIZE);
            parallel_csr
                .gemm_into(
                    std::hint::black_box(&csr),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });

    // The engine's automatic path end-to-end: planned backends over a lossless two-term
    // series (4:8+4:8 covers every element, so the math matches the dense GEMM).
    let engine = ExecutionEngine::builder().build();
    let series = engine.decompose(&a, &TasdConfig::parse("4:8+4:8").unwrap());
    group.bench_function("engine_series_4_8x2", |bench| {
        bench.iter(|| {
            engine
                .series_gemm(std::hint::black_box(&series), std::hint::black_box(&b))
                .unwrap()
        });
    });

    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    for sparsity in [0.5, 0.9] {
        bench_backends_at(c, sparsity);
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);

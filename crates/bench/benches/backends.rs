//! Backend comparison on a 512×512×512 GEMM at 50% and 90% sparsity, plus the per-term
//! kernel sweep that populates the engine's `BackendTable`.
//!
//! This bench grounds the execution engine's backend-choice lookup
//! (`tasd::BackendTable::measured`, parallelism thresholds) in measured numbers. Two
//! sections:
//!
//! * **whole-operand kernels** — the original comparison: scalar reference, blocked
//!   dense, CSR, N:M, and parallel variants on the same 512³ GEMM;
//! * **term kernels** — the prepared-operand question: take an actual decomposed TASD
//!   term (2:8 of a 50%/90%-sparse operand) and execute the *same content* through the
//!   native N:M kernel, the CSR kernel (CSR-packed), and the blocked dense kernel
//!   (dense-packed). The winner per (density, shape) bucket is what
//!   `BackendTable::measured` encodes — e.g. CSR-packing wins ~1.25× at density ≈ 0.10
//!   on serving-sized terms, while mid-density terms stay N:M.
//!
//! Every measurement is recorded to `BENCH_backends.json` at the repository root
//! (`{name, config, ns_per_iter}`, plus `gflops` computed from the *effectual* flop
//! count `2 · nnz · n_cols` for the single-kernel entries), so planner constants can be
//! re-derived on new hardware — and kernel throughput tracked across PRs — by re-running
//! this bench.
//!
//! Run with: `cargo bench --bench backends` (append `-- --test` for the smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tasd::{ExecutionEngine, TasdConfig};
use tasd_bench::bench_json::BenchRecorder;
use tasd_tensor::backend::{
    CsrBackend, DenseBackend, GemmBackend, GemmOperand, NmBackend, ParallelBackend,
};
use tasd_tensor::{gemm, CsrMatrix, Matrix, MatrixGenerator, NmCompressed, NmPattern};

const SIZE: usize = 512;

/// One kernel execution into a reused, re-zeroed output buffer. Reusing `c` keeps every
/// kernel entry's working set at the same addresses — fresh per-iteration allocations
/// land on different pages depending on how much heap churn preceded the entry, which
/// skews cross-kernel comparisons by more than the margins the planner tables care
/// about (the memset is identical work for every entry, so ratios stay comparable).
fn run_backend(backend: &dyn GemmBackend, a: &dyn GemmOperand, b: &Matrix, c: &mut Matrix) {
    let rows = a.shape().0;
    c.rows_slice_mut(0, rows).fill(0.0);
    backend
        .gemm_into(std::hint::black_box(a), std::hint::black_box(b), c)
        .unwrap();
    std::hint::black_box(&*c);
}

fn bench_whole_operand(rec: &mut BenchRecorder, sparsity: f64) {
    let label = format!("512x512x512 s{:02.0}", sparsity * 100.0);

    let mut gen = MatrixGenerator::seeded(0x5EED);
    let a = gen.sparse_normal(SIZE, SIZE, sparsity);
    let b = gen.normal(SIZE, SIZE, 0.0, 1.0);
    let csr = CsrMatrix::from_dense(&a);
    // Structured operand: the 4:8 view of `a` (content differs from `a`; this measures
    // the native compressed kernel's throughput at the same logical shape).
    let pattern = NmPattern::new(4, 8).unwrap();
    let nm = NmCompressed::from_dense(&a, pattern).unwrap();

    // Effectual work: skipped zeros are not useful flops, so throughput is comparable
    // across sparsity levels.
    let flops = 2 * GemmOperand::nnz(&a) as u64 * b.cols() as u64;
    let nm_flops = 2 * GemmOperand::nnz(&nm) as u64 * b.cols() as u64;

    // One output buffer shared by every kernel entry below (see `run_backend`).
    let mut c = Matrix::zeros(SIZE, SIZE);

    // The seed's scalar i-k-j kernel, as the fixed reference point.
    rec.measure_flops("scalar_gemm_reference", &label, flops, || {
        gemm(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap()
    });
    let dense = DenseBackend::default();
    rec.measure_flops("dense_blocked", &label, flops, || {
        run_backend(&dense, &a, &b, &mut c)
    });
    let csr_backend = CsrBackend::default();
    rec.measure_flops("csr", &label, flops, || {
        run_backend(&csr_backend, &csr, &b, &mut c)
    });
    // The generic entry-iteration fallback (CSR backend over dense storage): the cost
    // prepared execution avoids — measured, not assumed.
    rec.measure_flops("csr_on_dense_operand", &label, flops, || {
        run_backend(&csr_backend, &a, &b, &mut c)
    });
    let nm_backend = NmBackend::default();
    rec.measure_flops("nm_4_8", &label, nm_flops, || {
        run_backend(&nm_backend, &nm, &b, &mut c)
    });
    let parallel_dense = ParallelBackend::default();
    rec.measure_flops("parallel_dense", &label, flops, || {
        run_backend(&parallel_dense, &a, &b, &mut c)
    });
    let parallel_csr = ParallelBackend::over(Arc::new(CsrBackend::default()));
    rec.measure_flops("parallel_csr", &label, flops, || {
        run_backend(&parallel_csr, &csr, &b, &mut c)
    });

    // The engine's automatic path end-to-end: planned backends over a lossless two-term
    // series (4:8+4:8 covers every element, so the math matches the dense GEMM).
    let engine = ExecutionEngine::builder().build();
    let prepared = engine.prepare(&a, &TasdConfig::parse("4:8+4:8").unwrap());
    rec.measure("engine_series_4_8x2", &label, || {
        engine
            .series_gemm_prepared(std::hint::black_box(&prepared), std::hint::black_box(&b))
            .unwrap()
    });
}

/// The prepared-term sweep: one decomposed TASD term, three packings, same content —
/// the measurement `BackendTable::measured` is populated from.
fn bench_term_kernels(rec: &mut BenchRecorder, sparsity: f64, m: usize, k: usize, n_cols: usize) {
    let mut gen = MatrixGenerator::seeded(0x7E21);
    let a = gen.sparse_normal(m, k, sparsity);
    let b = gen.normal(k, n_cols, 0.0, 1.0);
    // The first term of the serving config: what the engine actually executes.
    let term = tasd::decompose(&a, &TasdConfig::parse("2:8").unwrap())
        .terms()
        .first()
        .expect("non-empty decomposition")
        .clone();
    let density = GemmOperand::density(&term);
    let label = format!(
        "term {m}x{k} n={n_cols} density={density:.3} (from s{:02.0} 2:8)",
        sparsity * 100.0
    );

    let flops = 2 * GemmOperand::nnz(&term) as u64 * n_cols as u64;
    let mut c = Matrix::zeros(m, n_cols);
    let nm_backend = NmBackend::default();
    let t_nm = rec.measure_flops("term_nm_native", &label, flops, || {
        run_backend(&nm_backend, &term, &b, &mut c)
    });
    let csr_packed = term.to_csr();
    let csr_backend = CsrBackend::default();
    let t_csr = rec.measure_flops("term_csr_packed", &label, flops, || {
        run_backend(&csr_backend, &csr_packed, &b, &mut c)
    });
    let dense_packed = term.to_dense();
    let dense_backend = DenseBackend::default();
    rec.measure_flops("term_dense_packed", &label, flops, || {
        run_backend(&dense_backend, &dense_packed, &b, &mut c)
    });
    println!(
        "  -> csr/nm speedup at density {density:.3}: {:.2}x",
        t_nm.as_secs_f64() / t_csr.as_secs_f64()
    );
}

fn bench_backends(c: &mut Criterion) {
    let mut rec = BenchRecorder::new("backends", 10);
    for sparsity in [0.5, 0.9] {
        bench_whole_operand(&mut rec, sparsity);
    }
    // Term sweep on the serving geometry (256×512, the serving bench's operand) and the
    // square 512³ shape, at the low- and mid-density regimes the table distinguishes.
    for sparsity in [0.9, 0.5] {
        bench_term_kernels(&mut rec, sparsity, 256, 512, 256);
        bench_term_kernels(&mut rec, sparsity, SIZE, SIZE, SIZE);
    }
    rec.write().expect("BENCH_backends.json must be writable");
    let _ = c; // criterion harness entry kept for CLI compatibility (`-- --test`).
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);

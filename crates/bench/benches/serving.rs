//! Batched serving vs one-at-a-time execution, and the prepared-operand hot path.
//!
//! Measures `ExecutionEngine::submit` against a per-request loop on the same workload —
//! many narrow right-hand panels (one per "request") against one shared sparse operand —
//! at 3 batch sizes × 2 sparsities, plus the *warm* (cache-hit) serving path against a
//! faithful reconstruction of the pre-prepared-operand engine (the PR 2 baseline:
//! rescan + re-cost + raw-format term execution per call).
//!
//! Every measurement is recorded to `BENCH_serving.json` at the repository root
//! (`{name, config, ns_per_iter}`), so the serving-path performance trajectory is
//! tracked across PRs.
//!
//! The bench also carries the PR's acceptance gates, run before the timing groups:
//!
//! 1. a cold batch of 32 requests sharing one decomposed operand performs exactly one
//!    decomposition (cache telemetry);
//! 2. a warm batch performs zero decompositions, zero format conversions, zero replans,
//!    and zero operand rescans (prepared-execution telemetry);
//! 3. `submit` results are bitwise identical to the per-request raw-series reference;
//! 4. the warm prepared path beats the PR 2 baseline reconstruction by ≥ 1.5×
//!    wall-clock (skipped under `cargo bench -- --test` quick mode, where one-shot
//!    timings are meaningless — gates 1–3 still run, so CI smoke keeps the bench and
//!    the contracts honest without failing on runner speed);
//! 5. the **sharded** submit path ([`sharded_gate`]): bitwise identity to the unsharded
//!    engine on a 512-row operand, and the per-shard warm-cache contract (zero
//!    conversions / replans / rescans, one cache hit per shard). Sharded-vs-unsharded
//!    ns/iter is recorded into `BENCH_serving.json` (`submit_sharded/*`), not gated —
//!    shard parallelism is a multi-core win and CI runs on one core;
//! 6. the **async serving** micro-batch window ([`serving_window_gate`]): a window of 2
//!    ticks coalesces ≥ 2 late arrivals into one decomposition (≥ 1 fewer than the same
//!    requests submitted individually), bitwise identical to per-request execution, and
//!    `ServingEngine::submit` answers exactly like `ExecutionEngine::submit`. Warm
//!    window-vs-per-request ns/iter is recorded as `serving_async/*`;
//! 7. the **overload** path ([`measure_overload`]): a capacity-bounded session with
//!    `ShedExpiredFirst` absorbing a flood of already-expired requests resolves every
//!    flooded handle `DeadlineExceeded`, answers the in-budget batch bitwise
//!    identically to the no-overload path, and (timing gate, skipped in `-- --test`
//!    quick mode) costs the in-budget requests ≤ 10% over the same session's
//!    no-overload warm window path. Both sides are recorded as `serving_overload/*`;
//! 8. the **deploy** path ([`measure_serving_deploy`]): steady-state generation swaps
//!    (`serving_deploy/swap` — pushes whose dirty shard is already cached), warm vs
//!    cold restart (`serving_deploy/restart_{warm,cold}` — the warm side loads a
//!    prepared-cache snapshot and must re-register with **zero** decompositions,
//!    asserted every rep), and resolve+enqueue p99 while a pusher thread deploys
//!    continuously vs steady state (`serving_deploy/enqueue_p99/*`), gated ≤ 1.10×
//!    (timing gate skipped in `-- --test` quick mode) — a deploy may not meaningfully
//!    stall the enqueue path.
//!
//! Run with: `cargo bench --bench serving` (append `-- --test` for the smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasd::{
    load_snapshot, save_snapshot, BatchRequest, Clock, ExecutionEngine, MockClock, OverloadPolicy,
    ServingEngine, ServingError, ShardPolicy, TasdConfig, WeightStore,
};
use tasd_bench::bench_json::{quick_mode, BenchRecorder};
use tasd_tensor::backend::{pack_panels, unpack_panels};
use tasd_tensor::{Matrix, MatrixGenerator};

/// Operand geometry: a serving-sized weight (256×512) against 8-column request panels.
const M: usize = 256;
const K: usize = 512;
const PANEL_COLS: usize = 8;

fn workload(sparsity: f64, batch: usize) -> (Arc<Matrix>, Vec<Matrix>, TasdConfig) {
    let mut gen = MatrixGenerator::seeded(0x5E11);
    let a = Arc::new(gen.sparse_normal(M, K, sparsity));
    let panels = (0..batch)
        .map(|_| gen.normal(K, PANEL_COLS, 0.0, 1.0))
        .collect();
    (a, panels, TasdConfig::parse("2:8+1:8").unwrap())
}

fn requests(a: &Arc<Matrix>, panels: &[Matrix], cfg: &TasdConfig) -> Vec<BatchRequest> {
    panels
        .iter()
        .map(|b| BatchRequest::decomposed(Arc::clone(a), cfg.clone(), b.clone()))
        .collect()
}

fn config_label(sparsity: f64, batch: usize) -> String {
    format!(
        "s{:02.0} {M}x{K} batch={batch} panels={PANEL_COLS} cfg=2:8+1:8",
        sparsity * 100.0
    )
}

fn bench_serving(_c: &mut Criterion) {
    let mut rec = BenchRecorder::new("serving", 10);
    for sparsity in [0.5, 0.9] {
        for batch in [4usize, 16, 32] {
            let (a, panels, cfg) = workload(sparsity, batch);
            // Warm the prepared cache so both sides measure steady-state serving; the
            // cold-decomposition contrast is what the acceptance gate measures.
            let engine = ExecutionEngine::builder().build();
            let _ = engine.prepare_shared(&a, &cfg);

            let label = config_label(sparsity, batch);
            rec.measure(&format!("submit_batched/{batch}"), &label, || {
                let responses = engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)));
                assert!(responses.iter().all(|r| r.output.is_ok()));
                responses
            });
            rec.measure(&format!("one_at_a_time/{batch}"), &label, || {
                panels
                    .iter()
                    .map(|b| {
                        engine
                            .decompose_gemm(std::hint::black_box(&a), &cfg, std::hint::black_box(b))
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            });
        }
    }
    measure_sharded(&mut rec);
    measure_serving_async(&mut rec);
    measure_overload(&mut rec);
    measure_serving_net(&mut rec);
    measure_serving_deploy(&mut rec);
    rec.write().expect("BENCH_serving.json must be writable");
}

/// Best-of-`reps` wall-clock of `f` (de-noises single-core CI runners).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one rep")
}

/// PR 2's content fingerprint: byte-serial FNV-1a over every element (replaced in this
/// PR by a word-wise multi-lane hash *and* a per-allocation memo). The scan was part of
/// every warm `submit` call's cost, so the baseline must pay it too.
fn pr2_fnv1a_fingerprint(a: &Matrix) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(a.rows() as u64);
    mix(a.cols() as u64);
    for &x in a.as_slice() {
        mix(x.to_bits() as u64);
    }
    h
}

/// The PR 2 warm serving path, reconstructed from public APIs: per call it rescans the
/// operand (byte-serial FNV-1a fingerprint + non-zero count), re-costs every request
/// with shape-only plans, packs the panels, executes the **raw** series (terms in their
/// stored N:M format through per-call planning), and unpacks. This is what `submit` did
/// before prepared operands; keeping it executable is what makes the ≥ 1.5× gate a
/// measurement instead of a changelog claim.
fn pr2_baseline_submit(
    engine: &ExecutionEngine,
    series: &tasd::TasdSeries,
    a: &Matrix,
    panels: &[Matrix],
    cfg: &TasdConfig,
) -> Vec<Matrix> {
    let _fingerprint = std::hint::black_box(pr2_fnv1a_fingerprint(a));
    let nnz = a.count_nonzeros();
    let density = nnz as f64 / a.len() as f64;
    let mut cost_acc = 0u64;
    for b in panels {
        cost_acc = cost_acc.wrapping_add(
            engine
                .plan_dims(a.rows(), a.cols(), b.cols(), density, Some(cfg))
                .estimated_macs(),
        );
    }
    std::hint::black_box(cost_acc);
    let panel_refs: Vec<&Matrix> = panels.iter().collect();
    let wide_b = pack_panels(&panel_refs).expect("panels share the operand width");
    let wide_c = engine
        .series_gemm(series, &wide_b)
        .expect("consistent shapes");
    let widths: Vec<usize> = panels.iter().map(Matrix::cols).collect();
    unpack_panels(&wide_c, &widths)
}

/// The PR's acceptance gates (panic on regression); see the module docs for the list.
fn acceptance_gate(_c: &mut Criterion) {
    const BATCH: usize = 32;
    let (a, panels, cfg) = workload(0.9, BATCH);

    // -- Gate 1: exactly one decomposition per cold shared-operand batch. --------------
    let engine = ExecutionEngine::builder().build();
    let (responses, telemetry) = engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    assert!(responses.iter().all(|r| r.output.is_ok()));
    assert_eq!(telemetry.groups.len(), 1, "one shared operand, one group");
    assert_eq!(
        telemetry.decompositions, 1,
        "a batch of {BATCH} requests sharing one operand must decompose exactly once"
    );
    assert_eq!(telemetry.cache_misses, 1);
    assert!(telemetry.bytes_resident > 0);
    let cold = engine.prep_stats();
    assert!(
        cold.conversions > 0,
        "the 90%-sparse terms must have been packed into a faster format"
    );

    // -- Gate 2: a warm batch performs zero decompositions / conversions / replans / ---
    // -- rescans (the prepare-once / execute-many contract, measured not asserted). ----
    let (warm_responses, warm_telemetry) =
        engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    let warm = engine.prep_stats();
    assert_eq!(
        warm_telemetry.decompositions, 0,
        "warm batch must not decompose"
    );
    assert!(warm_telemetry.groups[0].cache_hit);
    assert_eq!(
        warm.conversions, cold.conversions,
        "warm batch must not convert"
    );
    assert_eq!(
        warm.plans_computed, cold.plans_computed,
        "warm batch must not replan"
    );
    assert_eq!(
        warm.fingerprint_scans, cold.fingerprint_scans,
        "warm batch must not rescan the shared operand"
    );

    // -- Gate 3: submit ≡ per-request raw-series reference, bitwise. -------------------
    let series = engine.decompose(&a, &cfg);
    for (resp, b) in warm_responses.iter().zip(&panels) {
        let reference = engine.series_gemm(&series, b).unwrap();
        assert_eq!(
            resp.output.as_ref().unwrap(),
            &reference,
            "prepared submit must be bitwise identical to the raw per-request path"
        );
    }

    // -- Gate 4: warm prepared path ≥ 1.5× over the PR 2 baseline reconstruction. ------
    if quick_mode() {
        println!("serving acceptance gate: quick (--test) mode, timing gate skipped");
        return;
    }
    let prepared = best_of(7, || {
        let responses = engine.submit(requests(&a, &panels, &cfg));
        assert!(responses.iter().all(|r| r.output.is_ok()));
    });
    let baseline = best_of(7, || {
        let outs = pr2_baseline_submit(&engine, &series, &a, &panels, &cfg);
        assert_eq!(outs.len(), BATCH);
    });
    let speedup = baseline.as_secs_f64() / prepared.as_secs_f64();
    println!(
        "serving acceptance gate: warm prepared {prepared:?} vs PR 2 baseline {baseline:?} \
         ({speedup:.2}x) on {BATCH} shared-operand requests"
    );
    assert!(
        speedup >= 1.5,
        "warm prepared submit ({prepared:?}) must be >= 1.5x faster than the PR 2 \
         baseline ({baseline:?}); measured {speedup:.2}x"
    );
}

/// Sharded serving: the row-sharded `submit` path against the unsharded path on the
/// same oversized operand.
///
/// Correctness gates (always run, including `-- --test` smoke mode):
///
/// 1. sharded responses are **bitwise identical** to the unsharded engine's;
/// 2. a warm sharded batch performs zero conversions, zero replans, zero rescans, and
///    exactly one decomposition-cache hit per shard.
///
/// Timing is recorded to `BENCH_serving.json` by [`measure_sharded`] (`submit_sharded/*`
/// vs `submit_unsharded/*`) and printed as a ratio rather than gated: shard-level
/// parallelism only pays on multi-core hosts, and the 1-CPU CI container would make a
/// wall-clock gate a coin flip. The cross-PR trajectory file is the record.
/// The sharded workload + engine pair shared by [`sharded_gate`] and
/// [`measure_sharded`], so the gate always validates exactly the configuration the
/// trajectory records: a 512×256 90%-sparse operand, 8 requests, 4 nnz-balanced shards.
const SHARDED_ROWS: usize = 512;
const SHARDED_COLS: usize = 256;
const SHARDED_BATCH: usize = 8;
const SHARDS: usize = 4;

#[allow(clippy::type_complexity)]
fn sharded_workload() -> (
    Arc<Matrix>,
    Vec<Matrix>,
    TasdConfig,
    ExecutionEngine,
    ExecutionEngine,
) {
    let mut gen = MatrixGenerator::seeded(0x5AAD);
    let a = Arc::new(gen.sparse_normal(SHARDED_ROWS, SHARDED_COLS, 0.9));
    let panels = (0..SHARDED_BATCH)
        .map(|_| gen.normal(SHARDED_COLS, PANEL_COLS, 0.0, 1.0))
        .collect();
    let cfg = TasdConfig::parse("2:8+1:8").unwrap();
    let sharded_engine = ExecutionEngine::builder()
        .shard_policy(ShardPolicy::NnzBalanced(SHARDS))
        .shard_min_rows(SHARDED_ROWS / 2)
        .build();
    let plain_engine = ExecutionEngine::builder().build();
    (a, panels, cfg, sharded_engine, plain_engine)
}

fn sharded_gate(_c: &mut Criterion) {
    let (a, panels, cfg, sharded_engine, plain_engine) = sharded_workload();

    // -- Gate 1: bitwise identity, cold and warm. --------------------------------------
    for round in 0..2 {
        let sharded = sharded_engine.submit(requests(&a, &panels, &cfg));
        let plain = plain_engine.submit(requests(&a, &panels, &cfg));
        for (s, p) in sharded.iter().zip(&plain) {
            assert_eq!(
                s.output.as_ref().unwrap(),
                p.output.as_ref().unwrap(),
                "sharded submit must be bitwise identical to unsharded (round {round})"
            );
        }
    }

    // -- Gate 2: warm sharded batches keep the prepare-once contract per shard. --------
    let before = sharded_engine.prep_stats();
    let hits_before = sharded_engine.cache_stats().hits;
    let (responses, telemetry) = sharded_engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    assert!(responses.iter().all(|r| r.output.is_ok()));
    let after = sharded_engine.prep_stats();
    assert_eq!(telemetry.decompositions, 0, "warm sharded batch decomposed");
    assert_eq!(
        after.conversions, before.conversions,
        "warm batch converted"
    );
    assert_eq!(
        after.plans_computed, before.plans_computed,
        "warm replanned"
    );
    assert_eq!(
        after.fingerprint_scans, before.fingerprint_scans,
        "warm batch rescanned the operand"
    );
    assert_eq!(
        sharded_engine.cache_stats().hits,
        hits_before + SHARDS as u64,
        "a warm sharded batch takes one cache hit per shard"
    );

    println!("sharded gate: bitwise identity + per-shard warm-cache contract verified");
}

/// Sharded-vs-unsharded timing on the oversized operand, recorded into the shared
/// `BENCH_serving.json` trajectory by [`bench_serving`]'s recorder.
fn measure_sharded(rec: &mut BenchRecorder) {
    let (a, panels, cfg, sharded_engine, plain_engine) = sharded_workload();
    // Warm both caches: the trajectory tracks steady-state serving.
    let _ = sharded_engine.submit(requests(&a, &panels, &cfg));
    let _ = plain_engine.submit(requests(&a, &panels, &cfg));
    let label = format!(
        "s90 {SHARDED_ROWS}x{SHARDED_COLS} batch={SHARDED_BATCH} panels={PANEL_COLS} \
         shards={SHARDS} cfg=2:8+1:8"
    );
    let sharded_t = rec.measure(&format!("submit_sharded/{SHARDED_BATCH}"), &label, || {
        sharded_engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)))
    });
    let unsharded_t = rec.measure(&format!("submit_unsharded/{SHARDED_BATCH}"), &label, || {
        plain_engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)))
    });
    if !quick_mode() {
        println!(
            "sharded serving: warm sharded {sharded_t:?} vs unsharded {unsharded_t:?} \
             ({:.2}x) on {SHARDED_BATCH} requests over a {SHARDED_ROWS}x{SHARDED_COLS} \
             operand, {} worker(s)",
            unsharded_t.as_secs_f64() / sharded_t.as_secs_f64(),
            tasd_bench::testing::available_parallelism(),
        );
    }
}

/// The async-serving micro-batch window gate (always run, including `-- --test` smoke):
///
/// 1. a **window of 2 ticks coalesces late arrivals**: on a cache-less engine (so the
///    decomposition count measures coalescing directly), one enqueue + one tick + two
///    late enqueues + one tick dispatch as **one** window performing **one**
///    decomposition, where the same three requests submitted individually perform
///    three — the window saves ≥ 1 decomposition, the acceptance criterion;
/// 2. window outputs are **bitwise identical** to individual per-request `submit`s;
/// 3. `ServingEngine::submit` (the back-compat wrapper) answers bitwise identically to
///    `ExecutionEngine::submit` with the same window telemetry shape.
fn serving_window_gate(_c: &mut Criterion) {
    let (a, panels, cfg) = workload(0.9, 8);

    // -- Gate 1 + 2: the coalescing window vs individual submits. ----------------------
    let engine = Arc::new(ExecutionEngine::builder().cache_capacity(0).build());
    let serving = ServingEngine::over(Arc::clone(&engine))
        .with_max_wait(2)
        .with_max_batch(64);
    let h0 = serving.enqueue(BatchRequest::decomposed(
        Arc::clone(&a),
        cfg.clone(),
        panels[0].clone(),
    ));
    assert!(!serving.tick(), "1 of 2 ticks: the window must stay open");
    let late: Vec<_> = panels[1..3]
        .iter()
        .map(|b| {
            serving.enqueue(BatchRequest::decomposed(
                Arc::clone(&a),
                cfg.clone(),
                b.clone(),
            ))
        })
        .collect();
    assert!(serving.tick(), "2 of 2 ticks: the window must dispatch");
    let window_decompositions = engine.prep_stats().prepares;
    assert_eq!(
        window_decompositions, 1,
        "a 2-tick window must coalesce 3 requests into one decomposition"
    );
    let mut outs = vec![h0.wait()];
    outs.extend(late.into_iter().map(|h| h.wait()));
    assert_eq!(serving.stats().coalesced_windows, 1);

    let individual_engine = ExecutionEngine::builder().cache_capacity(0).build();
    for (out, b) in outs.iter().zip(&panels) {
        let reference = individual_engine.submit(vec![BatchRequest::decomposed(
            Arc::clone(&a),
            cfg.clone(),
            b.clone(),
        )]);
        assert_eq!(
            out.output.as_ref().unwrap(),
            reference[0].output.as_ref().unwrap(),
            "window outputs must be bitwise identical to per-request submits"
        );
    }
    let individual_decompositions = individual_engine.prep_stats().prepares;
    assert!(
        window_decompositions < individual_decompositions,
        "the micro-batch window must save at least one decomposition \
         ({window_decompositions} vs {individual_decompositions})"
    );

    // -- Gate 3: the back-compat submit wrapper. ---------------------------------------
    let engine = Arc::new(ExecutionEngine::builder().build());
    let serving = ServingEngine::over(Arc::clone(&engine));
    let (via_session, session_telemetry) =
        serving.submit_with_telemetry(requests(&a, &panels, &cfg));
    let (via_engine, engine_telemetry) = engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    for (s, e) in via_session.iter().zip(&via_engine) {
        assert_eq!(
            s.output.as_ref().unwrap(),
            e.output.as_ref().unwrap(),
            "ServingEngine::submit must be bitwise identical to ExecutionEngine::submit"
        );
    }
    assert_eq!(session_telemetry.requests, engine_telemetry.requests);
    assert_eq!(
        session_telemetry.groups.len(),
        engine_telemetry.groups.len()
    );

    println!(
        "serving window gate: 2-tick coalescing + bitwise + submit-wrapper contracts verified"
    );
}

/// Warm async serving (one coalesced micro-batch window) vs warm per-request `submit`
/// loops, recorded into `BENCH_serving.json` (`serving_async/*`) for the cross-PR
/// trajectory.
fn measure_serving_async(rec: &mut BenchRecorder) {
    const BATCH: usize = 32;
    let (a, panels, cfg) = workload(0.9, BATCH);
    let engine = Arc::new(ExecutionEngine::builder().build());
    let serving = ServingEngine::over(Arc::clone(&engine)).with_max_batch(BATCH);
    let _ = engine.prepare_shared(&a, &cfg); // steady-state serving on both sides
    let label = config_label(0.9, BATCH);
    rec.measure(&format!("serving_async/window/{BATCH}"), &label, || {
        let handles: Vec<_> = requests(&a, &panels, &cfg)
            .into_iter()
            .map(|r| serving.enqueue(r))
            .collect();
        serving.flush();
        handles
            .into_iter()
            .map(|h| h.wait().output.expect("well-shaped"))
            .collect::<Vec<_>>()
    });
    rec.measure(
        &format!("serving_async/per_request/{BATCH}"),
        &label,
        || {
            requests(&a, &panels, &cfg)
                .into_iter()
                .map(|r| {
                    engine
                        .submit(vec![r])
                        .pop()
                        .expect("one response")
                        .output
                        .expect("well-shaped")
                })
                .collect::<Vec<_>>()
        },
    );
}

/// Overload behavior under admission control: a capacity-bounded session running
/// [`OverloadPolicy::ShedExpiredFirst`] absorbs a flood of already-expired requests
/// while an in-budget batch lands in the same window; the **same session** runs the
/// identical in-budget workload with an empty queue as the no-overload baseline,
/// interleaved rep by rep. Both sides are recorded into `BENCH_serving.json`
/// (`serving_overload/{no_overload,shed}`).
///
/// Correctness gates (always run, including `-- --test` smoke mode):
///
/// 1. every flooded (expired) handle resolves [`ServingError::DeadlineExceeded`] —
///    shedding *answers* handles, it never drops one on the floor;
/// 2. in-budget responses under shed are **bitwise identical** to the engine's
///    direct no-overload `submit` on the same requests;
/// 3. the session's shed accounting is exact: only expired requests were shed, and
///    the whole flood was.
///
/// Timing gate (skipped in quick mode, like the warm-path gate): the shed path's
/// in-budget latency — shedding at admission, the executed window, and waking the
/// waiters all included — stays within 1.10× of the no-overload warm path on the
/// same session: handling overload may cost the requests still in budget at most 10%.
fn measure_overload(rec: &mut BenchRecorder) {
    const BATCH: usize = 32;
    let (a, panels, cfg) = workload(0.9, BATCH);
    let label = config_label(0.9, BATCH);

    let reps = if quick_mode() { 1 } else { 10 };

    // One capacity-bounded session serves both sides of the comparison: the same
    // engine, allocator state, and dispatch path time the in-budget batch with an
    // empty queue (no overload) and under a full expired flood (shed), interleaved
    // rep by rep so machine noise hits both sides equally. (Separate engine instances
    // differ by far more than the 10% budget on window-execution time alone — the
    // gate must isolate what *overload handling* adds, not allocator layout luck.)
    //
    // Request construction (panel clones) stays outside the timers on both sides: the
    // gate compares what the session costs an in-budget request, not what the client
    // pays to build one. The flood also *arrives* before the shed timer starts — it
    // is the pre-existing overload state — while shedding it, admitting the in-budget
    // batch, executing the window, and waking the waiters are all timed.
    let clock = Arc::new(MockClock::new());
    clock.set(Duration::from_secs(1_000));
    let engine = Arc::new(ExecutionEngine::builder().build());
    let _ = engine.prepare_shared(&a, &cfg);
    let serving = ServingEngine::over_with_clock(Arc::clone(&engine), clock as Arc<dyn Clock>)
        // Admission (the capacity bound), not window size, must close the window: at
        // 2×BATCH the flood alone can never trigger an early dispatch.
        .with_max_batch(2 * BATCH)
        .with_queue_capacity(BATCH)
        .with_overload_policy(OverloadPolicy::ShedExpiredFirst);
    let expired = Duration::from_secs(500); // behind the pinned clock: dead on arrival
    let in_budget = Duration::from_secs(2_000); // comfortably ahead of it

    let in_budget_reqs = || -> Vec<BatchRequest> {
        requests(&a, &panels, &cfg)
            .into_iter()
            .map(|r| r.with_deadline(in_budget))
            .collect()
    };
    let run_in_budget = |reqs: Vec<BatchRequest>| -> Vec<Matrix> {
        let handles: Vec<_> = reqs.into_iter().map(|r| serving.enqueue(r)).collect();
        serving.flush();
        handles
            .into_iter()
            .map(|h| h.wait().output.expect("in budget"))
            .collect()
    };

    let mut no_overload_t = Duration::MAX;
    let mut shed_t = Duration::MAX;
    let mut shed_outputs: Vec<Matrix> = Vec::new();
    for rep in 0..=reps {
        // Side A — no overload: the queue is empty, admission sheds nothing.
        let reqs = in_budget_reqs();
        let start = Instant::now();
        let outs = run_in_budget(reqs);
        let no_overload_elapsed = start.elapsed();
        std::hint::black_box(outs);
        // Side B — overload: the flood fills the queue to capacity, so the first
        // in-budget admission finds it full and sheds the whole flood (the mock
        // clock pinned at t=1000s makes "already expired" deterministic).
        let flood: Vec<_> = requests(&a, &panels, &cfg)
            .into_iter()
            .map(|r| serving.enqueue(r.with_deadline(expired)))
            .collect();
        let reqs = in_budget_reqs();
        let start = Instant::now();
        shed_outputs = run_in_budget(reqs);
        let shed_elapsed = start.elapsed();
        if rep > 0 {
            // rep 0 warms both sides and is not counted.
            no_overload_t = no_overload_t.min(no_overload_elapsed);
            shed_t = shed_t.min(shed_elapsed);
        }
        for h in flood {
            assert!(
                matches!(h.wait().output, Err(ServingError::DeadlineExceeded)),
                "every flooded request must resolve DeadlineExceeded"
            );
        }
    }
    let shed_label = format!("{label} cap={BATCH} flood={BATCH} policy=shed-expired-first");
    rec.record(
        &format!("serving_overload/no_overload/{BATCH}"),
        &format!("{label} cap={BATCH} flood=0 policy=shed-expired-first"),
        no_overload_t,
    );
    rec.record(
        &format!("serving_overload/shed/{BATCH}"),
        &shed_label,
        shed_t,
    );

    // -- Gates 1–3: shedding loses no handle and corrupts no in-budget response. -------
    let stats = serving.stats();
    assert_eq!(
        stats.shed, stats.expired,
        "only expired requests may be shed"
    );
    assert!(
        stats.shed >= BATCH as u64,
        "the expired flood must have been shed to admit the in-budget batch"
    );
    let reference: Vec<Matrix> = engine
        .submit(requests(&a, &panels, &cfg))
        .into_iter()
        .map(|r| r.output.expect("well-shaped"))
        .collect();
    assert_eq!(
        shed_outputs, reference,
        "in-budget responses under shed must be bitwise identical to the no-overload path"
    );

    if quick_mode() {
        println!("serving overload gate: quick (--test) mode, timing gate skipped");
        return;
    }
    let ratio = shed_t.as_secs_f64() / no_overload_t.as_secs_f64();
    println!(
        "serving overload gate: shed {shed_t:?} vs no-overload warm {no_overload_t:?} \
         ({ratio:.3}x) on {BATCH} in-budget + {BATCH} expired requests"
    );
    assert!(
        ratio <= 1.10,
        "shedding a {BATCH}-request expired flood must cost the in-budget batch <= 10% \
         over the no-overload warm path; measured {ratio:.3}x \
         (shed {shed_t:?} vs no-overload {no_overload_t:?})"
    );
}

/// The network serving path: an in-process `tasd-serve` server on a loopback socket,
/// its background ticker owning window close.
///
/// Correctness gate (always run, including `-- --test` smoke mode): 4 concurrent
/// connections × 16 requests through the socket return outputs **bitwise identical**
/// to an in-process `ServingEngine::submit` of the same requests on a separate engine
/// instance — the wire codec and the ticker-owned window must be invisible in the
/// result bits.
///
/// Timing: a closed-loop load-generator run records per-request latency percentiles
/// and throughput into `BENCH_serving.json` as `serving_net/{p50,p95,p99,rps}` (the
/// `rps` record stores mean time per completed request; the requests-per-second
/// figure is in its config string).
fn measure_serving_net(rec: &mut BenchRecorder) {
    use tasd_serve::loadgen::{LoadShape, LoadSpec};
    use tasd_serve::{Client, Frame, Server, ServerConfig};

    const NET_CONNECTIONS: usize = 4;
    const NET_REQUESTS: usize = 16;
    const NET_CFG: &str = "2:8+1:8";

    let server_cfg = ServerConfig {
        tick_interval: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", server_cfg).expect("bind loopback");
    let addr = server.local_addr();

    // -- Gate: socket responses ≡ in-process submit, bitwise. --------------------------
    let cfg = TasdConfig::parse(NET_CFG).unwrap();
    let operands = |c: usize| -> Vec<(Matrix, Matrix)> {
        let mut gen = MatrixGenerator::seeded(0x7C9 + c as u64);
        (0..NET_REQUESTS)
            .map(|_| {
                (
                    gen.sparse_normal(96, 128, 0.9),
                    gen.normal(128, PANEL_COLS, 0.0, 1.0),
                )
            })
            .collect()
    };
    let over_wire: Vec<Vec<Matrix>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..NET_CONNECTIONS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    operands(c)
                        .iter()
                        .enumerate()
                        .map(|(i, (a, b))| {
                            client
                                .request(i as u64, a, b, Some(NET_CFG), None)
                                .expect("send");
                            match client.recv().expect("recv").expect("open") {
                                Frame::Response { output, .. } => output,
                                other => panic!("conn {c} req {i}: unexpected {other:?}"),
                            }
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net gate connection"))
            .collect()
    });
    let reference_session = ServingEngine::over(Arc::new(ExecutionEngine::builder().build()));
    for (c, wire_outputs) in over_wire.iter().enumerate() {
        let reference = reference_session.submit(
            operands(c)
                .into_iter()
                .map(|(a, b)| BatchRequest::decomposed(a, cfg.clone(), b))
                .collect(),
        );
        for (i, (r, w)) in reference.iter().zip(wire_outputs).enumerate() {
            assert_eq!(
                r.output.as_ref().unwrap(),
                w,
                "net gate: conn {c} req {i} differs from in-process submit"
            );
        }
    }
    println!(
        "serving net gate: {NET_CONNECTIONS} connections x {NET_REQUESTS} requests \
         bitwise identical to in-process submit"
    );

    // -- Trajectory: closed-loop load run (latency percentiles + throughput). ----------
    let spec = LoadSpec {
        connections: NET_CONNECTIONS,
        requests_per_connection: if quick_mode() { 4 } else { 64 },
        shapes: vec![
            LoadShape {
                rows: 96,
                cols: 128,
                sparsity: 0.9,
            },
            LoadShape {
                rows: 128,
                cols: 96,
                sparsity: 0.7,
            },
        ],
        panel_cols: PANEL_COLS,
        config: Some(NET_CFG.to_string()),
        deadline_micros: None,
        seed: 0x10AD,
    };
    let report = tasd_serve::loadgen::run(addr, &spec).expect("load run");
    assert_eq!(report.errors, 0, "load traffic must not be rejected");
    let label = format!(
        "net conns={NET_CONNECTIONS} reqs={} shapes=96x128@0.9+128x96@0.7 \
         panels={PANEL_COLS} cfg={NET_CFG} tick=1ms",
        spec.requests_per_connection
    );
    rec.record("serving_net/p50", &label, report.p50);
    rec.record("serving_net/p95", &label, report.p95);
    rec.record("serving_net/p99", &label, report.p99);
    // Mean time per completed request; the rps figure rides in the config string.
    rec.record(
        "serving_net/rps",
        &format!("{label} rps={:.1}", report.throughput_rps),
        report.elapsed / report.requests.max(1) as u32,
    );
    if !quick_mode() {
        println!(
            "serving net: p50 {:?} p95 {:?} p99 {:?} at {:.1} req/s over {} connections",
            report.p50, report.p95, report.p99, report.throughput_rps, NET_CONNECTIONS
        );
    }
    server.shutdown();
}

/// The deploy lifecycle: generation swaps, warm vs cold restarts, and the
/// enqueue-during-deploy latency gate; recorded into `BENCH_serving.json` as
/// `serving_deploy/*`.
///
/// Correctness gates (always run, including `-- --test` smoke mode):
///
/// 1. a steady-state push re-prepares only its dirty shard, and once both deploy
///    variants' shards are cached a swap performs **zero** decompositions — the
///    timed swap is pure hash + diff + cache hit + install;
/// 2. a warm restart (snapshot load) re-registers the serving operand with **zero**
///    decompositions — asserted on every timed rep, so the `restart_warm` record can
///    never silently degrade into a re-decomposition;
/// 3. the session serves bitwise-correct outputs against the final deployed
///    generation.
///
/// Timing gate (skipped in quick mode): resolve+enqueue p99 with a pusher thread
/// deploying continuously stays within 1.10× of the same path's steady-state p99 —
/// deploys must never meaningfully stall admission.
fn measure_serving_deploy(rec: &mut BenchRecorder) {
    const DEPLOY_SHARD_ROWS: usize = 64; // M=256 rows -> 4 shards
    const ENQUEUE_SAMPLES: usize = 4000;

    let deploy_engine = || {
        Arc::new(
            ExecutionEngine::builder()
                .shard_policy(ShardPolicy::FixedRows(DEPLOY_SHARD_ROWS))
                .shard_min_rows(2)
                .build(),
        )
    };
    let mut gen = MatrixGenerator::seeded(0xDE9107);
    let base = gen.sparse_normal(M, K, 0.9);
    // The two deploy variants differ from `base` in one row each (distinct shards),
    // so every swap between them has 1 dirty shard — and after each variant's first
    // push that shard is already cached: the steady-state swap decomposes nothing.
    let variant = |marker: f32, row: usize| {
        let mut m = base.clone();
        m[(row, 0)] = marker;
        m
    };
    let panel = gen.normal(K, PANEL_COLS, 0.0, 1.0);
    let label = format!("s90 {M}x{K} shards=4 dirty_shards=1 panels={PANEL_COLS} cfg=2:8+1:8");

    let engine = deploy_engine();
    let serving = ServingEngine::over(Arc::clone(&engine)).with_max_batch(64);
    let store = Arc::new(WeightStore::new(Arc::clone(&engine)));
    let cfg = TasdConfig::parse("2:8+1:8").unwrap();
    store.register("w", base.clone(), cfg.clone()).unwrap();
    // Warm both variants' dirty shards (gate 1: the second push of a variant is
    // hash + diff + cache hit only).
    let first = store.push("w", variant(1.0, 3)).unwrap();
    assert_eq!(first.dirty_shards, 1, "one changed row, one dirty shard");
    assert_eq!(first.prepares, 1);
    store.push("w", variant(2.0, 200)).unwrap();
    let warm_swap = store.push("w", variant(1.0, 3)).unwrap();
    assert_eq!(
        warm_swap.prepares, 0,
        "a swap between cached variants must decompose nothing"
    );

    // -- serving_deploy/swap: steady-state generation swaps under parked load. ---------
    let parked: Vec<_> = (0..8)
        .map(|_| serving.enqueue(store.resolve("w").unwrap().request(panel.clone())))
        .collect();
    let mut toggle = 0u32;
    let swap_t = rec.measure("serving_deploy/swap", &label, || {
        toggle += 1;
        let (marker, row) = if toggle.is_multiple_of(2) {
            (1.0, 3)
        } else {
            (2.0, 200)
        };
        let report = store.push("w", variant(marker, row)).unwrap();
        assert_eq!(
            report.prepares, 0,
            "steady-state swaps must stay cache-pure"
        );
        report
    });
    for handle in parked {
        handle.cancel();
    }
    serving.flush();

    // -- serving_deploy/enqueue_p99: admission latency, steady vs mid-deploy. ----------
    let p99_of = |mut samples: Vec<Duration>| -> Duration {
        samples.sort_unstable();
        samples[samples.len() * 99 / 100 - 1]
    };
    let sample_enqueues = || -> Vec<Duration> {
        (0..ENQUEUE_SAMPLES)
            .map(|_| {
                let start = Instant::now();
                let handle = serving.enqueue(store.resolve("w").unwrap().request(panel.clone()));
                let elapsed = start.elapsed();
                handle.cancel();
                elapsed
            })
            .collect()
    };
    let steady_p99 = p99_of(sample_enqueues());
    let deploying = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let during_p99 = std::thread::scope(|scope| {
        let pusher = {
            let store = Arc::clone(&store);
            let deploying = Arc::clone(&deploying);
            let variant_a = variant(1.0, 3);
            let variant_b = variant(2.0, 200);
            scope.spawn(move || {
                let mut swaps = 0u64;
                while deploying.load(std::sync::atomic::Ordering::Relaxed) {
                    let next = if swaps.is_multiple_of(2) {
                        &variant_a
                    } else {
                        &variant_b
                    };
                    store.push("w", next.clone()).unwrap();
                    swaps += 1;
                }
                swaps
            })
        };
        let p99 = p99_of(sample_enqueues());
        deploying.store(false, std::sync::atomic::Ordering::Relaxed);
        let swaps = pusher.join().expect("deploy pusher");
        assert!(swaps > 0, "the pusher must have deployed during sampling");
        p99
    });
    serving.flush();
    rec.record("serving_deploy/enqueue_p99/steady", &label, steady_p99);
    rec.record("serving_deploy/enqueue_p99/during_swap", &label, during_p99);

    // -- Gate 3: the final generation serves bitwise-correct outputs. ------------------
    let final_generation = store.resolve("w").unwrap();
    let handle = serving.enqueue(final_generation.request(panel.clone()));
    serving.flush();
    let served = handle.wait().output.expect("final generation serves");
    let reference = ExecutionEngine::builder()
        .build()
        .decompose_gemm(final_generation.matrix(), &cfg, &panel)
        .unwrap();
    assert_eq!(served, reference, "deployed generation must serve bitwise");

    // -- serving_deploy/restart_{cold,warm}: boot-to-registered wall clock. ------------
    let snapshot_path =
        std::env::temp_dir().join(format!("tasd-bench-deploy-{}.snapshot", std::process::id()));
    save_snapshot(&engine, &snapshot_path).expect("snapshot write");
    let restart_label = format!("s90 {M}x{K} shards=4 cfg=2:8+1:8 register-after-boot");
    let cold_t = rec.measure("serving_deploy/restart_cold", &restart_label, || {
        let engine = deploy_engine();
        let store = WeightStore::new(Arc::clone(&engine));
        let report = store.register("w", base.clone(), cfg.clone()).unwrap();
        assert_eq!(report.prepares, 4, "a cold boot decomposes every shard");
        report
    });
    let warm_t = rec.measure("serving_deploy/restart_warm", &restart_label, || {
        let engine = deploy_engine();
        assert!(load_snapshot(&engine, &snapshot_path).is_warm());
        let store = WeightStore::new(Arc::clone(&engine));
        let report = store.register("w", base.clone(), cfg.clone()).unwrap();
        assert_eq!(report.prepares, 0, "a warm restart decomposes nothing");
        report
    });
    let _ = std::fs::remove_file(&snapshot_path);

    if quick_mode() {
        println!("serving deploy gate: quick (--test) mode, timing gate skipped");
        return;
    }
    println!(
        "serving deploy: swap {swap_t:?}, restart warm {warm_t:?} vs cold {cold_t:?} \
         ({:.2}x), enqueue p99 steady {steady_p99:?} vs during swap {during_p99:?}",
        cold_t.as_secs_f64() / warm_t.as_secs_f64()
    );
    let ratio = during_p99.as_secs_f64() / steady_p99.as_secs_f64();
    assert!(
        ratio <= 1.10,
        "resolve+enqueue p99 during continuous deploys must stay within 1.10x of \
         steady state; measured {ratio:.3}x (during {during_p99:?} vs steady {steady_p99:?})"
    );
}

criterion_group!(
    benches,
    acceptance_gate,
    sharded_gate,
    serving_window_gate,
    bench_serving
);
criterion_main!(benches);

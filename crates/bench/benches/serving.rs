//! Batched serving vs one-at-a-time execution.
//!
//! Measures `ExecutionEngine::submit` against a per-request loop on the same workload —
//! many narrow right-hand panels (one per "request") against one shared sparse operand —
//! at 3 batch sizes × 2 sparsities. This is the PR's performance story: grouping
//! amortizes the decomposition to once per operand, and panel packing amortizes the
//! per-entry kernel dispatch across the whole batch width.
//!
//! The bench also carries the PR's acceptance gate, run before the timing groups: a
//! cold batch of 32 requests sharing one decomposed operand must perform exactly one
//! decomposition (checked via cache telemetry) and beat the one-at-a-time loop's
//! wall-clock on identical work. The gate panics on regression, so CI's bench smoke run
//! enforces it.
//!
//! Run with: `cargo bench --bench serving`

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasd::{BatchRequest, ExecutionEngine, TasdConfig};
use tasd_tensor::{Matrix, MatrixGenerator};

/// Operand geometry: a serving-sized weight (256×512) against 8-column request panels.
const M: usize = 256;
const K: usize = 512;
const PANEL_COLS: usize = 8;

fn workload(sparsity: f64, batch: usize) -> (Arc<Matrix>, Vec<Matrix>, TasdConfig) {
    let mut gen = MatrixGenerator::seeded(0x5E11);
    let a = Arc::new(gen.sparse_normal(M, K, sparsity));
    let panels = (0..batch)
        .map(|_| gen.normal(K, PANEL_COLS, 0.0, 1.0))
        .collect();
    (a, panels, TasdConfig::parse("2:8+1:8").unwrap())
}

fn requests(a: &Arc<Matrix>, panels: &[Matrix], cfg: &TasdConfig) -> Vec<BatchRequest> {
    panels
        .iter()
        .map(|b| BatchRequest::decomposed(Arc::clone(a), cfg.clone(), b.clone()))
        .collect()
}

fn bench_serving_at(c: &mut Criterion, sparsity: f64) {
    let mut group = c.benchmark_group(format!("serving_s{:02.0}", sparsity * 100.0));
    group.sample_size(10);
    for batch in [4usize, 16, 32] {
        let (a, panels, cfg) = workload(sparsity, batch);
        // Warm the decomposition cache so both sides measure steady-state serving;
        // the cold-decomposition contrast is what the acceptance gate measures.
        let engine = ExecutionEngine::builder().build();
        let _ = engine.decompose(&a, &cfg);

        group.bench_function(format!("submit_batched/{batch}"), |bench| {
            bench.iter(|| {
                let responses = engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)));
                assert!(responses.iter().all(|r| r.output.is_ok()));
                responses
            });
        });

        group.bench_function(format!("one_at_a_time/{batch}"), |bench| {
            bench.iter(|| {
                panels
                    .iter()
                    .map(|b| {
                        engine
                            .decompose_gemm(std::hint::black_box(&a), &cfg, std::hint::black_box(b))
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    for sparsity in [0.5, 0.9] {
        bench_serving_at(c, sparsity);
    }
}

/// Best-of-`reps` wall-clock of `f` (de-noises single-core CI runners).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one rep")
}

/// The PR's acceptance gate (panics on regression):
///
/// 1. A cold batch of 32 requests sharing one decomposed operand performs exactly one
///    decomposition, verified via the batch's cache telemetry.
/// 2. The batched path beats the one-at-a-time loop's wall-clock on the same workload
///    (both sides cold, best-of-5 each).
fn acceptance_gate(_c: &mut Criterion) {
    const BATCH: usize = 32;
    let (a, panels, cfg) = workload(0.9, BATCH);

    // -- Gate 1: exactly one decomposition per shared-operand batch. -------------------
    let engine = ExecutionEngine::builder().build();
    let (responses, telemetry) = engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    assert!(responses.iter().all(|r| r.output.is_ok()));
    assert_eq!(telemetry.groups.len(), 1, "one shared operand, one group");
    assert_eq!(
        telemetry.decompositions, 1,
        "a batch of {BATCH} requests sharing one operand must decompose exactly once"
    );
    assert_eq!(telemetry.cache_misses, 1);
    assert!(telemetry.bytes_resident > 0);

    // -- Gate 2: batched beats one-at-a-time on wall-clock (both cold). ----------------
    let batched = best_of(5, || {
        let engine = ExecutionEngine::builder().build();
        let responses = engine.submit(requests(&a, &panels, &cfg));
        assert!(responses.iter().all(|r| r.output.is_ok()));
    });
    let one_at_a_time = best_of(5, || {
        let engine = ExecutionEngine::builder().build();
        for b in &panels {
            engine.decompose_gemm(&a, &cfg, b).unwrap();
        }
    });
    println!(
        "serving acceptance gate: batched {batched:?} vs one-at-a-time {one_at_a_time:?} \
         ({:.2}x) on {BATCH} shared-operand requests",
        one_at_a_time.as_secs_f64() / batched.as_secs_f64()
    );
    assert!(
        batched < one_at_a_time,
        "batched submit ({batched:?}) must beat the one-at-a-time loop ({one_at_a_time:?})"
    );
}

criterion_group!(benches, acceptance_gate, bench_serving);
criterion_main!(benches);

//! Batched serving vs one-at-a-time execution, and the prepared-operand hot path.
//!
//! Measures `ExecutionEngine::submit` against a per-request loop on the same workload —
//! many narrow right-hand panels (one per "request") against one shared sparse operand —
//! at 3 batch sizes × 2 sparsities, plus the *warm* (cache-hit) serving path against a
//! faithful reconstruction of the pre-prepared-operand engine (the PR 2 baseline:
//! rescan + re-cost + raw-format term execution per call).
//!
//! Every measurement is recorded to `BENCH_serving.json` at the repository root
//! (`{name, config, ns_per_iter}`), so the serving-path performance trajectory is
//! tracked across PRs.
//!
//! The bench also carries the PR's acceptance gates, run before the timing groups:
//!
//! 1. a cold batch of 32 requests sharing one decomposed operand performs exactly one
//!    decomposition (cache telemetry);
//! 2. a warm batch performs zero decompositions, zero format conversions, zero replans,
//!    and zero operand rescans (prepared-execution telemetry);
//! 3. `submit` results are bitwise identical to the per-request raw-series reference;
//! 4. the warm prepared path beats the PR 2 baseline reconstruction by ≥ 1.5×
//!    wall-clock (skipped under `cargo bench -- --test` quick mode, where one-shot
//!    timings are meaningless — gates 1–3 still run, so CI smoke keeps the bench and
//!    the contracts honest without failing on runner speed);
//! 5. the **sharded** submit path ([`sharded_gate`]): bitwise identity to the unsharded
//!    engine on a 512-row operand, and the per-shard warm-cache contract (zero
//!    conversions / replans / rescans, one cache hit per shard). Sharded-vs-unsharded
//!    ns/iter is recorded into `BENCH_serving.json` (`submit_sharded/*`), not gated —
//!    shard parallelism is a multi-core win and CI runs on one core;
//! 6. the **async serving** micro-batch window ([`serving_window_gate`]): a window of 2
//!    ticks coalesces ≥ 2 late arrivals into one decomposition (≥ 1 fewer than the same
//!    requests submitted individually), bitwise identical to per-request execution, and
//!    `ServingEngine::submit` answers exactly like `ExecutionEngine::submit`. Warm
//!    window-vs-per-request ns/iter is recorded as `serving_async/*`.
//!
//! Run with: `cargo bench --bench serving` (append `-- --test` for the smoke mode).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasd::{BatchRequest, ExecutionEngine, ServingEngine, ShardPolicy, TasdConfig};
use tasd_bench::bench_json::{quick_mode, BenchRecorder};
use tasd_tensor::backend::{pack_panels, unpack_panels};
use tasd_tensor::{Matrix, MatrixGenerator};

/// Operand geometry: a serving-sized weight (256×512) against 8-column request panels.
const M: usize = 256;
const K: usize = 512;
const PANEL_COLS: usize = 8;

fn workload(sparsity: f64, batch: usize) -> (Arc<Matrix>, Vec<Matrix>, TasdConfig) {
    let mut gen = MatrixGenerator::seeded(0x5E11);
    let a = Arc::new(gen.sparse_normal(M, K, sparsity));
    let panels = (0..batch)
        .map(|_| gen.normal(K, PANEL_COLS, 0.0, 1.0))
        .collect();
    (a, panels, TasdConfig::parse("2:8+1:8").unwrap())
}

fn requests(a: &Arc<Matrix>, panels: &[Matrix], cfg: &TasdConfig) -> Vec<BatchRequest> {
    panels
        .iter()
        .map(|b| BatchRequest::decomposed(Arc::clone(a), cfg.clone(), b.clone()))
        .collect()
}

fn config_label(sparsity: f64, batch: usize) -> String {
    format!(
        "s{:02.0} {M}x{K} batch={batch} panels={PANEL_COLS} cfg=2:8+1:8",
        sparsity * 100.0
    )
}

fn bench_serving(_c: &mut Criterion) {
    let mut rec = BenchRecorder::new("serving", 10);
    for sparsity in [0.5, 0.9] {
        for batch in [4usize, 16, 32] {
            let (a, panels, cfg) = workload(sparsity, batch);
            // Warm the prepared cache so both sides measure steady-state serving; the
            // cold-decomposition contrast is what the acceptance gate measures.
            let engine = ExecutionEngine::builder().build();
            let _ = engine.prepare_shared(&a, &cfg);

            let label = config_label(sparsity, batch);
            rec.measure(&format!("submit_batched/{batch}"), &label, || {
                let responses = engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)));
                assert!(responses.iter().all(|r| r.output.is_ok()));
                responses
            });
            rec.measure(&format!("one_at_a_time/{batch}"), &label, || {
                panels
                    .iter()
                    .map(|b| {
                        engine
                            .decompose_gemm(std::hint::black_box(&a), &cfg, std::hint::black_box(b))
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            });
        }
    }
    measure_sharded(&mut rec);
    measure_serving_async(&mut rec);
    rec.write().expect("BENCH_serving.json must be writable");
}

/// Best-of-`reps` wall-clock of `f` (de-noises single-core CI runners).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one rep")
}

/// PR 2's content fingerprint: byte-serial FNV-1a over every element (replaced in this
/// PR by a word-wise multi-lane hash *and* a per-allocation memo). The scan was part of
/// every warm `submit` call's cost, so the baseline must pay it too.
fn pr2_fnv1a_fingerprint(a: &Matrix) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(a.rows() as u64);
    mix(a.cols() as u64);
    for &x in a.as_slice() {
        mix(x.to_bits() as u64);
    }
    h
}

/// The PR 2 warm serving path, reconstructed from public APIs: per call it rescans the
/// operand (byte-serial FNV-1a fingerprint + non-zero count), re-costs every request
/// with shape-only plans, packs the panels, executes the **raw** series (terms in their
/// stored N:M format through per-call planning), and unpacks. This is what `submit` did
/// before prepared operands; keeping it executable is what makes the ≥ 1.5× gate a
/// measurement instead of a changelog claim.
fn pr2_baseline_submit(
    engine: &ExecutionEngine,
    series: &tasd::TasdSeries,
    a: &Matrix,
    panels: &[Matrix],
    cfg: &TasdConfig,
) -> Vec<Matrix> {
    let _fingerprint = std::hint::black_box(pr2_fnv1a_fingerprint(a));
    let nnz = a.count_nonzeros();
    let density = nnz as f64 / a.len() as f64;
    let mut cost_acc = 0u64;
    for b in panels {
        cost_acc = cost_acc.wrapping_add(
            engine
                .plan_dims(a.rows(), a.cols(), b.cols(), density, Some(cfg))
                .estimated_macs(),
        );
    }
    std::hint::black_box(cost_acc);
    let panel_refs: Vec<&Matrix> = panels.iter().collect();
    let wide_b = pack_panels(&panel_refs).expect("panels share the operand width");
    let wide_c = engine
        .series_gemm(series, &wide_b)
        .expect("consistent shapes");
    let widths: Vec<usize> = panels.iter().map(Matrix::cols).collect();
    unpack_panels(&wide_c, &widths)
}

/// The PR's acceptance gates (panic on regression); see the module docs for the list.
fn acceptance_gate(_c: &mut Criterion) {
    const BATCH: usize = 32;
    let (a, panels, cfg) = workload(0.9, BATCH);

    // -- Gate 1: exactly one decomposition per cold shared-operand batch. --------------
    let engine = ExecutionEngine::builder().build();
    let (responses, telemetry) = engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    assert!(responses.iter().all(|r| r.output.is_ok()));
    assert_eq!(telemetry.groups.len(), 1, "one shared operand, one group");
    assert_eq!(
        telemetry.decompositions, 1,
        "a batch of {BATCH} requests sharing one operand must decompose exactly once"
    );
    assert_eq!(telemetry.cache_misses, 1);
    assert!(telemetry.bytes_resident > 0);
    let cold = engine.prep_stats();
    assert!(
        cold.conversions > 0,
        "the 90%-sparse terms must have been packed into a faster format"
    );

    // -- Gate 2: a warm batch performs zero decompositions / conversions / replans / ---
    // -- rescans (the prepare-once / execute-many contract, measured not asserted). ----
    let (warm_responses, warm_telemetry) =
        engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    let warm = engine.prep_stats();
    assert_eq!(
        warm_telemetry.decompositions, 0,
        "warm batch must not decompose"
    );
    assert!(warm_telemetry.groups[0].cache_hit);
    assert_eq!(
        warm.conversions, cold.conversions,
        "warm batch must not convert"
    );
    assert_eq!(
        warm.plans_computed, cold.plans_computed,
        "warm batch must not replan"
    );
    assert_eq!(
        warm.fingerprint_scans, cold.fingerprint_scans,
        "warm batch must not rescan the shared operand"
    );

    // -- Gate 3: submit ≡ per-request raw-series reference, bitwise. -------------------
    let series = engine.decompose(&a, &cfg);
    for (resp, b) in warm_responses.iter().zip(&panels) {
        let reference = engine.series_gemm(&series, b).unwrap();
        assert_eq!(
            resp.output.as_ref().unwrap(),
            &reference,
            "prepared submit must be bitwise identical to the raw per-request path"
        );
    }

    // -- Gate 4: warm prepared path ≥ 1.5× over the PR 2 baseline reconstruction. ------
    if quick_mode() {
        println!("serving acceptance gate: quick (--test) mode, timing gate skipped");
        return;
    }
    let prepared = best_of(7, || {
        let responses = engine.submit(requests(&a, &panels, &cfg));
        assert!(responses.iter().all(|r| r.output.is_ok()));
    });
    let baseline = best_of(7, || {
        let outs = pr2_baseline_submit(&engine, &series, &a, &panels, &cfg);
        assert_eq!(outs.len(), BATCH);
    });
    let speedup = baseline.as_secs_f64() / prepared.as_secs_f64();
    println!(
        "serving acceptance gate: warm prepared {prepared:?} vs PR 2 baseline {baseline:?} \
         ({speedup:.2}x) on {BATCH} shared-operand requests"
    );
    assert!(
        speedup >= 1.5,
        "warm prepared submit ({prepared:?}) must be >= 1.5x faster than the PR 2 \
         baseline ({baseline:?}); measured {speedup:.2}x"
    );
}

/// Sharded serving: the row-sharded `submit` path against the unsharded path on the
/// same oversized operand.
///
/// Correctness gates (always run, including `-- --test` smoke mode):
///
/// 1. sharded responses are **bitwise identical** to the unsharded engine's;
/// 2. a warm sharded batch performs zero conversions, zero replans, zero rescans, and
///    exactly one decomposition-cache hit per shard.
///
/// Timing is recorded to `BENCH_serving.json` by [`measure_sharded`] (`submit_sharded/*`
/// vs `submit_unsharded/*`) and printed as a ratio rather than gated: shard-level
/// parallelism only pays on multi-core hosts, and the 1-CPU CI container would make a
/// wall-clock gate a coin flip. The cross-PR trajectory file is the record.
/// The sharded workload + engine pair shared by [`sharded_gate`] and
/// [`measure_sharded`], so the gate always validates exactly the configuration the
/// trajectory records: a 512×256 90%-sparse operand, 8 requests, 4 nnz-balanced shards.
const SHARDED_ROWS: usize = 512;
const SHARDED_COLS: usize = 256;
const SHARDED_BATCH: usize = 8;
const SHARDS: usize = 4;

#[allow(clippy::type_complexity)]
fn sharded_workload() -> (
    Arc<Matrix>,
    Vec<Matrix>,
    TasdConfig,
    ExecutionEngine,
    ExecutionEngine,
) {
    let mut gen = MatrixGenerator::seeded(0x5AAD);
    let a = Arc::new(gen.sparse_normal(SHARDED_ROWS, SHARDED_COLS, 0.9));
    let panels = (0..SHARDED_BATCH)
        .map(|_| gen.normal(SHARDED_COLS, PANEL_COLS, 0.0, 1.0))
        .collect();
    let cfg = TasdConfig::parse("2:8+1:8").unwrap();
    let sharded_engine = ExecutionEngine::builder()
        .shard_policy(ShardPolicy::NnzBalanced(SHARDS))
        .shard_min_rows(SHARDED_ROWS / 2)
        .build();
    let plain_engine = ExecutionEngine::builder().build();
    (a, panels, cfg, sharded_engine, plain_engine)
}

fn sharded_gate(_c: &mut Criterion) {
    let (a, panels, cfg, sharded_engine, plain_engine) = sharded_workload();

    // -- Gate 1: bitwise identity, cold and warm. --------------------------------------
    for round in 0..2 {
        let sharded = sharded_engine.submit(requests(&a, &panels, &cfg));
        let plain = plain_engine.submit(requests(&a, &panels, &cfg));
        for (s, p) in sharded.iter().zip(&plain) {
            assert_eq!(
                s.output.as_ref().unwrap(),
                p.output.as_ref().unwrap(),
                "sharded submit must be bitwise identical to unsharded (round {round})"
            );
        }
    }

    // -- Gate 2: warm sharded batches keep the prepare-once contract per shard. --------
    let before = sharded_engine.prep_stats();
    let hits_before = sharded_engine.cache_stats().hits;
    let (responses, telemetry) = sharded_engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    assert!(responses.iter().all(|r| r.output.is_ok()));
    let after = sharded_engine.prep_stats();
    assert_eq!(telemetry.decompositions, 0, "warm sharded batch decomposed");
    assert_eq!(
        after.conversions, before.conversions,
        "warm batch converted"
    );
    assert_eq!(
        after.plans_computed, before.plans_computed,
        "warm replanned"
    );
    assert_eq!(
        after.fingerprint_scans, before.fingerprint_scans,
        "warm batch rescanned the operand"
    );
    assert_eq!(
        sharded_engine.cache_stats().hits,
        hits_before + SHARDS as u64,
        "a warm sharded batch takes one cache hit per shard"
    );

    println!("sharded gate: bitwise identity + per-shard warm-cache contract verified");
}

/// Sharded-vs-unsharded timing on the oversized operand, recorded into the shared
/// `BENCH_serving.json` trajectory by [`bench_serving`]'s recorder.
fn measure_sharded(rec: &mut BenchRecorder) {
    let (a, panels, cfg, sharded_engine, plain_engine) = sharded_workload();
    // Warm both caches: the trajectory tracks steady-state serving.
    let _ = sharded_engine.submit(requests(&a, &panels, &cfg));
    let _ = plain_engine.submit(requests(&a, &panels, &cfg));
    let label = format!(
        "s90 {SHARDED_ROWS}x{SHARDED_COLS} batch={SHARDED_BATCH} panels={PANEL_COLS} \
         shards={SHARDS} cfg=2:8+1:8"
    );
    let sharded_t = rec.measure(&format!("submit_sharded/{SHARDED_BATCH}"), &label, || {
        sharded_engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)))
    });
    let unsharded_t = rec.measure(&format!("submit_unsharded/{SHARDED_BATCH}"), &label, || {
        plain_engine.submit(std::hint::black_box(requests(&a, &panels, &cfg)))
    });
    if !quick_mode() {
        println!(
            "sharded serving: warm sharded {sharded_t:?} vs unsharded {unsharded_t:?} \
             ({:.2}x) on {SHARDED_BATCH} requests over a {SHARDED_ROWS}x{SHARDED_COLS} \
             operand, {} worker(s)",
            unsharded_t.as_secs_f64() / sharded_t.as_secs_f64(),
            tasd_bench::testing::available_parallelism(),
        );
    }
}

/// The async-serving micro-batch window gate (always run, including `-- --test` smoke):
///
/// 1. a **window of 2 ticks coalesces late arrivals**: on a cache-less engine (so the
///    decomposition count measures coalescing directly), one enqueue + one tick + two
///    late enqueues + one tick dispatch as **one** window performing **one**
///    decomposition, where the same three requests submitted individually perform
///    three — the window saves ≥ 1 decomposition, the acceptance criterion;
/// 2. window outputs are **bitwise identical** to individual per-request `submit`s;
/// 3. `ServingEngine::submit` (the back-compat wrapper) answers bitwise identically to
///    `ExecutionEngine::submit` with the same window telemetry shape.
fn serving_window_gate(_c: &mut Criterion) {
    let (a, panels, cfg) = workload(0.9, 8);

    // -- Gate 1 + 2: the coalescing window vs individual submits. ----------------------
    let engine = Arc::new(ExecutionEngine::builder().cache_capacity(0).build());
    let serving = ServingEngine::over(Arc::clone(&engine))
        .with_max_wait(2)
        .with_max_batch(64);
    let h0 = serving.enqueue(BatchRequest::decomposed(
        Arc::clone(&a),
        cfg.clone(),
        panels[0].clone(),
    ));
    assert!(!serving.tick(), "1 of 2 ticks: the window must stay open");
    let late: Vec<_> = panels[1..3]
        .iter()
        .map(|b| {
            serving.enqueue(BatchRequest::decomposed(
                Arc::clone(&a),
                cfg.clone(),
                b.clone(),
            ))
        })
        .collect();
    assert!(serving.tick(), "2 of 2 ticks: the window must dispatch");
    let window_decompositions = engine.prep_stats().prepares;
    assert_eq!(
        window_decompositions, 1,
        "a 2-tick window must coalesce 3 requests into one decomposition"
    );
    let mut outs = vec![h0.wait()];
    outs.extend(late.into_iter().map(|h| h.wait()));
    assert_eq!(serving.stats().coalesced_windows, 1);

    let individual_engine = ExecutionEngine::builder().cache_capacity(0).build();
    for (out, b) in outs.iter().zip(&panels) {
        let reference = individual_engine.submit(vec![BatchRequest::decomposed(
            Arc::clone(&a),
            cfg.clone(),
            b.clone(),
        )]);
        assert_eq!(
            out.output.as_ref().unwrap(),
            reference[0].output.as_ref().unwrap(),
            "window outputs must be bitwise identical to per-request submits"
        );
    }
    let individual_decompositions = individual_engine.prep_stats().prepares;
    assert!(
        window_decompositions < individual_decompositions,
        "the micro-batch window must save at least one decomposition \
         ({window_decompositions} vs {individual_decompositions})"
    );

    // -- Gate 3: the back-compat submit wrapper. ---------------------------------------
    let engine = Arc::new(ExecutionEngine::builder().build());
    let serving = ServingEngine::over(Arc::clone(&engine));
    let (via_session, session_telemetry) =
        serving.submit_with_telemetry(requests(&a, &panels, &cfg));
    let (via_engine, engine_telemetry) = engine.submit_with_telemetry(requests(&a, &panels, &cfg));
    for (s, e) in via_session.iter().zip(&via_engine) {
        assert_eq!(
            s.output.as_ref().unwrap(),
            e.output.as_ref().unwrap(),
            "ServingEngine::submit must be bitwise identical to ExecutionEngine::submit"
        );
    }
    assert_eq!(session_telemetry.requests, engine_telemetry.requests);
    assert_eq!(
        session_telemetry.groups.len(),
        engine_telemetry.groups.len()
    );

    println!(
        "serving window gate: 2-tick coalescing + bitwise + submit-wrapper contracts verified"
    );
}

/// Warm async serving (one coalesced micro-batch window) vs warm per-request `submit`
/// loops, recorded into `BENCH_serving.json` (`serving_async/*`) for the cross-PR
/// trajectory.
fn measure_serving_async(rec: &mut BenchRecorder) {
    const BATCH: usize = 32;
    let (a, panels, cfg) = workload(0.9, BATCH);
    let engine = Arc::new(ExecutionEngine::builder().build());
    let serving = ServingEngine::over(Arc::clone(&engine)).with_max_batch(BATCH);
    let _ = engine.prepare_shared(&a, &cfg); // steady-state serving on both sides
    let label = config_label(0.9, BATCH);
    rec.measure(&format!("serving_async/window/{BATCH}"), &label, || {
        let handles: Vec<_> = requests(&a, &panels, &cfg)
            .into_iter()
            .map(|r| serving.enqueue(r))
            .collect();
        serving.flush();
        handles
            .into_iter()
            .map(|h| h.wait().output.expect("well-shaped"))
            .collect::<Vec<_>>()
    });
    rec.measure(
        &format!("serving_async/per_request/{BATCH}"),
        &label,
        || {
            requests(&a, &panels, &cfg)
                .into_iter()
                .map(|r| {
                    engine
                        .submit(vec![r])
                        .pop()
                        .expect("one response")
                        .output
                        .expect("well-shaped")
                })
                .collect::<Vec<_>>()
        },
    );
}

criterion_group!(
    benches,
    acceptance_gate,
    sharded_gate,
    serving_window_gate,
    bench_serving
);
criterion_main!(benches);

//! Criterion micro-benchmarks for the TASD kernels: structured decomposition (cold vs
//! engine-cached), and GEMM over the unified backend layer — every kernel dispatches
//! through the [`GemmBackend`] trait, exactly as production call sites do.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tasd::{ExecutionEngine, TasdConfig};
use tasd_tensor::backend::{CsrBackend, DenseBackend, GemmBackend, NmBackend};
use tasd_tensor::{CsrMatrix, Matrix, MatrixGenerator, NmCompressed, NmPattern};

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    group.sample_size(20);
    let mut gen = MatrixGenerator::seeded(1);
    let a = gen.sparse_normal(256, 256, 0.8);
    for cfg in ["2:4", "2:4+2:8", "4:8+2:8+1:8"] {
        let config = TasdConfig::parse(cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(cfg), &config, |b, config| {
            b.iter(|| tasd::decompose(std::hint::black_box(&a), config));
        });
    }
    // The engine path: after the first (cold) call every iteration is a cache hit, which
    // is the serving-path behaviour the DecompositionCache exists for.
    let engine = ExecutionEngine::builder().build();
    let config = TasdConfig::parse("2:4+2:8").unwrap();
    group.bench_function("engine_cached_2:4+2:8", |b| {
        b.iter(|| engine.decompose(std::hint::black_box(&a), &config));
    });
    group.finish();
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_256");
    group.sample_size(20);
    let mut gen = MatrixGenerator::seeded(2);
    let a = gen.sparse_normal(256, 256, 0.9);
    let b = gen.normal(256, 64, 0.0, 1.0);
    let pattern = NmPattern::new(2, 8).unwrap();
    let nm = NmCompressed::from_dense(&a, pattern).unwrap();
    let csr = CsrMatrix::from_dense(&a);
    let engine = ExecutionEngine::builder().build();
    let series = engine.decompose(&a, &TasdConfig::parse("4:8+1:8").unwrap());

    let dense = DenseBackend::default();
    group.bench_function("dense_backend", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(a.rows(), b.cols());
            dense
                .gemm_into(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });
    let nm_backend = NmBackend::default();
    group.bench_function("nm_2_8_backend", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(nm.rows(), b.cols());
            nm_backend
                .gemm_into(
                    std::hint::black_box(&nm),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });
    let csr_backend = CsrBackend::default();
    group.bench_function("csr_backend", |bench| {
        bench.iter(|| {
            let mut c_out = Matrix::zeros(csr.rows(), b.cols());
            csr_backend
                .gemm_into(
                    std::hint::black_box(&csr),
                    std::hint::black_box(&b),
                    &mut c_out,
                )
                .unwrap();
            c_out
        });
    });
    group.bench_function("engine_series_gemm_4_8_plus_1_8", |bench| {
        bench.iter(|| {
            engine
                .series_gemm(std::hint::black_box(&series), std::hint::black_box(&b))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_nm_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("nm_view_512");
    group.sample_size(20);
    let a = MatrixGenerator::seeded(3).normal(512, 512, 0.0, 1.0);
    for m in [4usize, 8, 16] {
        let pattern = NmPattern::new(m / 2, m).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &pattern, |bench, p| {
            bench.iter(|| p.view(std::hint::black_box(&a)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decomposition,
    bench_gemm_kernels,
    bench_nm_view
);
criterion_main!(benches);

//! Criterion benchmarks of the TASDER optimizer passes and the analytical accelerator
//! simulation — the "a few seconds per model" claim of paper §4.2.

use criterion::{criterion_group, criterion_main, Criterion};
use tasd::PatternMenu;
use tasd_accelsim::{simulate_network, AcceleratorConfig, HwDesign};
use tasd_bench::{dense_layer_runs, layer_runs, EXPERIMENT_SEED};
use tasd_models::profiles::sparse_model;
use tasder::Tasder;

fn bench_tasd_w_layer_wise(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasder");
    group.sample_size(10);
    let spec = sparse_model(&tasd_models::resnet::resnet18(), 0.93, EXPERIMENT_SEED);
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_seed(EXPERIMENT_SEED);
    group.bench_function("layer_wise_tasd_w_resnet18", |b| {
        b.iter(|| tasder.optimize_weights_layer_wise(std::hint::black_box(&spec)));
    });
    group.bench_function("layer_wise_tasd_a_resnet18", |b| {
        let dense = tasd_models::resnet::resnet18();
        let dense = tasd_models::profiles::dense_model_with_activation_sparsity(&dense, 1);
        b.iter(|| tasder.optimize_activations_layer_wise(std::hint::black_box(&dense)));
    });
    group.finish();
}

fn bench_accelsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelsim");
    group.sample_size(10);
    let spec = sparse_model(&tasd_models::resnet::resnet50(), 0.95, EXPERIMENT_SEED);
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_seed(EXPERIMENT_SEED);
    let transform = tasder.optimize_weights_layer_wise(&spec);
    let runs = layer_runs(tasder.engine(), &spec, &transform, 1);
    let dense_runs = dense_layer_runs(tasder.engine(), &spec, 1);
    let config = AcceleratorConfig::standard();
    group.bench_function("simulate_resnet50_ttc_vegeta", |b| {
        b.iter(|| simulate_network(HwDesign::TtcVegetaM8, &config, std::hint::black_box(&runs)));
    });
    group.bench_function("simulate_resnet50_dstc", |b| {
        b.iter(|| simulate_network(HwDesign::Dstc, &config, std::hint::black_box(&dense_runs)));
    });
    group.finish();
}

criterion_group!(benches, bench_tasd_w_layer_wise, bench_accelsim);
criterion_main!(benches);

//! Figure 16: real-system experiment — TASD-W (2:4) on an RTX-3080-class GPU with sparse
//! tensor cores, sweeping the number of converted layers of a sparse ResNet-34 and
//! reporting the end-to-end speedup together with the estimated accuracy.

use tasd::{ExecutionEngine, TasdConfig};
use tasd_accelsim::realsys::{sweep_tasd_layers, GpuModel};
use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};
use tasd_dnn::ProxyAccuracyModel;
use tasd_models::profiles::sparse_model;
use tasder::tasd_w;

fn main() {
    // 93%-sparse ResNet-34, the SparseZoo model used in §5.5.
    let spec = sparse_model(&tasd_models::resnet::resnet34(), 0.93, EXPERIMENT_SEED);
    let gpu = GpuModel::rtx3080();
    let batch = 64;
    let quality = ProxyAccuracyModel::new(0.732); // ResNet-34 top-1

    // Per-layer 2:4 damage, so accuracy can be tracked as layers are converted in the same
    // (largest-MACs-first) order the speedup sweep uses.
    let uniform = tasd_w::apply_uniform(
        ExecutionEngine::global(),
        &spec,
        &TasdConfig::parse("2:4").expect("valid"),
        quality,
        EXPERIMENT_SEED,
    );
    let mut order: Vec<usize> = (0..spec.num_layers()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(spec.layers[i].dense_macs(batch)));

    let sweep = sweep_tasd_layers(&gpu, &spec, batch);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for point in &sweep {
        // Accuracy when the first `point.num_tasd_layers` layers (by MAC order) are 2:4.
        let damage: Vec<_> = (0..spec.num_layers())
            .map(|i| {
                if order[..point.num_tasd_layers].contains(&i) {
                    uniform.assignments[i].damage
                } else {
                    tasd_dnn::quality::LayerDamage::none()
                }
            })
            .collect();
        let acc = quality.estimate(&damage);
        if point.num_tasd_layers % 4 == 0 || point.num_tasd_layers == spec.num_layers() {
            rows.push(vec![
                point.num_tasd_layers.to_string(),
                format!("{:.1}%", point.improvement_pct),
                format!("{:.2}%", acc * 100.0),
                format!("{:.2}%", (quality.base_accuracy - acc) * 100.0),
            ]);
        }
        data.push((point.num_tasd_layers, point.improvement_pct, acc));
    }
    print_table(
        "Sparse ResNet-34 on RTX-3080-class GPU: speedup & accuracy vs #TASD-W (2:4) layers",
        &[
            "layers with TASD",
            "perf. improvement",
            "est. top-1",
            "accuracy drop",
        ],
        &rows,
    );
    write_json("fig16_realsys", &data);
    println!("\n(wrote results/fig16_realsys.json)");
}

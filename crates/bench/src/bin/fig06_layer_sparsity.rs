//! Figure 6: per-layer weight and activation sparsity degrees of the 95 % unstructured
//! sparse ResNet-50 (SparseZoo-like profile).

use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};
use tasd_models::representative::Workload;

fn main() {
    let spec = Workload::SparseResNet50.network(EXPERIMENT_SEED);
    let rows: Vec<Vec<String>> = spec
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            vec![
                i.to_string(),
                l.name.clone(),
                format!("{:.1}", l.weight_sparsity * 100.0),
                format!("{:.1}", l.input_activation_sparsity * 100.0),
            ]
        })
        .collect();
    print_table(
        "Sparse ResNet-50: per-layer weight / activation sparsity (%)",
        &["#", "layer", "weight sparsity", "activation sparsity"],
        &rows,
    );
    println!(
        "\noverall weight sparsity: {:.1}% across {} CONV/FC layers",
        spec.overall_weight_sparsity() * 100.0,
        spec.num_layers()
    );
    let data: Vec<(String, f64, f64)> = spec
        .layers
        .iter()
        .map(|l| {
            (
                l.name.clone(),
                l.weight_sparsity,
                l.input_activation_sparsity,
            )
        })
        .collect();
    write_json("fig06_layer_sparsity", &data);
    println!("(wrote results/fig06_layer_sparsity.json)");
}

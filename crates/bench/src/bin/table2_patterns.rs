//! Table 2: the N:8 patterns a TTC-VEGETA engine supports once TASD chaining (≤ 2 terms)
//! over its native {1:8, 2:8, 4:8} menu is allowed.

use tasd::PatternMenu;
use tasd_bench::{print_table, write_json};

fn main() {
    let menu = PatternMenu::vegeta_m8();
    let table = menu.compose_table(2);
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|row| {
            vec![
                row.target.to_string(),
                row.series.as_ref().map_or("-".to_string(), |s| {
                    if s.is_dense() {
                        "Dense".to_string()
                    } else {
                        s.to_string()
                    }
                }),
            ]
        })
        .collect();
    print_table(
        "Supported sparse patterns with TTC-VEGETA (native 1:8/2:8/4:8, TASD <= 2 terms)",
        &["pattern", "TASD series"],
        &rows,
    );
    println!(
        "\nsupported: {} of {} N:8 patterns",
        table.iter().filter(|r| r.is_supported()).count(),
        table.len()
    );
    // Also show the fixed STC-style menus for contrast.
    for (label, menu, terms) in [
        ("TTC-STC-M4", PatternMenu::stc_m4(), 1usize),
        ("TTC-VEGETA-M4", PatternMenu::vegeta_m4(), 2),
    ] {
        let t = menu.compose_table(terms);
        let rows: Vec<Vec<String>> = t
            .iter()
            .map(|r| {
                vec![
                    r.target.to_string(),
                    r.series.as_ref().map_or("-".to_string(), |s| s.to_string()),
                ]
            })
            .collect();
        print_table(
            &format!("{label} composition table"),
            &["pattern", "TASD series"],
            &rows,
        );
    }
    write_json("table2_patterns", &table);
    println!("\n(wrote results/table2_patterns.json)");
}

//! Figure 20 (Appendix B): normalized MAC counts after layer-wise TASD-W on sparse
//! ResNet/VGG models and layer-wise TASD-A on dense models (VGG-16, ResNet-18/50,
//! ConvNeXt-Tiny, ViT-B/16), each under the 99 % accuracy-retention constraint.

use tasd::PatternMenu;
use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};
use tasd_models::profiles::{dense_model_with_activation_sparsity, sparse_model};
use tasder::Tasder;

fn main() {
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_seed(EXPERIMENT_SEED);

    // --- TASD-W on unstructured sparse models (SparseZoo-like, ~93% overall). ---
    let mut w_rows = Vec::new();
    let mut w_data = Vec::new();
    let mut w_geo = Vec::new();
    for name in ["vgg11", "vgg16", "resnet18", "resnet34"] {
        let base = tasd_models::by_name(name).expect("model exists");
        let spec = sparse_model(&base, 0.93, EXPERIMENT_SEED);
        let t = tasder.optimize_weights_layer_wise(&spec);
        let normalized = 1.0 - t.mac_reduction(&spec);
        w_rows.push(vec![
            name.to_string(),
            format!("{:.3}", normalized),
            format!("{:.1}%", t.mac_reduction(&spec) * 100.0),
            format!("{}", t.meets_quality_threshold()),
        ]);
        w_data.push((name.to_string(), normalized));
        w_geo.push(normalized);
    }
    w_rows.push(vec![
        "geomean".to_string(),
        format!("{:.3}", geomean(&w_geo)),
        format!("{:.1}%", (1.0 - geomean(&w_geo)) * 100.0),
        String::new(),
    ]);
    print_table(
        "Layer-wise TASD-W on sparse models: normalized MAC count",
        &["model", "MACs (norm.)", "MAC reduction", "meets 99%?"],
        &w_rows,
    );

    // --- TASD-A on dense models. ---
    let mut a_rows = Vec::new();
    let mut a_data = Vec::new();
    let mut a_geo = Vec::new();
    for name in ["vgg16", "resnet18", "resnet50", "convnext-tiny", "vit-b-16"] {
        let base = tasd_models::by_name(name).expect("model exists");
        let spec = dense_model_with_activation_sparsity(&base, EXPERIMENT_SEED);
        let t = tasder.optimize_activations_layer_wise(&spec);
        let normalized = 1.0 - t.mac_reduction(&spec);
        a_rows.push(vec![
            name.to_string(),
            format!("{:.3}", normalized),
            format!("{:.1}%", t.mac_reduction(&spec) * 100.0),
            format!("{}", t.meets_quality_threshold()),
        ]);
        a_data.push((name.to_string(), normalized));
        a_geo.push(normalized);
    }
    a_rows.push(vec![
        "geomean".to_string(),
        format!("{:.3}", geomean(&a_geo)),
        format!("{:.1}%", (1.0 - geomean(&a_geo)) * 100.0),
        String::new(),
    ]);
    print_table(
        "Layer-wise TASD-A on dense models: normalized MAC count",
        &["model", "MACs (norm.)", "MAC reduction", "meets 99%?"],
        &a_rows,
    );

    write_json("fig20_mac_reduction", &(w_data, a_data));
    println!("\n(wrote results/fig20_mac_reduction.json)");
}

fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

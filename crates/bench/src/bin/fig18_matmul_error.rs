//! Figure 18 (Appendix A): relative Frobenius error of an approximated matrix
//! multiplication vs the approximated sparsity of the TASD configuration, for 20 % and 80 %
//! unstructured-sparse 256×256 operands under N:4 and N:8 configurations.

use tasd::analysis::matmul_error_analysis;
use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};

fn main() {
    let points = matmul_error_analysis(256, &[0.2, 0.8], &[4, 8], EXPERIMENT_SEED);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.a_sparsity * 100.0),
                format!("{}:{}", p.n, p.block_m),
                format!("{:.1}%", p.approximated_sparsity * 100.0),
                format!("{:.3e}", p.error),
            ]
        })
        .collect();
    print_table(
        "Matrix-multiplication error vs approximated sparsity (256x256, uniform values)",
        &[
            "A sparsity",
            "config",
            "approximated sparsity",
            "relative error",
        ],
        &rows,
    );
    write_json("fig18_matmul_error", &points);
    println!("\n(wrote results/fig18_matmul_error.json)");
}

//! Figure 15: energy breakdown by hierarchy level for a representative sparse ResNet-50
//! layer on the dense TC versus TTC-VEGETA with the 4:8+1:8 configuration.

use tasd::TasdConfig;
use tasd_accelsim::{simulate_layer, AcceleratorConfig, HwDesign, LayerRun, OperandSide};
use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};
use tasd_models::representative::{find_layer_by_dims, representative_layers, Workload};

fn main() {
    let workload = Workload::SparseResNet50;
    let spec = workload.network(EXPERIMENT_SEED);
    let config = AcceleratorConfig::standard();
    // Representative layer L1 (M784-N128-K1152) with the paper's 4:8+1:8 configuration.
    let rep = representative_layers(workload)
        .into_iter()
        .next()
        .expect("representative layers exist");
    let name = find_layer_by_dims(&spec, rep.gemm_dims).expect("layer exists in ResNet-50");
    let layer = spec.layer(&name).expect("layer exists");
    let run = LayerRun::from_spec(
        layer,
        1,
        OperandSide::Weights,
        Some(TasdConfig::parse("4:8+1:8").expect("valid config")),
    );

    let tc = simulate_layer(HwDesign::DenseTc, &config, &run);
    let ttc = simulate_layer(HwDesign::TtcVegetaM8, &config, &run);

    let mut rows = Vec::new();
    for ((label, tc_e), (_, ttc_e)) in tc.energy.components().iter().zip(ttc.energy.components()) {
        rows.push(vec![
            label.to_string(),
            format!("{:.3e}", tc_e),
            format!("{:.3e}", ttc_e),
            format!("{:.3}", ttc_e / tc_e.max(f64::MIN_POSITIVE)),
        ]);
    }
    rows.push(vec![
        "TOTAL".to_string(),
        format!("{:.3e}", tc.energy_pj()),
        format!("{:.3e}", ttc.energy_pj()),
        format!("{:.3}", ttc.energy_pj() / tc.energy_pj()),
    ]);
    print_table(
        &format!("Energy breakdown (pJ) for {name} — dense TC vs TTC-VEGETA (4:8+1:8)"),
        &["level", "TC", "TTC-VEGETA", "ratio"],
        &rows,
    );
    println!(
        "\nenergy saving over dense TC: {:.1}%",
        (1.0 - ttc.energy_pj() / tc.energy_pj()) * 100.0
    );
    write_json("fig15_energy_breakdown", &(tc, ttc));
    println!("(wrote results/fig15_energy_breakdown.json)");
}

//! Figure 17 (Appendix A): percentage of dropped non-zeros and dropped magnitude vs the
//! original density of a 128×128 synthetic matrix, for 1/2/3-term TASD series.

use tasd::analysis::{appendix_a_configs, drop_analysis, ValueDistribution};
use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};

fn main() {
    let densities = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75];
    let configs = appendix_a_configs();
    let points = drop_analysis(
        128,
        &densities,
        &configs,
        ValueDistribution::Normal,
        EXPERIMENT_SEED,
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.original_density),
                p.config.to_string(),
                format!("{:.2}", p.dropped_nonzeros_pct),
                format!("{:.2}", p.dropped_magnitude_pct),
                format!("{:.2e}", p.mse),
            ]
        })
        .collect();
    print_table(
        "Dropped non-zeros / magnitude vs density (normal distribution, 128x128)",
        &[
            "density",
            "TASD series",
            "dropped non-zeros (%)",
            "dropped magnitude (%)",
            "MSE",
        ],
        &rows,
    );
    // Also report the uniform distribution, as the appendix compares both.
    let uniform = drop_analysis(
        128,
        &densities,
        &configs,
        ValueDistribution::Uniform,
        EXPERIMENT_SEED,
    );
    let urows: Vec<Vec<String>> = uniform
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.original_density),
                p.config.to_string(),
                format!("{:.2}", p.dropped_nonzeros_pct),
                format!("{:.2}", p.dropped_magnitude_pct),
            ]
        })
        .collect();
    print_table(
        "Dropped non-zeros / magnitude vs density (uniform distribution, 128x128)",
        &[
            "density",
            "TASD series",
            "dropped non-zeros (%)",
            "dropped magnitude (%)",
        ],
        &urows,
    );
    write_json("fig17_synthetic_drops", &points);
    println!("\n(wrote results/fig17_synthetic_drops.json)");
}

//! Figure 19 (Appendix B): ablation of the paper's contributions — DSTC, plain VEGETA,
//! VEGETA + TASDER (weight-side only), and TTC-VEGETA + TASDER (weights + dynamic
//! activation decomposition) — on dense, unstructured-pruned and structured-pruned
//! ResNet-50 and BERT.

use tasd::ExecutionEngine;
use tasd::{PatternMenu, TasdConfig};
use tasd_accelsim::{simulate_network, AcceleratorConfig, HwDesign};
use tasd_bench::{dense_layer_runs, layer_runs, print_table, write_json, EXPERIMENT_SEED};
use tasd_dnn::NetworkSpec;
use tasd_models::profiles::{dense_model_with_activation_sparsity, sparse_model};
use tasd_models::{resnet, transformer};
use tasder::{tasd_w, Tasder};

fn main() {
    let config = AcceleratorConfig::standard();
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for (label, spec, structured) in model_variants() {
        let tc = simulate_network(
            HwDesign::DenseTc,
            &config,
            &dense_layer_runs(ExecutionEngine::global(), &spec, 1),
        );
        let dstc = simulate_network(
            HwDesign::Dstc,
            &config,
            &dense_layer_runs(ExecutionEngine::global(), &spec, 1),
        );

        // Plain VEGETA: can only exploit offline structured-pruned (2:8-style) weights.
        let vegeta_runs = if structured {
            let uniform = tasd_w::apply_uniform(
                ExecutionEngine::global(),
                &spec,
                &TasdConfig::parse("2:8").expect("valid"),
                tasd_dnn::ProxyAccuracyModel::new(0.761),
                EXPERIMENT_SEED,
            );
            layer_runs(ExecutionEngine::global(), &spec, &uniform, 1)
        } else {
            dense_layer_runs(ExecutionEngine::global(), &spec, 1)
        };
        let vegeta = simulate_network(HwDesign::Vegeta, &config, &vegeta_runs);

        // VEGETA + TASDER: TASD-W transforms unstructured weights into the VEGETA menu,
        // but with no TASD units there is no dynamic activation decomposition.
        let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_seed(EXPERIMENT_SEED);
        let w_transform = tasder.optimize_weights_layer_wise(&spec);
        let vegeta_tasder = simulate_network(
            HwDesign::Vegeta,
            &config,
            &layer_runs(ExecutionEngine::global(), &spec, &w_transform, 1),
        );

        // TTC-VEGETA + TASDER: weight-side for sparse models, activation-side for dense.
        let ttc_transform = if spec.overall_weight_sparsity() > 0.05 {
            w_transform.clone()
        } else {
            tasder.optimize_activations_layer_wise(&spec)
        };
        let ttc = simulate_network(
            HwDesign::TtcVegetaM8,
            &config,
            &layer_runs(ExecutionEngine::global(), &spec, &ttc_transform, 1),
        );

        let base_edp = tc.edp();
        let norm = |m: &tasd_accelsim::NetworkMetrics| m.edp() / base_edp;
        rows.push(vec![
            label.clone(),
            format!("{:.3}", norm(&dstc)),
            format!("{:.3}", norm(&vegeta)),
            format!("{:.3}", norm(&vegeta_tasder)),
            format!("{:.3}", norm(&ttc)),
        ]);
        all.push((
            label,
            norm(&dstc),
            norm(&vegeta),
            norm(&vegeta_tasder),
            norm(&ttc),
        ));
    }
    print_table(
        "Normalized EDP (vs dense TC): DSTC / VEGETA / VEGETA+TASDER / TTC-VEGETA+TASDER",
        &[
            "model",
            "DSTC",
            "VEGETA",
            "VEGETA w/ TASDER",
            "TTC-VEGETA w/ TASDER",
        ],
        &rows,
    );
    write_json("fig19_ablation", &all);
    println!("\n(wrote results/fig19_ablation.json)");
}

/// The six model variants of Fig. 19: {ResNet-50, BERT} × {dense, unstructured-pruned,
/// structured-pruned}. The returned flag marks the structured-pruned variants.
fn model_variants() -> Vec<(String, NetworkSpec, bool)> {
    let rn50 = resnet::resnet50();
    let bert = transformer::bert_base(128);
    vec![
        (
            "Dense ResNet50".to_string(),
            dense_model_with_activation_sparsity(&rn50, EXPERIMENT_SEED),
            false,
        ),
        (
            "Dense BERT".to_string(),
            dense_model_with_activation_sparsity(&bert, EXPERIMENT_SEED),
            false,
        ),
        (
            "Unstructured ResNet50".to_string(),
            sparse_model(&rn50, 0.95, EXPERIMENT_SEED),
            false,
        ),
        (
            "Unstructured BERT".to_string(),
            sparse_model(&bert, 0.90, EXPERIMENT_SEED),
            false,
        ),
        (
            "Structured ResNet50".to_string(),
            sparse_model(&rn50, 0.75, EXPERIMENT_SEED).with_uniform_weight_sparsity(0.75),
            true,
        ),
        (
            "Structured BERT".to_string(),
            sparse_model(&bert, 0.75, EXPERIMENT_SEED).with_uniform_weight_sparsity(0.75),
            true,
        ),
    ]
}

//! Figure 14: estimated accuracy vs approximated sparsity for network-wise TASD (uniform
//! N:4 / N:8 / N:16 configurations) and the layer-wise TASDER result, for TASD-W on the
//! 95 % sparse ResNet-50 (upper plot) and TASD-A on the dense ResNet-50 (lower plot).

use tasd::ExecutionEngine;
use tasd::{PatternMenu, TasdConfig};
use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};
use tasd_dnn::calibration::CalibrationProfile;
use tasd_dnn::ProxyAccuracyModel;
use tasd_models::representative::Workload;
use tasd_tensor::NmPattern;
use tasder::{tasd_a, tasd_w, Tasder};

fn main() {
    let quality = ProxyAccuracyModel::new(0.761);
    weight_side(quality);
    activation_side(quality);
    println!("\n(wrote results/fig14_tasd_w.json and results/fig14_tasd_a.json)");
}

/// Network-wise sweeps of every single-term N:M configuration, for M in {4, 8, 16}.
fn uniform_configs(m: usize) -> Vec<TasdConfig> {
    (1..m)
        .map(|n| TasdConfig::single(NmPattern::new(n, m).expect("n < m")))
        .collect()
}

fn weight_side(quality: ProxyAccuracyModel) {
    let spec = Workload::SparseResNet50.network(EXPERIMENT_SEED);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for m in [4usize, 8, 16] {
        for cfg in uniform_configs(m) {
            let t = tasd_w::apply_uniform(
                ExecutionEngine::global(),
                &spec,
                &cfg,
                quality,
                EXPERIMENT_SEED,
            );
            rows.push(vec![
                format!("network-wise N:{m}"),
                cfg.to_string(),
                format!("{:.1}%", t.approximated_sparsity(&spec) * 100.0),
                format!("{:.2}%", t.estimated_accuracy() * 100.0),
                if t.meets_quality_threshold() {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
            data.push((
                format!("network-wise N:{m}"),
                cfg.to_string(),
                t.approximated_sparsity(&spec),
                t.estimated_accuracy(),
            ));
        }
    }
    // Layer-wise TASDER point.
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2)
        .with_quality_model(quality)
        .with_seed(EXPERIMENT_SEED);
    let lw = tasder.optimize_weights_layer_wise(&spec);
    rows.push(vec![
        "layer-wise N:8 (TASDER)".to_string(),
        "per-layer".to_string(),
        format!("{:.1}%", lw.approximated_sparsity(&spec) * 100.0),
        format!("{:.2}%", lw.estimated_accuracy() * 100.0),
        if lw.meets_quality_threshold() {
            "yes"
        } else {
            "no"
        }
        .to_string(),
    ]);
    data.push((
        "layer-wise N:8".to_string(),
        "per-layer".to_string(),
        lw.approximated_sparsity(&spec),
        lw.estimated_accuracy(),
    ));
    print_table(
        "TASD-W on sparse ResNet-50: accuracy vs approximated sparsity",
        &[
            "strategy",
            "config",
            "approximated sparsity",
            "est. top-1",
            "meets 99%?",
        ],
        &rows,
    );
    write_json("fig14_tasd_w", &data);
}

fn activation_side(quality: ProxyAccuracyModel) {
    let spec = Workload::DenseResNet50.network(EXPERIMENT_SEED);
    let profile = CalibrationProfile::synthetic(&spec, 8, EXPERIMENT_SEED);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for m in [4usize, 8, 16] {
        for cfg in uniform_configs(m) {
            let t = tasd_a::apply_uniform(
                ExecutionEngine::global(),
                &spec,
                &profile,
                &cfg,
                quality,
                EXPERIMENT_SEED,
            );
            rows.push(vec![
                format!("network-wise N:{m}"),
                cfg.to_string(),
                format!("{:.1}%", t.approximated_sparsity(&spec) * 100.0),
                format!("{:.2}%", t.estimated_accuracy() * 100.0),
                if t.meets_quality_threshold() {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
            data.push((
                format!("network-wise N:{m}"),
                cfg.to_string(),
                t.approximated_sparsity(&spec),
                t.estimated_accuracy(),
            ));
        }
    }
    let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2)
        .with_quality_model(quality)
        .with_seed(EXPERIMENT_SEED);
    let lw = tasder.optimize_activations_with_profile(&spec, &profile);
    rows.push(vec![
        "layer-wise N:8 (TASDER)".to_string(),
        "per-layer".to_string(),
        format!("{:.1}%", lw.approximated_sparsity(&spec) * 100.0),
        format!("{:.2}%", lw.estimated_accuracy() * 100.0),
        if lw.meets_quality_threshold() {
            "yes"
        } else {
            "no"
        }
        .to_string(),
    ]);
    data.push((
        "layer-wise N:8".to_string(),
        "per-layer".to_string(),
        lw.approximated_sparsity(&spec),
        lw.estimated_accuracy(),
    ));
    print_table(
        "TASD-A on dense ResNet-50: accuracy vs approximated sparsity",
        &[
            "strategy",
            "config",
            "approximated sparsity",
            "est. top-1",
            "meets 99%?",
        ],
        &rows,
    );
    write_json("fig14_tasd_a", &data);
}

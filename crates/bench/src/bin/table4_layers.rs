//! Table 4: the representative layers of each workload and their GEMM dimensions.

use tasd_bench::{print_table, write_json, EXPERIMENT_SEED};
use tasd_models::representative::{find_layer_by_dims, representative_layers, Workload};

fn main() {
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for workload in Workload::all() {
        let spec = workload.network(EXPERIMENT_SEED);
        for rep in representative_layers(workload) {
            let (m, n, k) = rep.gemm_dims;
            let name = find_layer_by_dims(&spec, rep.gemm_dims).unwrap_or_default();
            rows.push(vec![
                workload.label().to_string(),
                rep.label.to_string(),
                format!("M{m}-N{n}-K{k}"),
                name.clone(),
            ]);
            data.push((workload.label().to_string(), rep.label, rep.gemm_dims, name));
        }
    }
    print_table(
        "Representative layers (Table 4)",
        &["workload", "layer", "GEMM dims", "model layer"],
        &rows,
    );
    write_json("table4_layers", &data);
    println!("\n(wrote results/table4_layers.json)");
}

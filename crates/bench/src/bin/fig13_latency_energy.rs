//! Figure 13: normalized latency and energy (separately) for the four workloads on the six
//! hardware designs.

use tasd_bench::{normalize_against_tc, print_table, run_main_comparison, write_json};
use tasd_models::representative::Workload;

fn main() {
    let mut all = Vec::new();
    let mut geo: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for workload in Workload::all() {
        let results = run_main_comparison(workload, 1);
        let normalized = normalize_against_tc(&results);
        let rows: Vec<Vec<String>> = normalized
            .iter()
            .map(|r| {
                vec![
                    r.design.clone(),
                    format!("{:.3}", r.latency_normalized),
                    format!("{:.3}", r.energy_normalized),
                ]
            })
            .collect();
        print_table(
            &format!(
                "{} — normalized latency / energy vs dense TC",
                workload.label()
            ),
            &["design", "latency (norm.)", "energy (norm.)"],
            &rows,
        );
        for (i, r) in normalized.iter().enumerate() {
            if geo.len() <= i {
                geo.push((r.design.clone(), Vec::new(), Vec::new()));
            }
            geo[i].1.push(r.latency_normalized);
            geo[i].2.push(r.energy_normalized);
        }
        all.push((workload.label().to_string(), normalized));
    }
    let geo_rows: Vec<Vec<String>> = geo
        .iter()
        .map(|(d, lat, en)| {
            let g = |v: &Vec<f64>| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
            vec![d.clone(), format!("{:.3}", g(lat)), format!("{:.3}", g(en))]
        })
        .collect();
    print_table(
        "Geomean normalized latency / energy",
        &["design", "latency (norm.)", "energy (norm.)"],
        &geo_rows,
    );
    write_json("fig13_latency_energy", &all);
    println!("\n(wrote results/fig13_latency_energy.json)");
}

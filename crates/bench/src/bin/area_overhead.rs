//! §5.4: area overhead of the TASD units on top of a structured-sparse PE array
//! (comparator-tree model standing in for the paper's RTL synthesis).

use tasd_accelsim::area::{tasd_units_required, ttc_vegeta_overhead, AreaModel};
use tasd_bench::{print_table, write_json};

fn main() {
    let model = AreaModel::standard();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for m in [4usize, 8, 16] {
        let units = tasd_units_required(2, m);
        let overhead = model.tasd_overhead_fraction(256, units, m);
        rows.push(vec![
            format!("N:{m}"),
            units.to_string(),
            format!("{:.0}", model.tasd_unit_ge(m)),
            format!("{:.0}", model.pe_ge()),
            format!("{:.2}%", overhead * 100.0),
        ]);
        data.push((m, units, overhead));
    }
    print_table(
        "TASD-unit area overhead per 256-PE TTC (comparator-tree model)",
        &[
            "block size",
            "TASD units (Little's law)",
            "GE per unit",
            "GE per PE",
            "overhead",
        ],
        &rows,
    );
    println!(
        "\npaper configuration (M=8, 16 units): {:.2}% of PE-array area (paper reports <= 2%)",
        ttc_vegeta_overhead(&model, 8) * 100.0
    );
    write_json("area_overhead", &data);
    println!("(wrote results/area_overhead.json)");
}

//! Figure 12: normalized energy-delay product of the four workloads (dense/sparse
//! ResNet-50 and BERT) on the six hardware designs, plus the per-layer bars for the
//! representative layers of Table 4.

use tasd_accelsim::{simulate_layer, AcceleratorConfig, HwDesign};
use tasd_bench::{
    improvement_pct, layer_runs, normalize_against_tc, print_table, run_main_comparison,
    write_json, EXPERIMENT_SEED,
};
use tasd_models::representative::{find_layer_by_dims, representative_layers, Workload};
use tasder::Tasder;

fn main() {
    let mut all = Vec::new();
    let mut geomeans: Vec<(String, Vec<f64>)> = Vec::new();
    for workload in Workload::all() {
        let results = run_main_comparison(workload, 1);
        let normalized = normalize_against_tc(&results);

        // Overall rows.
        let rows: Vec<Vec<String>> = normalized
            .iter()
            .map(|r| {
                vec![
                    r.design.clone(),
                    format!("{:.3}", r.edp_normalized),
                    format!("{:+.1}%", improvement_pct(r.edp_normalized)),
                    format!("{:.1}%", r.mac_reduction * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!(
                "{} — Overall (normalized EDP vs dense TC)",
                workload.label()
            ),
            &["design", "EDP (norm.)", "EDP improvement", "MAC reduction"],
            &rows,
        );

        // Per-layer bars (L1-L3 of Table 4) for the TTC-VEGETA-M8 design.
        per_layer_bars(workload);

        for (i, r) in normalized.iter().enumerate() {
            if geomeans.len() <= i {
                geomeans.push((r.design.clone(), Vec::new()));
            }
            geomeans[i].1.push(r.edp_normalized);
        }
        all.push((workload.label().to_string(), normalized));
    }

    let geo_rows: Vec<Vec<String>> = geomeans
        .iter()
        .map(|(design, vals)| {
            let geo = vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64;
            vec![design.clone(), format!("{:.3}", geo.exp())]
        })
        .collect();
    print_table(
        "Geomean normalized EDP across workloads",
        &["design", "EDP (norm.)"],
        &geo_rows,
    );

    write_json("fig12_edp", &all);
    println!("\n(wrote results/fig12_edp.json)");
}

/// Prints normalized EDP for the three representative layers of Table 4 on TC vs
/// TTC-VEGETA-M8.
fn per_layer_bars(workload: Workload) {
    let spec = workload.network(EXPERIMENT_SEED);
    let config = AcceleratorConfig::standard();
    let design = HwDesign::TtcVegetaM8;
    let tasder =
        Tasder::new(design.pattern_menu().expect("ttc has a menu"), 2).with_seed(EXPERIMENT_SEED);
    let transform = if workload.has_sparse_weights() {
        tasder.optimize_weights_layer_wise(&spec)
    } else {
        tasder.optimize_activations_layer_wise(&spec)
    };
    let runs = layer_runs(tasder.engine(), &spec, &transform, 1);
    let mut rows = Vec::new();
    for rep in representative_layers(workload) {
        let Some(name) = find_layer_by_dims(&spec, rep.gemm_dims) else {
            continue;
        };
        let Some(run) = runs.iter().find(|r| r.name == name) else {
            continue;
        };
        let tc = simulate_layer(HwDesign::DenseTc, &config, run);
        let ttc = simulate_layer(design, &config, run);
        rows.push(vec![
            rep.label.to_string(),
            name.clone(),
            format!("{:.3}", ttc.edp(1.0) / tc.edp(1.0)),
        ]);
    }
    print_table(
        &format!(
            "{} — representative layers, TTC-VEGETA-M8 EDP vs TC",
            workload.label()
        ),
        &["layer", "name", "EDP (norm.)"],
        &rows,
    );
}

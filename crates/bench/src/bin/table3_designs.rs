//! Table 3: the hardware design points compared throughout the evaluation, their sparsity
//! support, TASD term limits, and relative area.

use tasd_accelsim::HwDesign;
use tasd_bench::{print_table, write_json};

fn main() {
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for design in HwDesign::main_comparison()
        .into_iter()
        .chain(std::iter::once(HwDesign::Vegeta))
    {
        let menu = design
            .pattern_menu()
            .map(|m| {
                m.native_patterns()
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_else(|| {
                if design.supports_unstructured() {
                    "unstructured".to_string()
                } else {
                    "none".to_string()
                }
            });
        rows.push(vec![
            design.label().to_string(),
            menu.clone(),
            design.max_tasd_terms().to_string(),
            format!("{:.2}x", design.relative_area()),
        ]);
        data.push((
            design.label().to_string(),
            menu,
            design.max_tasd_terms(),
            design.relative_area(),
        ));
    }
    print_table(
        "Hardware designs (sparsity support, TASD term limit, relative area)",
        &[
            "design",
            "native sparsity support",
            "TASD terms",
            "relative area",
        ],
        &rows,
    );
    write_json("table3_designs", &data);
    println!("\n(wrote results/table3_designs.json)");
}

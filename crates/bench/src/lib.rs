//! # tasd-bench
//!
//! Shared support code for the per-figure benchmark binaries (`src/bin/*`), which
//! regenerate every table and figure of the paper's evaluation section. The heavy lifting
//! lives in the library crates; this crate wires TASDER's per-layer decisions into the
//! accelerator model and formats the results the way the paper reports them.

#![warn(missing_docs)]

use serde::Serialize;
use tasd::ExecutionEngine;
use tasd_accelsim::{
    simulate_network, AcceleratorConfig, HwDesign, LayerRun, NetworkMetrics, OperandSide,
};
use tasd_dnn::NetworkSpec;
use tasd_models::representative::Workload;
use tasder::{TasdSide, TasdTransform, Tasder};

/// Standard seed used by every experiment binary so results are reproducible run to run.
pub const EXPERIMENT_SEED: u64 = 0x7A5D_2025;

/// Converts a TASDER transform into the per-layer runs the accelerator model consumes.
/// Each run carries the execution engine's plan for its GEMM
/// ([`LayerRun::from_spec_with_engine`]), so reports can show software backend choices
/// next to the hardware cost model.
pub fn layer_runs(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    transform: &TasdTransform,
    batch: usize,
) -> Vec<LayerRun> {
    let side = match transform.side {
        TasdSide::Weights => OperandSide::Weights,
        TasdSide::Activations => OperandSide::Activations,
    };
    spec.layers
        .iter()
        .zip(&transform.assignments)
        .map(|(layer, assignment)| {
            LayerRun::from_spec_with_engine(engine, layer, batch, side, assignment.config.clone())
        })
        .collect()
}

/// Per-layer runs for a network executed with no TASD at all (the dense-TC and DSTC
/// baselines, and the plain-VEGETA ablation on unstructured models).
pub fn dense_layer_runs(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    batch: usize,
) -> Vec<LayerRun> {
    spec.layers
        .iter()
        .map(|layer| {
            LayerRun::from_spec_with_engine(engine, layer, batch, OperandSide::Weights, None)
        })
        .collect()
}

/// Result of simulating one workload on one design, with everything the figures need.
#[derive(Debug, Clone, Serialize)]
pub struct DesignResult {
    /// Design label (paper naming).
    pub design: String,
    /// Total cycles.
    pub cycles: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// EDP normalized to the dense TC baseline.
    pub edp_normalized: f64,
    /// Latency normalized to the dense TC baseline.
    pub latency_normalized: f64,
    /// Energy normalized to the dense TC baseline.
    pub energy_normalized: f64,
    /// Overall MAC reduction versus dense execution.
    pub mac_reduction: f64,
}

/// Builds the TASDER optimizer for a given design (its pattern menu and term limit). For
/// designs without structured support this returns `None`.
pub fn tasder_for_design(design: HwDesign, base_accuracy: f64) -> Option<Tasder> {
    design.pattern_menu().map(|menu| {
        Tasder::new(menu, design.max_tasd_terms().max(1))
            .with_quality_model(tasd_dnn::ProxyAccuracyModel::new(base_accuracy))
            .with_seed(EXPERIMENT_SEED)
    })
}

/// Simulates a workload on every design of the paper's main comparison (Fig. 12/13):
/// the dense TC and DSTC run the model as-is, every TTC variant runs the TASDER-optimized
/// transform for its own pattern menu.
pub fn run_main_comparison(workload: Workload, batch: usize) -> Vec<(HwDesign, NetworkMetrics)> {
    let spec = workload.network(EXPERIMENT_SEED);
    let config = AcceleratorConfig::standard();
    let mut results = Vec::new();
    for design in HwDesign::main_comparison() {
        let runs = match tasder_for_design(design, 0.761) {
            None => dense_layer_runs(ExecutionEngine::global(), &spec, batch),
            Some(tasder) => {
                // Designs with TASD units follow the paper's policy: TASD-W for
                // weight-sparse workloads, TASD-A for dense-weight workloads.
                let transform = if workload.has_sparse_weights() {
                    tasder.optimize_weights_layer_wise(&spec)
                } else {
                    tasder.optimize_activations_layer_wise(&spec)
                };
                layer_runs(tasder.engine(), &spec, &transform, batch)
            }
        };
        results.push((design, simulate_network(design, &config, &runs)));
    }
    results
}

/// Normalizes a set of per-design metrics against the first entry whose design is the
/// dense TC, producing one [`DesignResult`] per design.
pub fn normalize_against_tc(results: &[(HwDesign, NetworkMetrics)]) -> Vec<DesignResult> {
    let baseline = results
        .iter()
        .find(|(d, _)| *d == HwDesign::DenseTc)
        .map(|(_, m)| m)
        .expect("the comparison must include the dense TC baseline");
    results
        .iter()
        .map(|(design, m)| DesignResult {
            design: design.label().to_string(),
            cycles: m.total_cycles(),
            energy_pj: m.total_energy_pj(),
            edp: m.edp(),
            edp_normalized: m.edp() / baseline.edp(),
            latency_normalized: m.total_cycles() / baseline.total_cycles(),
            energy_normalized: m.total_energy_pj() / baseline.total_energy_pj(),
            mac_reduction: m.mac_reduction(),
        })
        .collect()
}

/// Prints a Markdown-style table: a header row and one row per record.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Writes any serializable result to `results/<name>.json` (creating the directory), so
/// figures can be re-plotted without re-running the simulation.
///
/// In the offline shim build (`crates/compat/serde_json`) serialization is stubbed: this
/// degrades to a warning and the binaries' stdout tables remain the primary output.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create results/ directory; skipping JSON output");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Formats a ratio as the percentage improvement the paper quotes ("improves EDP by 83%"
/// means the normalized EDP is 0.17).
pub fn improvement_pct(normalized: f64) -> f64 {
    (1.0 - normalized) * 100.0
}

/// Test-support utilities shared by the repository's integration tests (the
/// multi-thread stress suites in `tests/parallel_stress.rs` and `tests/sharding.rs`).
pub mod testing {
    /// The host's available hardware parallelism (1 when it cannot be determined).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Returns `true` when the host reports at least `required` parallel execution
    /// units; otherwise logs a skip notice naming `test_name` and returns `false`.
    ///
    /// Multi-thread stress tests use this as an early-return guard instead of
    /// `#[ignore]`: on a 1-CPU runner the test passes with a *logged* reason (visible in
    /// `--nocapture` output and in harness summaries as a fast pass), and on multi-core
    /// runners it runs unconditionally — no separate `--ignored` invocation for CI to
    /// forget.
    ///
    /// ```
    /// if !tasd_bench::testing::require_parallelism(2, "my_stress_test") {
    ///     return; // skipped, with the reason on stderr
    /// }
    /// ```
    pub fn require_parallelism(required: usize, test_name: &str) -> bool {
        let available = available_parallelism();
        if available >= required {
            return true;
        }
        eprintln!(
            "skipping {test_name}: needs >= {required} parallel execution units, \
             host reports {available} (std::thread::available_parallelism)"
        );
        false
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parallelism_probe_is_sane() {
            let n = available_parallelism();
            assert!(n >= 1);
            // A 1-unit requirement is always satisfiable; an absurd one never is.
            assert!(require_parallelism(1, "probe"));
            assert!(!require_parallelism(usize::MAX, "probe"));
        }
    }
}

/// Machine-readable bench results: the `BENCH_<name>.json` files at the repository root
/// that track the performance trajectory across PRs.
///
/// The offline `serde_json` shim cannot serialize, so this module writes its (flat,
/// known-shape) JSON by hand. Each record is `{name, config, ns_per_iter}` — benchmark
/// identity, workload description, and best-observed wall-clock per iteration — plus
/// an optional `gflops` throughput field for kernel benches that declare their flop
/// count ([`BenchRecorder::measure_flops`]).
pub mod bench_json {
    use std::io::Write;
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    /// One benchmark measurement destined for `BENCH_<bench>.json`.
    #[derive(Debug, Clone)]
    pub struct BenchRecord {
        /// Benchmark identity, e.g. `"submit_batched/32"`.
        pub name: String,
        /// Workload description, e.g. `"s90 256x512 panels=8 cfg=2:8+1:8"`.
        pub config: String,
        /// Best observed wall-clock per iteration, in nanoseconds.
        pub ns_per_iter: u128,
        /// Throughput in GFLOP/s derived from a declared per-iteration flop count
        /// ([`BenchRecorder::measure_flops`]); `None` for benches that measure
        /// latency of mixed work rather than a single kernel.
        pub gflops: Option<f64>,
    }

    /// Whether the process runs in `cargo bench -- --test` smoke mode: every routine
    /// executes once, timings are meaningless, and timing gates / JSON output are
    /// skipped. This is what CI's bench-smoke job uses so bench code cannot rot without
    /// CI failing on runner-speed noise. Delegates to the harness's own flag detection
    /// ([`criterion::is_test_mode`]) so the gate-skipping logic and the sample-count
    /// logic can never disagree about what `--test` means.
    pub fn quick_mode() -> bool {
        criterion::is_test_mode()
    }

    /// Collects measurements for one bench target and writes `BENCH_<bench>.json` at the
    /// repository root.
    #[derive(Debug)]
    pub struct BenchRecorder {
        bench: String,
        reps: usize,
        records: Vec<BenchRecord>,
    }

    impl BenchRecorder {
        /// A recorder for the bench target `bench`, measuring best-of-`reps` per entry
        /// (best-of de-noises single-core CI runners).
        pub fn new(bench: &str, reps: usize) -> Self {
            BenchRecorder {
                bench: bench.to_string(),
                reps: reps.max(1),
                records: Vec::new(),
            }
        }

        /// Measures `f` (best of the configured reps; exactly one rep in
        /// [`quick_mode`]), records it under `(name, config)`, prints a one-line
        /// summary, and returns the best duration.
        pub fn measure<O>(
            &mut self,
            name: &str,
            config: &str,
            mut f: impl FnMut() -> O,
        ) -> Duration {
            let reps = if quick_mode() { 1 } else { self.reps };
            if !quick_mode() {
                std::hint::black_box(f()); // Warm-up: page in code and data.
            }
            let best = (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(f());
                    start.elapsed()
                })
                .min()
                .expect("at least one rep");
            println!(
                "{}/{name} [{config}]: {best:?} (best of {reps})",
                self.bench
            );
            self.records.push(BenchRecord {
                name: name.to_string(),
                config: config.to_string(),
                ns_per_iter: best.as_nanos(),
                gflops: None,
            });
            best
        }

        /// [`measure`](Self::measure) for a kernel whose per-iteration flop count is
        /// known: additionally records throughput (`flops / best_time`) as a `gflops`
        /// field, making kernel progress comparable across PRs even as workload
        /// shapes change. Use the *effectual* flop count (`2 · nnz · n_cols` for a
        /// sparse GEMM), so throughput reflects useful work, not skipped zeros.
        pub fn measure_flops<O>(
            &mut self,
            name: &str,
            config: &str,
            flops: u64,
            f: impl FnMut() -> O,
        ) -> Duration {
            let best = self.measure(name, config, f);
            if let Some(r) = self.records.last_mut() {
                let ns = r.ns_per_iter.max(1) as f64;
                let gflops = flops as f64 / ns; // flops per ns == GFLOP/s
                r.gflops = Some(gflops);
                println!("{}/{name} [{config}]: {gflops:.2} GFLOP/s", self.bench);
            }
            best
        }

        /// Adds an externally measured record.
        pub fn record(&mut self, name: &str, config: &str, duration: Duration) {
            self.records.push(BenchRecord {
                name: name.to_string(),
                config: config.to_string(),
                ns_per_iter: duration.as_nanos(),
                gflops: None,
            });
        }

        /// The records collected so far.
        pub fn records(&self) -> &[BenchRecord] {
            &self.records
        }

        /// Writes `BENCH_<bench>.json` at the repository root (skipped with a notice in
        /// [`quick_mode`] — one-shot timings would poison the trajectory).
        pub fn write(&self) -> std::io::Result<Option<PathBuf>> {
            if quick_mode() {
                println!(
                    "bench_json: quick (--test) mode, not writing BENCH_{}.json",
                    self.bench
                );
                return Ok(None);
            }
            let path = repo_root().join(format!("BENCH_{}.json", self.bench));
            let mut out = std::fs::File::create(&path)?;
            writeln!(out, "{{")?;
            writeln!(out, "  \"bench\": \"{}\",", escape(&self.bench))?;
            writeln!(out, "  \"results\": [")?;
            for (i, r) in self.records.iter().enumerate() {
                let comma = if i + 1 == self.records.len() { "" } else { "," };
                let gflops = match r.gflops {
                    Some(g) => format!(", \"gflops\": {g:.3}"),
                    None => String::new(),
                };
                writeln!(
                    out,
                    "    {{\"name\": \"{}\", \"config\": \"{}\", \"ns_per_iter\": {}{gflops}}}{comma}",
                    escape(&r.name),
                    escape(&r.config),
                    r.ns_per_iter
                )?;
            }
            writeln!(out, "  ]")?;
            writeln!(out, "}}")?;
            println!("bench_json: wrote {}", path.display());
            Ok(Some(path))
        }
    }

    /// The repository root, resolved from this crate's manifest directory (stable no
    /// matter where `cargo bench` is invoked from).
    fn repo_root() -> PathBuf {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
    }

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if c.is_control() => vec![' '],
                c => vec![c],
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn recorder_measures_and_escapes() {
            let mut rec = BenchRecorder::new("smoke_test", 2);
            let d = rec.measure("noop", "cfg \"x\"", || 1 + 1);
            assert!(d.as_nanos() > 0 || d.is_zero());
            assert_eq!(rec.records().len(), 1);
            assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        }

        #[test]
        fn measure_flops_records_throughput() {
            let mut rec = BenchRecorder::new("smoke_test", 1);
            rec.measure_flops("kernel", "cfg", 1_000_000, || std::hint::black_box(0));
            let r = &rec.records()[0];
            assert!(r.gflops.is_some_and(|g| g > 0.0));
            // Plain measure leaves the field unset.
            rec.measure("latency", "cfg", || std::hint::black_box(0));
            assert!(rec.records()[1].gflops.is_none());
        }

        #[test]
        fn repo_root_contains_workspace_manifest() {
            assert!(repo_root().join("Cargo.toml").exists());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd::PatternMenu;

    #[test]
    fn layer_runs_match_spec_length_and_side() {
        let spec = Workload::SparseResNet50.network(1);
        let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_seed(1);
        let transform = tasder.optimize_weights_layer_wise(&spec);
        let runs = layer_runs(tasder.engine(), &spec, &transform, 1);
        assert_eq!(runs.len(), spec.num_layers());
        assert!(runs.iter().all(|r| r.tasd_side == OperandSide::Weights));
        // At least the very sparse layers should carry configurations.
        assert!(runs.iter().filter(|r| r.tasd_config.is_some()).count() > spec.num_layers() / 2);
        // Engine-built runs all carry plans consistent with their configuration.
        assert!(runs.iter().all(|r| r.plan.is_some()));
        for run in &runs {
            let plan = run.plan.as_ref().unwrap();
            assert!(
                plan.compute_fraction() <= run.kept_fraction() + 1e-9,
                "{}",
                run.name
            );
        }
    }

    #[test]
    fn dense_runs_have_no_configs() {
        let spec = Workload::DenseBert.network(1);
        let runs = dense_layer_runs(ExecutionEngine::global(), &spec, 1);
        assert!(runs.iter().all(|r| r.tasd_config.is_none()));
        assert!(runs
            .iter()
            .all(|r| r.plan.as_ref().is_some_and(|p| p.num_terms() == 1)));
    }

    #[test]
    fn tasder_for_design_follows_menus() {
        assert!(tasder_for_design(HwDesign::DenseTc, 0.76).is_none());
        assert!(tasder_for_design(HwDesign::Dstc, 0.76).is_none());
        let t = tasder_for_design(HwDesign::TtcVegetaM8, 0.76).unwrap();
        assert_eq!(t.menu().m(), 8);
        assert_eq!(t.max_terms(), 2);
        let t4 = tasder_for_design(HwDesign::TtcStcM4, 0.76).unwrap();
        assert_eq!(t4.menu().m(), 4);
        assert_eq!(t4.max_terms(), 1);
    }

    #[test]
    fn improvement_formatting() {
        assert!((improvement_pct(0.17) - 83.0).abs() < 1e-9);
        assert_eq!(improvement_pct(1.0), 0.0);
        assert!(improvement_pct(1.12) < 0.0);
    }
}

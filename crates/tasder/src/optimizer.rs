//! The TASDER facade: one object bundling the hardware description and hyper-parameters,
//! mirroring the system overview of the paper's Fig. 5 (inputs: DNN model, sample data,
//! supported structured sparsity patterns, hyper-parameters; output: transformed model).

use crate::transform::TasdTransform;
use crate::{tasd_a, tasd_w};
use std::sync::Arc;
use tasd::{ExecutionEngine, PatternMenu};
use tasd_dnn::calibration::CalibrationProfile;
use tasd_dnn::{NetworkSpec, ProxyAccuracyModel};

/// The TASDER optimizer.
///
/// Construct it with the target hardware's [`PatternMenu`] and TASD term limit, optionally
/// adjust the quality model, α, and seed, then call one of the `optimize_*` methods.
///
/// Damage estimation decomposes every (layer, configuration) candidate; those
/// decompositions dispatch through the optimizer's [`ExecutionEngine`], whose cache
/// de-duplicates repeated evaluations of the same tensor. By default the optimizer builds
/// a private engine sized for candidate evaluation; inject a shared one with
/// [`Tasder::with_engine`].
#[derive(Debug, Clone)]
pub struct Tasder {
    menu: PatternMenu,
    max_terms: usize,
    alpha: f64,
    quality: ProxyAccuracyModel,
    calibration_batches: usize,
    seed: u64,
    engine: Arc<ExecutionEngine>,
}

impl Tasder {
    /// Creates an optimizer for hardware supporting `menu` with at most `max_terms` TASD
    /// terms, using default hyper-parameters (α = 0.05, ResNet-50-class base accuracy).
    pub fn new(menu: PatternMenu, max_terms: usize) -> Self {
        Tasder {
            menu,
            max_terms,
            alpha: 0.05,
            quality: ProxyAccuracyModel::new(0.761),
            calibration_batches: 8,
            seed: 0x7A5D,
            // Candidate evaluation touches (layers × menu options) decompositions; size
            // the cache for a paper-scale model's worth of them.
            engine: Arc::new(ExecutionEngine::builder().cache_capacity(512).build()),
        }
    }

    /// Sets the α aggressiveness knob for TASD-A (paper §4.3).
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the proxy quality model (base accuracy + sensitivity).
    #[must_use]
    pub fn with_quality_model(mut self, quality: ProxyAccuracyModel) -> Self {
        self.quality = quality;
        self
    }

    /// Sets the number of calibration batches profiled for TASD-A.
    #[must_use]
    pub fn with_calibration_batches(mut self, batches: usize) -> Self {
        self.calibration_batches = batches.max(1);
        self
    }

    /// Sets the RNG seed used for damage-estimation sampling.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Routes the optimizer's decompositions through the given execution engine (e.g. one
    /// shared with the serving path, so candidate evaluation warms the same *prepared*
    /// cache — the serving hot path then starts with its decompositions already packed
    /// in their backend-native formats and performs zero conversions from the first
    /// batch).
    #[must_use]
    pub fn with_engine(mut self, engine: Arc<ExecutionEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// The hardware pattern menu this optimizer targets.
    pub fn menu(&self) -> &PatternMenu {
        &self.menu
    }

    /// The TASD term limit of the target hardware.
    pub fn max_terms(&self) -> usize {
        self.max_terms
    }

    /// The execution engine this optimizer decomposes through.
    pub fn engine(&self) -> &Arc<ExecutionEngine> {
        &self.engine
    }

    /// Layer-wise TASD-W (the paper's default for weight-sparse models).
    pub fn optimize_weights_layer_wise(&self, spec: &NetworkSpec) -> TasdTransform {
        tasd_w::layer_wise(
            &self.engine,
            spec,
            &self.menu,
            self.max_terms,
            self.quality,
            self.seed,
        )
    }

    /// Network-wise TASD-W (single configuration for every layer).
    pub fn optimize_weights_network_wise(&self, spec: &NetworkSpec) -> TasdTransform {
        tasd_w::network_wise(
            &self.engine,
            spec,
            &self.menu,
            self.max_terms,
            self.quality,
            self.seed,
        )
    }

    /// Layer-wise TASD-A using a synthetic calibration profile derived from the spec's
    /// recorded activation sparsity (the offline substitution for a real calibration set).
    pub fn optimize_activations_layer_wise(&self, spec: &NetworkSpec) -> TasdTransform {
        let profile = CalibrationProfile::synthetic(spec, self.calibration_batches, self.seed);
        self.optimize_activations_with_profile(spec, &profile)
    }

    /// Layer-wise TASD-A with an explicit calibration profile (e.g. one measured by running
    /// an executable network over real calibration batches).
    pub fn optimize_activations_with_profile(
        &self,
        spec: &NetworkSpec,
        profile: &CalibrationProfile,
    ) -> TasdTransform {
        tasd_a::layer_wise(
            &self.engine,
            spec,
            profile,
            &self.menu,
            self.max_terms,
            self.alpha,
            self.quality,
            self.seed,
        )
    }

    /// Network-wise TASD-A.
    pub fn optimize_activations_network_wise(&self, spec: &NetworkSpec) -> TasdTransform {
        let profile = CalibrationProfile::synthetic(spec, self.calibration_batches, self.seed);
        tasd_a::network_wise(
            &self.engine,
            spec,
            &profile,
            &self.menu,
            self.max_terms,
            self.quality,
            self.seed,
        )
    }

    /// The paper's per-workload policy (§5.1): weight-sparse models use TASD-W, dense
    /// models use TASD-A; the two are never combined.
    pub fn optimize(&self, spec: &NetworkSpec) -> TasdTransform {
        if spec.overall_weight_sparsity() > 0.05 {
            self.optimize_weights_layer_wise(spec)
        } else {
            self.optimize_activations_layer_wise(spec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TasdSide;
    use tasd_models::{representative::Workload, sparsezoo_like_profile};

    #[test]
    fn policy_picks_tasd_w_for_sparse_and_tasd_a_for_dense() {
        let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2);
        let sparse = Workload::SparseResNet50.network(1);
        let dense = Workload::DenseResNet50.network(1);
        let tw = tasder.optimize(&sparse);
        let ta = tasder.optimize(&dense);
        assert_eq!(tw.side, TasdSide::Weights);
        assert_eq!(ta.side, TasdSide::Activations);
        assert!(tw.meets_quality_threshold());
        assert!(ta.meets_quality_threshold());
    }

    #[test]
    fn sparse_resnet50_reaches_paper_scale_mac_reduction() {
        // Paper: layer-wise TASD-W on 95% sparse ResNet-50 cuts compute roughly in half or
        // better (Fig. 20 reports 49% MAC reduction across ResNet/VGG; Fig. 12 implies
        // ~60% cycle reduction for sparse ResNet-50).
        let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2);
        let spec = Workload::SparseResNet50.network(3);
        let t = tasder.optimize_weights_layer_wise(&spec);
        assert!(t.meets_quality_threshold());
        let reduction = t.mac_reduction(&spec);
        assert!(
            reduction > 0.40,
            "sparse ResNet-50 MAC reduction only {reduction}"
        );
    }

    #[test]
    fn dense_resnet50_tasd_a_reduces_macs_without_breaking_quality() {
        let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2).with_alpha(0.05);
        let spec = Workload::DenseResNet50.network(3);
        let t = tasder.optimize_activations_layer_wise(&spec);
        assert!(t.meets_quality_threshold());
        let reduction = t.mac_reduction(&spec);
        assert!(
            reduction > 0.15,
            "dense ResNet-50 TASD-A MAC reduction only {reduction}"
        );
    }

    #[test]
    fn flexible_menu_beats_fixed_menu_on_sparse_weights() {
        let spec = sparsezoo_like_spec();
        let vegeta = Tasder::new(PatternMenu::vegeta_m8(), 2).optimize_weights_layer_wise(&spec);
        let stc = Tasder::new(PatternMenu::stc_m4(), 1).optimize_weights_layer_wise(&spec);
        assert!(vegeta.mac_reduction(&spec) >= stc.mac_reduction(&spec) - 1e-9);
        assert!(vegeta.mac_reduction(&spec) > 0.4);
    }

    fn sparsezoo_like_spec() -> tasd_dnn::NetworkSpec {
        let base = tasd_models::resnet::resnet18();
        let profile = sparsezoo_like_profile(&base, 0.93, 5);
        tasd_dnn::pruning::apply_sparsity_profile(&base, &profile)
    }

    #[test]
    fn builder_knobs_are_applied() {
        let t = Tasder::new(PatternMenu::vegeta_m8(), 2)
            .with_alpha(0.2)
            .with_seed(99)
            .with_calibration_batches(3)
            .with_quality_model(ProxyAccuracyModel::new(0.9));
        assert_eq!(t.max_terms(), 2);
        assert_eq!(t.menu().m(), 8);
    }
}

//! TASD-W: selecting weight-side configurations (paper §4.2).
//!
//! Weights are static, so their decomposition error can be measured exactly offline. Two
//! strategies are provided, matching the paper:
//!
//! * **network-wise** — one configuration for every layer, found by exhaustively trying the
//!   hardware's menu and keeping the most aggressive option that preserves quality;
//! * **layer-wise** — the greedy algorithm: measure the dropped-non-zero fraction of every
//!   (layer, configuration) pair, sort ascending, and apply configurations in that order —
//!   upgrading a layer only when the running quality estimate stays above 99 %.

use crate::transform::{LayerAssignment, TasdSide, TasdTransform};
use rayon::prelude::*;
use tasd::{ExecutionEngine, PatternMenu, TasdConfig};
use tasd_dnn::quality::LayerDamage;
use tasd_dnn::{NetworkSpec, ProxyAccuracyModel};
use tasd_tensor::{
    dropped_magnitude_fraction, dropped_nonzero_fraction, magnitude_prune, Matrix, MatrixGenerator,
};

/// How many weight rows are sampled when estimating a layer's decomposition damage.
/// Sampling keeps the optimizer's runtime at "a few seconds per model" (paper §4.2) even
/// for BERT-scale layers; the dropped-fraction estimate converges quickly with row count.
const DAMAGE_SAMPLE_ROWS: usize = 256;

/// Measured damage of applying one configuration to one layer's weights.
#[derive(Debug, Clone)]
pub struct WeightCandidate {
    /// Index of the layer in the network spec.
    pub layer_index: usize,
    /// The configuration evaluated.
    pub config: TasdConfig,
    /// Estimated damage to the layer's weight tensor.
    pub damage: LayerDamage,
    /// Fraction of the dense compute the hardware still executes under this configuration.
    pub kept_fraction: f64,
}

/// Synthesizes a representative sample of a layer's weight tensor: Kaiming-scaled normal
/// values magnitude-pruned to the layer's recorded sparsity. Row/column counts are capped
/// at [`DAMAGE_SAMPLE_ROWS`] for speed; the per-block statistics that determine TASD damage
/// are identical in distribution to the full tensor.
fn sample_weights(spec: &NetworkSpec, layer_index: usize, seed: u64) -> Matrix {
    let layer = &spec.layers[layer_index];
    let (k, n) = {
        let (_, n, k) = layer.gemm_dims(1);
        (k, n)
    };
    let rows = k.clamp(1, DAMAGE_SAMPLE_ROWS);
    let cols = n.clamp(1, DAMAGE_SAMPLE_ROWS);
    let mut gen = MatrixGenerator::seeded(seed ^ (layer_index as u64).wrapping_mul(0x9E37_79B9));
    let dense = gen.normal(rows, cols, 0.0, (2.0 / k.max(1) as f32).sqrt());
    magnitude_prune(&dense, layer.weight_sparsity)
}

/// Evaluates the damage of every (layer, configuration) pair in parallel. Decompositions
/// dispatch through `engine` as *prepared* series: evaluating the same layer sample
/// under several configurations shares the cache across worker threads, re-runs of the
/// optimizer (e.g. layer-wise after network-wise) skip re-decomposition entirely, and an
/// engine shared with the serving path ([`Tasder::with_engine`](crate::Tasder::with_engine))
/// comes out of candidate evaluation with its prepared cache already warm — the first
/// serving batch against an optimizer-chosen configuration performs zero decompositions
/// and zero format conversions.
pub fn evaluate_candidates(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    configs: &[TasdConfig],
    seed: u64,
) -> Vec<WeightCandidate> {
    let pairs: Vec<(usize, TasdConfig)> = (0..spec.num_layers())
        .flat_map(|li| configs.iter().cloned().map(move |c| (li, c)))
        .collect();
    pairs
        .par_iter()
        .map(|(li, config)| {
            let weights = sample_weights(spec, *li, seed);
            let series = engine.prepare(&weights, config);
            let approx = series.series().reconstruct();
            let damage = LayerDamage {
                dropped_nonzero_fraction: dropped_nonzero_fraction(&weights, &approx),
                dropped_magnitude_fraction: dropped_magnitude_fraction(&weights, &approx),
            };
            WeightCandidate {
                layer_index: *li,
                config: config.clone(),
                damage,
                kept_fraction: if config.is_dense() {
                    1.0
                } else {
                    // An N:M engine processes N slots per block regardless of how many of
                    // the stored values are actually non-zero.
                    config.kept_density()
                },
            }
        })
        .collect()
}

/// Network-wise TASD-W: the same configuration for every layer, chosen exhaustively as the
/// most aggressive (lowest kept density) menu option that keeps the quality estimate above
/// the 99 % threshold. Falls back to the all-dense transform when nothing qualifies.
pub fn network_wise(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    menu: &PatternMenu,
    max_terms: usize,
    quality: ProxyAccuracyModel,
    seed: u64,
) -> TasdTransform {
    let mut configs = menu.configurations(max_terms);
    configs.retain(|c| !c.is_dense() && c.kept_density() < 1.0 - 1e-9);
    // Most aggressive first.
    configs.sort_by(|a, b| {
        a.kept_density()
            .partial_cmp(&b.kept_density())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for config in configs {
        let transform = apply_uniform(engine, spec, &config, quality, seed);
        if transform.meets_quality_threshold() {
            return transform;
        }
    }
    TasdTransform::all_dense(spec, TasdSide::Weights, quality)
}

/// Builds the transform that applies `config` to every layer (no quality filtering) —
/// used by the network-wise search and by the Fig. 14 accuracy-vs-sparsity sweeps.
pub fn apply_uniform(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    config: &TasdConfig,
    quality: ProxyAccuracyModel,
    seed: u64,
) -> TasdTransform {
    let candidates = evaluate_candidates(engine, spec, std::slice::from_ref(config), seed);
    let mut transform = TasdTransform::all_dense(spec, TasdSide::Weights, quality);
    for cand in candidates {
        transform.assignments[cand.layer_index] = LayerAssignment {
            layer: spec.layers[cand.layer_index].name.clone(),
            config: Some(cand.config.clone()),
            damage: cand.damage,
            kept_fraction: cand.kept_fraction,
        };
    }
    transform
}

/// Layer-wise TASD-W: the greedy dropped-non-zeros algorithm of paper §4.2.
///
/// All (layer, configuration) pairs are ranked by their dropped-non-zero fraction
/// (ascending, ties broken toward more aggressive configurations). Walking that order, a
/// pair replaces the layer's current assignment if it reduces the layer's kept compute and
/// the whole-model quality estimate stays at or above 99 %.
pub fn layer_wise(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    menu: &PatternMenu,
    max_terms: usize,
    quality: ProxyAccuracyModel,
    seed: u64,
) -> TasdTransform {
    let mut configs = menu.configurations(max_terms);
    configs.retain(|c| !c.is_dense() && c.kept_density() < 1.0 - 1e-9);
    let mut candidates = evaluate_candidates(engine, spec, &configs, seed);
    candidates.sort_by(|a, b| {
        a.damage
            .dropped_nonzero_fraction
            .partial_cmp(&b.damage.dropped_nonzero_fraction)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.kept_fraction
                    .partial_cmp(&b.kept_fraction)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut transform = TasdTransform::all_dense(spec, TasdSide::Weights, quality);
    for cand in candidates {
        let current = &transform.assignments[cand.layer_index];
        if cand.kept_fraction >= current.kept_fraction {
            continue; // Not an improvement in compute.
        }
        let previous = current.clone();
        transform.assignments[cand.layer_index] = LayerAssignment {
            layer: spec.layers[cand.layer_index].name.clone(),
            config: Some(cand.config.clone()),
            damage: cand.damage,
            kept_fraction: cand.kept_fraction,
        };
        if !transform.meets_quality_threshold() {
            transform.assignments[cand.layer_index] = previous;
        }
    }
    transform
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_dnn::Activation;
    use tasd_dnn::LayerSpec;

    fn quality() -> ProxyAccuracyModel {
        ProxyAccuracyModel::new(0.761)
    }

    fn engine() -> &'static ExecutionEngine {
        ExecutionEngine::global()
    }

    /// A per-layer sensitivity appropriate for a 2–3 layer toy model (the library default
    /// of 0.01 is calibrated for ~50-layer ImageNet networks, where the damage budget is
    /// shared across many layers).
    fn strict_quality() -> ProxyAccuracyModel {
        ProxyAccuracyModel::new(0.761).with_sensitivity(0.3)
    }

    /// A small model with very sparse big layers and a denser first layer, mimicking the
    /// SparseZoo profile shape.
    fn sparse_spec() -> NetworkSpec {
        NetworkSpec::new(
            "sparse",
            vec![
                LayerSpec::linear("first", 256, 128, 64, Activation::Relu)
                    .with_weight_sparsity(0.55),
                LayerSpec::linear("mid", 512, 512, 64, Activation::Relu).with_weight_sparsity(0.95),
                LayerSpec::linear("late", 512, 256, 64, Activation::None)
                    .with_weight_sparsity(0.97),
            ],
        )
    }

    /// A fully dense model (nothing for TASD-W to exploit without hurting accuracy).
    fn dense_spec() -> NetworkSpec {
        NetworkSpec::new(
            "dense",
            vec![
                LayerSpec::linear("a", 256, 256, 64, Activation::Relu),
                LayerSpec::linear("b", 256, 256, 64, Activation::None),
            ],
        )
    }

    #[test]
    fn candidate_damage_tracks_sparsity() {
        let spec = sparse_spec();
        let cfg = vec![TasdConfig::parse("2:8").unwrap()];
        let cands = evaluate_candidates(engine(), &spec, &cfg, 1);
        assert_eq!(cands.len(), 3);
        // The 95/97% sparse layers barely lose anything under 2:8; the 55% sparse layer
        // loses a lot.
        let first = &cands[0];
        let late = &cands[2];
        assert!(first.damage.dropped_nonzero_fraction > 0.2);
        assert!(late.damage.dropped_nonzero_fraction < 0.05);
        // Greedy extraction keeps the largest magnitudes.
        for c in &cands {
            assert!(
                c.damage.dropped_magnitude_fraction <= c.damage.dropped_nonzero_fraction + 1e-12
            );
        }
    }

    #[test]
    fn layer_wise_exploits_sparse_layers_and_protects_dense_ones() {
        let spec = sparse_spec();
        let menu = PatternMenu::vegeta_m8();
        let t = layer_wise(engine(), &spec, &menu, 2, strict_quality(), 3);
        assert!(t.meets_quality_threshold());
        // The very sparse layers must get aggressive configs.
        let late = t.assignment("late").unwrap();
        assert!(late.config.is_some());
        assert!(late.kept_fraction <= 0.25, "kept {}", late.kept_fraction);
        // Overall MAC reduction should be substantial (big layers are 95%+ sparse).
        assert!(
            t.mac_reduction(&spec) > 0.5,
            "reduction {}",
            t.mac_reduction(&spec)
        );
        // The dense-ish first layer must not be crushed to 1:8.
        let first = t.assignment("first").unwrap();
        assert!(first.kept_fraction > 0.2);
    }

    #[test]
    fn layer_wise_beats_or_matches_network_wise() {
        let spec = sparse_spec();
        let menu = PatternMenu::vegeta_m8();
        let lw = layer_wise(engine(), &spec, &menu, 2, quality(), 3);
        let nw = network_wise(engine(), &spec, &menu, 2, quality(), 3);
        assert!(nw.meets_quality_threshold());
        assert!(
            lw.mac_reduction(&spec) >= nw.mac_reduction(&spec) - 1e-9,
            "layer-wise {} vs network-wise {}",
            lw.mac_reduction(&spec),
            nw.mac_reduction(&spec)
        );
    }

    #[test]
    fn dense_model_is_left_untouched_by_tasd_w() {
        let spec = dense_spec();
        let menu = PatternMenu::vegeta_m8();
        let t = layer_wise(engine(), &spec, &menu, 2, strict_quality(), 5);
        // Any structured view of dense weights drops a large share of the weights; quality
        // collapses, so the optimizer must refuse.
        assert!(t.meets_quality_threshold());
        assert!(
            t.mac_reduction(&spec) < 0.05,
            "reduction {}",
            t.mac_reduction(&spec)
        );
        let nw = network_wise(engine(), &spec, &menu, 2, strict_quality(), 5);
        assert_eq!(nw.num_tasd_layers(), 0);
    }

    #[test]
    fn apply_uniform_assigns_every_layer() {
        let spec = sparse_spec();
        let cfg = TasdConfig::parse("4:8+1:8").unwrap();
        let t = apply_uniform(engine(), &spec, &cfg, quality(), 7);
        assert_eq!(t.num_tasd_layers(), 3);
        assert!(t
            .assignments
            .iter()
            .all(|a| a.config.as_ref() == Some(&cfg)));
        assert!((t.approximated_sparsity(&spec) - cfg.approximated_sparsity()).abs() < 1e-9);
    }

    #[test]
    fn more_aggressive_uniform_configs_hurt_quality_more() {
        let spec = sparse_spec();
        let gentle = apply_uniform(
            engine(),
            &spec,
            &TasdConfig::parse("6:8").unwrap(),
            quality(),
            7,
        );
        let harsh = apply_uniform(
            engine(),
            &spec,
            &TasdConfig::parse("1:8").unwrap(),
            quality(),
            7,
        );
        assert!(gentle.estimated_accuracy() >= harsh.estimated_accuracy());
    }

    #[test]
    fn stc_menu_limits_what_layer_wise_can_do() {
        let spec = sparse_spec();
        let vegeta = layer_wise(engine(), &spec, &PatternMenu::vegeta_m8(), 2, quality(), 3);
        let stc = layer_wise(engine(), &spec, &PatternMenu::stc_m4(), 1, quality(), 3);
        // The flexible menu reaches at least the MAC reduction of the fixed 2:4 menu.
        assert!(vegeta.mac_reduction(&spec) >= stc.mac_reduction(&spec) - 1e-9);
    }
}

//! # tasder — the TASD optimizer framework
//!
//! TASDER (paper §4) is the system-software layer between model developers and structured
//! sparse hardware. It takes a DNN model, sample/calibration data, the hardware's supported
//! structured-sparsity patterns, and a couple of hyper-parameters, and returns a *TASD
//! transformation*: for every CONV/FC layer, the TASD series configuration its weights
//! (TASD-W) or activations (TASD-A) should be decomposed with, subject to keeping ≥ 99 % of
//! the original model quality.
//!
//! The crate provides:
//!
//! * [`Tasder`] — the optimizer facade (pattern menu, term limit, α, quality model, seed).
//! * [`tasd_w`] — network-wise (exhaustive) and layer-wise (greedy, dropped-non-zeros
//!   ordered) weight-side selection.
//! * [`tasd_a`] — calibration-driven, sparsity / pseudo-density based activation-side
//!   selection with the α aggressiveness knob.
//! * [`TasdTransform`] / [`LayerAssignment`] — the resulting per-layer configuration, with
//!   damage estimates, MAC-reduction accounting, and quality estimates.
//!
//! The optimizer is hardware-agnostic: it only needs the pattern menu and term limit. The
//! accelerator model that turns a transform into energy/latency/EDP lives in
//! `tasd-accelsim`, and the two are wired together by the benchmark harness.
//!
//! # Example
//!
//! ```
//! use tasd::PatternMenu;
//! use tasd_dnn::{Activation, LayerSpec, NetworkSpec, ProxyAccuracyModel};
//! use tasder::Tasder;
//!
//! // A small unstructured-sparse model (90% sparse weights).
//! let spec = NetworkSpec::new(
//!     "tiny",
//!     vec![
//!         LayerSpec::linear("fc1", 256, 256, 64, Activation::Relu).with_weight_sparsity(0.9),
//!         LayerSpec::linear("fc2", 256, 64, 64, Activation::None).with_weight_sparsity(0.9),
//!     ],
//! );
//! let tasder = Tasder::new(PatternMenu::vegeta_m8(), 2)
//!     .with_quality_model(ProxyAccuracyModel::new(0.76));
//! let transform = tasder.optimize_weights_layer_wise(&spec);
//! assert!(transform.meets_quality_threshold());
//! assert!(transform.mac_reduction(&spec) > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod optimizer;
pub mod tasd_a;
pub mod tasd_w;
pub mod transform;

pub use optimizer::Tasder;
pub use transform::{LayerAssignment, TasdSide, TasdTransform};

//! The result of a TASDER optimization: per-layer TASD assignments.

use serde::{Deserialize, Serialize};
use tasd::TasdConfig;
use tasd_dnn::quality::{LayerDamage, ACCURACY_RETENTION_THRESHOLD};
use tasd_dnn::{NetworkSpec, ProxyAccuracyModel};

/// Which tensor of a layer the configuration applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TasdSide {
    /// Weight tensor (TASD-W, applied offline).
    Weights,
    /// Input-activation tensor (TASD-A, decomposed dynamically by the TASD units).
    Activations,
}

/// The TASD decision for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerAssignment {
    /// Layer name.
    pub layer: String,
    /// The chosen configuration, or `None` to run the layer densely.
    pub config: Option<TasdConfig>,
    /// Estimated damage the configuration causes to this layer's tensor.
    pub damage: LayerDamage,
    /// The fraction of the decomposed tensor that is kept and computed on
    /// (min of the configuration's admitted density and the tensor's actual density).
    pub kept_fraction: f64,
}

impl LayerAssignment {
    /// An assignment that leaves the layer dense and undamaged.
    pub fn dense(layer: impl Into<String>) -> Self {
        LayerAssignment {
            layer: layer.into(),
            config: None,
            damage: LayerDamage::none(),
            kept_fraction: 1.0,
        }
    }
}

/// A full model transformation: one assignment per CONV/FC layer (network order), plus the
/// quality model used to judge it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TasdTransform {
    /// Which side of every layer the transform decomposes.
    pub side: TasdSide,
    /// Per-layer assignments, in network order.
    pub assignments: Vec<LayerAssignment>,
    /// The quality model the optimizer used.
    pub quality_model: ProxyAccuracyModel,
}

impl TasdTransform {
    /// Creates an all-dense transform for `spec` (the starting point of every search).
    pub fn all_dense(
        spec: &NetworkSpec,
        side: TasdSide,
        quality_model: ProxyAccuracyModel,
    ) -> Self {
        TasdTransform {
            side,
            assignments: spec
                .layers
                .iter()
                .map(|l| LayerAssignment::dense(&l.name))
                .collect(),
            quality_model,
        }
    }

    /// The assignment for a layer, by name.
    pub fn assignment(&self, layer: &str) -> Option<&LayerAssignment> {
        self.assignments.iter().find(|a| a.layer == layer)
    }

    /// Number of layers that received a (non-dense) TASD configuration.
    pub fn num_tasd_layers(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.config.as_ref().is_some_and(|c| !c.is_dense()))
            .count()
    }

    /// Estimated accuracy of the transformed model under the proxy quality model.
    pub fn estimated_accuracy(&self) -> f64 {
        let damage: Vec<LayerDamage> = self.assignments.iter().map(|a| a.damage).collect();
        self.quality_model.estimate(&damage)
    }

    /// Estimated accuracy retention relative to the original model.
    pub fn estimated_retention(&self) -> f64 {
        let damage: Vec<LayerDamage> = self.assignments.iter().map(|a| a.damage).collect();
        self.quality_model.retention(&damage)
    }

    /// Whether the transform keeps ≥ 99 % of the original model quality.
    pub fn meets_quality_threshold(&self) -> bool {
        self.estimated_retention() >= ACCURACY_RETENTION_THRESHOLD
    }

    /// MAC reduction of the transformed model over dense execution of `spec`
    /// (the metric of paper Fig. 20): `1 − Σ keptₗ·MACsₗ / Σ MACsₗ`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` has a different number of layers than the transform.
    pub fn mac_reduction(&self, spec: &NetworkSpec) -> f64 {
        assert_eq!(
            spec.num_layers(),
            self.assignments.len(),
            "transform does not match the network"
        );
        let total: f64 = spec.iter().map(|l| l.dense_macs(1) as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        let kept: f64 = spec
            .iter()
            .zip(&self.assignments)
            .map(|(l, a)| l.dense_macs(1) as f64 * a.kept_fraction)
            .sum();
        1.0 - kept / total
    }

    /// The MAC-weighted mean *approximated sparsity* of the transform — the x-axis of the
    /// paper's Fig. 14 (the sparsity the chosen configurations enforce, independent of how
    /// sparse the tensors already were).
    pub fn approximated_sparsity(&self, spec: &NetworkSpec) -> f64 {
        assert_eq!(
            spec.num_layers(),
            self.assignments.len(),
            "transform does not match the network"
        );
        let total: f64 = spec.iter().map(|l| l.dense_macs(1) as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        let weighted: f64 = spec
            .iter()
            .zip(&self.assignments)
            .map(|(l, a)| {
                let approx = a
                    .config
                    .as_ref()
                    .map_or(0.0, TasdConfig::approximated_sparsity);
                l.dense_macs(1) as f64 * approx
            })
            .sum();
        weighted / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_dnn::{Activation, LayerSpec};

    fn spec() -> NetworkSpec {
        NetworkSpec::new(
            "t",
            vec![
                LayerSpec::linear("a", 128, 128, 64, Activation::Relu),
                LayerSpec::linear("b", 128, 128, 64, Activation::None),
            ],
        )
    }

    fn quality() -> ProxyAccuracyModel {
        ProxyAccuracyModel::new(0.76)
    }

    #[test]
    fn all_dense_transform_is_lossless_and_free() {
        let t = TasdTransform::all_dense(&spec(), TasdSide::Weights, quality());
        assert_eq!(t.num_tasd_layers(), 0);
        assert_eq!(t.estimated_accuracy(), 0.76);
        assert!(t.meets_quality_threshold());
        assert_eq!(t.mac_reduction(&spec()), 0.0);
        assert_eq!(t.approximated_sparsity(&spec()), 0.0);
    }

    #[test]
    fn assignments_drive_mac_reduction() {
        let mut t = TasdTransform::all_dense(&spec(), TasdSide::Weights, quality());
        t.assignments[0] = LayerAssignment {
            layer: "a".to_string(),
            config: Some(TasdConfig::parse("2:8").unwrap()),
            damage: LayerDamage::none(),
            kept_fraction: 0.25,
        };
        // Both layers have equal MACs, so reducing one to 25% gives 37.5% overall.
        assert!((t.mac_reduction(&spec()) - 0.375).abs() < 1e-12);
        assert_eq!(t.num_tasd_layers(), 1);
        assert!((t.approximated_sparsity(&spec()) - 0.375).abs() < 1e-12);
        assert!(t.assignment("a").unwrap().config.is_some());
        assert!(t.assignment("missing").is_none());
    }

    #[test]
    fn damage_lowers_estimated_accuracy() {
        let mut t = TasdTransform::all_dense(&spec(), TasdSide::Activations, quality());
        t.assignments[1].damage = LayerDamage {
            dropped_nonzero_fraction: 0.5,
            dropped_magnitude_fraction: 0.4,
        };
        assert!(t.estimated_accuracy() < 0.76);
        assert!(t.estimated_retention() < 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_spec_panics() {
        let t = TasdTransform::all_dense(&spec(), TasdSide::Weights, quality());
        let other = NetworkSpec::new("other", vec![]);
        let _ = t.mac_reduction(&other);
    }
}

//! TASD-A: selecting activation-side configurations (paper §4.3).
//!
//! Activations are dynamic, so configurations cannot be picked by measuring exact drops on
//! the deployment data. Instead TASDER profiles the model on a small calibration set and
//! uses a *sparsity-based selection*: for each layer with effective activation sparsity
//! `S(L)` (measured directly for ReLU inputs, or as `1 − pseudo-density` for GELU/Swish
//! inputs), pick the most aggressive hardware configuration whose approximated sparsity is
//! below `S(L) + α`. The hyper-parameter α trades accuracy for compute: larger α allows
//! configurations that drop more non-zeros.

use crate::transform::{LayerAssignment, TasdSide, TasdTransform};
use tasd::{ExecutionEngine, PatternMenu, TasdConfig};
use tasd_dnn::calibration::CalibrationProfile;
use tasd_dnn::quality::LayerDamage;
use tasd_dnn::{NetworkSpec, ProxyAccuracyModel};
use tasd_tensor::{dropped_magnitude_fraction, dropped_nonzero_fraction, MatrixGenerator};

/// Picks the configuration for one layer given its effective activation sparsity: the menu
/// option (within `max_terms`) with the largest approximated sparsity that is still below
/// `effective_sparsity + alpha`. Returns `None` (dense execution) when even the most
/// conservative option over-approximates.
pub fn select_config(
    menu: &PatternMenu,
    max_terms: usize,
    effective_sparsity: f64,
    alpha: f64,
) -> Option<TasdConfig> {
    let budget = effective_sparsity + alpha;
    if budget <= 0.0 {
        return None;
    }
    // densest_config_within takes a *density* bound: approximated sparsity < budget
    // means kept density > 1 - budget, and we want the most aggressive (lowest density)
    // admissible config, i.e. the one with the largest approximated sparsity <= budget.
    let mut best: Option<TasdConfig> = None;
    for cfg in menu.configurations(max_terms) {
        // Skip dense execution and term combinations that keep the whole block anyway
        // (e.g. 4:8+4:8) — they admit no skipping and are never worth the decomposition.
        if cfg.is_dense() || cfg.kept_density() >= 1.0 - 1e-9 {
            continue;
        }
        if cfg.approximated_sparsity() <= budget + 1e-12 {
            let better = match &best {
                None => true,
                Some(b) => {
                    cfg.approximated_sparsity() > b.approximated_sparsity()
                        || (cfg.approximated_sparsity() == b.approximated_sparsity()
                            && cfg.order() < b.order())
                }
            };
            if better {
                best = Some(cfg);
            }
        }
    }
    best
}

/// Whether a layer is eligible for a TASD-A layer in front of it: its input must come from
/// an activation function (ReLU family → sparse input; GELU/Swish → skewed dense input).
/// The first layer reads the raw network input and is never transformed (paper Fig. 8).
pub fn eligible_for_activation_tasd(spec: &NetworkSpec, layer_index: usize) -> bool {
    if layer_index == 0 {
        return false;
    }
    let producer = &spec.layers[layer_index - 1];
    producer.activation.induces_sparsity()
        || matches!(
            producer.activation,
            tasd_dnn::Activation::Gelu | tasd_dnn::Activation::Swish
        )
}

/// Estimates the damage of decomposing a layer's input activations with `config`, by
/// decomposing a synthetic activation sample with the layer's observed sparsity
/// (ReLU-style) or a GELU-shaped dense sample.
fn estimate_activation_damage(
    engine: &ExecutionEngine,
    config: &TasdConfig,
    relu_input: bool,
    sparsity: f64,
    seed: u64,
    layer_index: usize,
) -> LayerDamage {
    let mut gen = MatrixGenerator::seeded(seed ^ (layer_index as u64).wrapping_mul(0x51_7C_C1));
    let sample = if relu_input {
        gen.sparse_normal(64, 256, sparsity.clamp(0.0, 0.999))
            .map(|x| x.abs())
    } else {
        gen.gelu_activations(64, 256)
    };
    let series = engine.decompose(&sample, config);
    let approx = series.reconstruct();
    LayerDamage {
        dropped_nonzero_fraction: dropped_nonzero_fraction(&sample, &approx),
        dropped_magnitude_fraction: dropped_magnitude_fraction(&sample, &approx),
    }
}

/// Layer-wise TASD-A: per-layer sparsity-based selection using the calibration profile,
/// followed by a quality check that backs the most damaging layers off to dense execution
/// until the 99 % retention estimate is met.
#[allow(clippy::too_many_arguments)] // mirrors the paper's full TASD-A parameter list
pub fn layer_wise(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    profile: &CalibrationProfile,
    menu: &PatternMenu,
    max_terms: usize,
    alpha: f64,
    quality: ProxyAccuracyModel,
    seed: u64,
) -> TasdTransform {
    let mut transform = TasdTransform::all_dense(spec, TasdSide::Activations, quality);
    for (li, layer) in spec.layers.iter().enumerate() {
        if !eligible_for_activation_tasd(spec, li) {
            continue;
        }
        let Some(stats) = profile.layer(&layer.name) else {
            continue;
        };
        let effective_sparsity = stats.effective_sparsity();
        let Some(config) = select_config(menu, max_terms, effective_sparsity, alpha) else {
            continue;
        };
        let damage = estimate_activation_damage(
            engine,
            &config,
            stats.relu_input,
            stats.mean_sparsity,
            seed,
            li,
        );
        transform.assignments[li] = LayerAssignment {
            layer: layer.name.clone(),
            config: Some(config.clone()),
            damage,
            kept_fraction: config.kept_density(),
        };
    }
    // Back off the most damaging assignments until the quality estimate recovers: each
    // step downgrades the worst layer to the next more conservative menu option (larger
    // kept density), falling back to dense execution when nothing gentler exists.
    while !transform.meets_quality_threshold() {
        let worst = transform
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.config.is_some())
            .max_by(|a, b| {
                a.1.damage
                    .dropped_magnitude_fraction
                    .partial_cmp(&b.1.damage.dropped_magnitude_fraction)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i);
        let Some(i) = worst else { break };
        let current_kept = transform.assignments[i]
            .config
            .as_ref()
            .map_or(1.0, TasdConfig::kept_density);
        // The next more conservative option: smallest kept density strictly above the
        // current one.
        let next = menu
            .configurations(max_terms)
            .into_iter()
            .filter(|c| {
                !c.is_dense()
                    && c.kept_density() < 1.0 - 1e-9
                    && c.kept_density() > current_kept + 1e-9
            })
            .min_by(|a, b| {
                a.kept_density()
                    .partial_cmp(&b.kept_density())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        match next {
            Some(config) => {
                let stats = profile
                    .layer(&spec.layers[i].name)
                    .expect("assigned layers have calibration stats");
                let damage = estimate_activation_damage(
                    engine,
                    &config,
                    stats.relu_input,
                    stats.mean_sparsity,
                    seed,
                    i,
                );
                transform.assignments[i] = LayerAssignment {
                    layer: spec.layers[i].name.clone(),
                    config: Some(config.clone()),
                    damage,
                    kept_fraction: config.kept_density(),
                };
            }
            None => {
                transform.assignments[i] = LayerAssignment::dense(&spec.layers[i].name);
            }
        }
    }
    transform
}

/// Network-wise TASD-A: one configuration for every eligible layer, chosen exhaustively as
/// the most aggressive option whose quality estimate survives the 99 % check.
pub fn network_wise(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    profile: &CalibrationProfile,
    menu: &PatternMenu,
    max_terms: usize,
    quality: ProxyAccuracyModel,
    seed: u64,
) -> TasdTransform {
    let mut configs = menu.configurations(max_terms);
    configs.retain(|c| !c.is_dense() && c.kept_density() < 1.0 - 1e-9);
    configs.sort_by(|a, b| {
        a.kept_density()
            .partial_cmp(&b.kept_density())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for config in configs {
        let transform = apply_uniform(engine, spec, profile, &config, quality, seed);
        if transform.meets_quality_threshold() {
            return transform;
        }
    }
    TasdTransform::all_dense(spec, TasdSide::Activations, quality)
}

/// Applies one configuration to every eligible layer without quality filtering (used by the
/// network-wise search and the Fig. 14 sweeps).
pub fn apply_uniform(
    engine: &ExecutionEngine,
    spec: &NetworkSpec,
    profile: &CalibrationProfile,
    config: &TasdConfig,
    quality: ProxyAccuracyModel,
    seed: u64,
) -> TasdTransform {
    let mut transform = TasdTransform::all_dense(spec, TasdSide::Activations, quality);
    for (li, layer) in spec.layers.iter().enumerate() {
        if !eligible_for_activation_tasd(spec, li) {
            continue;
        }
        let Some(stats) = profile.layer(&layer.name) else {
            continue;
        };
        let damage = estimate_activation_damage(
            engine,
            config,
            stats.relu_input,
            stats.mean_sparsity,
            seed,
            li,
        );
        transform.assignments[li] = LayerAssignment {
            layer: layer.name.clone(),
            config: Some(config.clone()),
            damage,
            kept_fraction: config.kept_density(),
        };
    }
    transform
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_dnn::{Activation, LayerSpec};

    fn quality() -> ProxyAccuracyModel {
        ProxyAccuracyModel::new(0.761)
    }

    fn engine() -> &'static ExecutionEngine {
        ExecutionEngine::global()
    }

    /// A ReLU CNN-like spec with varying activation sparsity.
    fn relu_spec() -> NetworkSpec {
        NetworkSpec::new(
            "relu-net",
            vec![
                LayerSpec::linear("l0", 256, 256, 64, Activation::Relu),
                LayerSpec::linear("l1", 256, 256, 64, Activation::Relu)
                    .with_input_activation_sparsity(0.7),
                LayerSpec::linear("l2", 256, 256, 64, Activation::Relu)
                    .with_input_activation_sparsity(0.45),
                LayerSpec::linear("l3", 256, 64, 64, Activation::None)
                    .with_input_activation_sparsity(0.6),
            ],
        )
    }

    /// A GELU (BERT-like) spec: dense activations, pseudo-density path.
    fn gelu_spec() -> NetworkSpec {
        NetworkSpec::new(
            "gelu-net",
            vec![
                LayerSpec::linear("fc1", 256, 1024, 64, Activation::Gelu),
                LayerSpec::linear("fc2", 1024, 256, 64, Activation::None),
            ],
        )
    }

    #[test]
    fn select_config_matches_sparsity_budget() {
        let menu = PatternMenu::vegeta_m8();
        // Menu options by approximated sparsity: 1:8 = 0.875, 2:8 = 0.75, 2:8+1:8 = 0.625,
        // 4:8 = 0.5, 4:8+1:8 = 0.375, 4:8+2:8 = 0.25.
        // 60% sparse + alpha 0: best admissible option is 4:8 (0.5).
        let c = select_config(&menu, 2, 0.6, 0.0).unwrap();
        assert_eq!(c.to_string(), "4:8");
        // 70% sparse admits the composed 3:8 (2:8+1:8, approximated sparsity 0.625).
        assert_eq!(
            select_config(&menu, 2, 0.7, 0.0).unwrap().to_string(),
            "2:8+1:8"
        );
        // 80% sparse admits 2:8 (0.75).
        assert_eq!(
            select_config(&menu, 2, 0.8, 0.0).unwrap().to_string(),
            "2:8"
        );
        // 90% admits 1:8 (0.875).
        assert_eq!(
            select_config(&menu, 2, 0.9, 0.0).unwrap().to_string(),
            "1:8"
        );
        // Nearly dense input with no alpha: even the most conservative two-term option
        // (4:8+2:8, approximated sparsity 0.25) over-approximates.
        assert!(select_config(&menu, 2, 0.1, 0.0).is_none());
        // A large alpha forces an aggressive choice anyway.
        assert_eq!(
            select_config(&menu, 2, 0.1, 0.5).unwrap().to_string(),
            "4:8"
        );
    }

    #[test]
    fn alpha_increases_aggressiveness() {
        let menu = PatternMenu::vegeta_m8();
        let conservative = select_config(&menu, 2, 0.55, 0.0).unwrap();
        let aggressive = select_config(&menu, 2, 0.55, 0.25).unwrap();
        assert!(aggressive.approximated_sparsity() >= conservative.approximated_sparsity());
    }

    #[test]
    fn eligibility_rules() {
        let spec = relu_spec();
        assert!(!eligible_for_activation_tasd(&spec, 0));
        assert!(eligible_for_activation_tasd(&spec, 1));
        let gelu = gelu_spec();
        assert!(eligible_for_activation_tasd(&gelu, 1));
        assert!(!eligible_for_activation_tasd(&gelu, 0));
    }

    #[test]
    fn layer_wise_tasd_a_on_relu_network() {
        let spec = relu_spec();
        let profile = CalibrationProfile::synthetic(&spec, 4, 1);
        let menu = PatternMenu::vegeta_m8();
        let t = layer_wise(engine(), &spec, &profile, &menu, 2, 0.05, quality(), 1);
        assert!(t.meets_quality_threshold());
        // The 70%-sparse layer should get a configuration; MAC reduction should follow.
        assert!(t.assignment("l1").unwrap().config.is_some());
        assert!(
            t.mac_reduction(&spec) > 0.1,
            "reduction {}",
            t.mac_reduction(&spec)
        );
        // The first layer must stay dense.
        assert!(t.assignment("l0").unwrap().config.is_none());
    }

    #[test]
    fn gelu_network_still_benefits_via_pseudo_density() {
        let spec = gelu_spec();
        let profile = CalibrationProfile::synthetic(&spec, 4, 2);
        let menu = PatternMenu::vegeta_m8();
        let t = layer_wise(engine(), &spec, &profile, &menu, 2, 0.05, quality(), 2);
        assert!(t.meets_quality_threshold());
        // fc2 reads GELU outputs: pseudo-density allows a configuration even though the
        // tensor has no exact zeros.
        assert!(t.assignment("fc2").unwrap().config.is_some());
        assert!(t.mac_reduction(&spec) > 0.05);
    }

    #[test]
    fn layer_wise_beats_or_matches_network_wise() {
        // Use a per-layer sensitivity appropriate for a 4-layer toy model: the uniform
        // (network-wise) choice is then bound by its least-sparse layer, while the
        // layer-wise choice adapts per layer — the Fig. 14 comparison.
        let strict = ProxyAccuracyModel::new(0.761).with_sensitivity(0.1);
        let spec = relu_spec();
        let profile = CalibrationProfile::synthetic(&spec, 4, 3);
        let menu = PatternMenu::vegeta_m8();
        let lw = layer_wise(engine(), &spec, &profile, &menu, 2, 0.05, strict, 3);
        let nw = network_wise(engine(), &spec, &profile, &menu, 2, strict, 3);
        assert!(nw.meets_quality_threshold());
        assert!(lw.meets_quality_threshold());
        // Layer-wise adapts per layer and should match the uniform choice's compute
        // reduction (small tolerance: the uniform search is exhaustive, the per-layer
        // heuristic is not) while spending strictly less of the quality budget per unit of
        // reduction in the aggregate.
        assert!(
            lw.mac_reduction(&spec) >= nw.mac_reduction(&spec) - 0.05,
            "layer-wise {} vs network-wise {}",
            lw.mac_reduction(&spec),
            nw.mac_reduction(&spec)
        );
    }

    #[test]
    fn backoff_restores_quality_when_alpha_is_reckless() {
        let spec = relu_spec();
        let profile = CalibrationProfile::synthetic(&spec, 4, 4);
        let menu = PatternMenu::vegeta_m8();
        // An absurd alpha initially picks 1:8 everywhere; the quality loop must back off.
        let t = layer_wise(engine(), &spec, &profile, &menu, 2, 0.9, quality(), 4);
        assert!(t.meets_quality_threshold());
    }

    #[test]
    fn uniform_application_skips_ineligible_layers() {
        let spec = relu_spec();
        let profile = CalibrationProfile::synthetic(&spec, 4, 5);
        let cfg = TasdConfig::parse("4:8").unwrap();
        let t = apply_uniform(engine(), &spec, &profile, &cfg, quality(), 5);
        assert!(t.assignment("l0").unwrap().config.is_none());
        assert!(t.assignment("l1").unwrap().config.is_some());
    }
}

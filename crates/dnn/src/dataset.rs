//! Synthetic classification dataset for the end-to-end accuracy testbed.
//!
//! The paper measures ImageNet top-1 accuracy, which is not reproducible offline. This
//! dataset is the substitution: a Gaussian-cluster classification task whose accuracy under
//! a trained network responds to weight/activation approximation the same way a real
//! model's accuracy does (monotone degradation as more signal is dropped), giving the
//! TASDER selection algorithms a *true* accuracy metric to respect.

use serde::{Deserialize, Serialize};
use tasd_tensor::{Matrix, MatrixGenerator};

/// A labelled synthetic classification dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticDataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl SyntheticDataset {
    /// Generates a dataset of `samples` points in `features` dimensions spread over
    /// `classes` Gaussian clusters with unit within-cluster noise.
    ///
    /// `separation` controls how far apart cluster centres are (≈2.5 gives a task that a
    /// small MLP solves at 90–99 % accuracy, leaving visible headroom for approximation
    /// error to show up).
    pub fn gaussian_clusters(
        samples: usize,
        features: usize,
        classes: usize,
        separation: f32,
        seed: u64,
    ) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(features >= 1 && samples >= classes, "degenerate dataset");
        let mut gen = MatrixGenerator::seeded(seed);
        // Random cluster centres.
        let centers = gen.normal(classes, features, 0.0, separation);
        let mut data = Matrix::zeros(samples, features);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % classes;
            labels.push(class);
            for j in 0..features {
                data[(i, j)] = centers[(class, j)] + gen.normal_scalar(0.0, 1.0);
            }
        }
        SyntheticDataset {
            features: data,
            labels,
            num_classes: classes,
        }
    }

    /// The feature matrix, one sample per row.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Splits into `(train, test)` with the first `train_fraction` of samples (samples are
    /// interleaved by class, so the split is stratified).
    pub fn split(&self, train_fraction: f64) -> (SyntheticDataset, SyntheticDataset) {
        let n_train = ((self.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let take = |range: std::ops::Range<usize>| -> SyntheticDataset {
            let rows: Vec<Vec<f32>> = range
                .clone()
                .map(|i| self.features.row(i).to_vec())
                .collect();
            SyntheticDataset {
                features: if rows.is_empty() {
                    Matrix::zeros(0, self.num_features())
                } else {
                    Matrix::from_rows(&rows)
                },
                labels: self.labels[range].to_vec(),
                num_classes: self.num_classes,
            }
        };
        (take(0..n_train), take(n_train..self.len()))
    }

    /// A contiguous mini-batch `[start, start+len)` (clamped to the dataset size) as
    /// `(features, labels)`.
    pub fn batch(&self, start: usize, len: usize) -> (Matrix, &[usize]) {
        let end = (start + len).min(self.len());
        let start = start.min(end);
        let rows: Vec<Vec<f32>> = (start..end)
            .map(|i| self.features.row(i).to_vec())
            .collect();
        let feats = if rows.is_empty() {
            Matrix::zeros(0, self.num_features())
        } else {
            Matrix::from_rows(&rows)
        };
        (feats, &self.labels[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes_and_labels() {
        let ds = SyntheticDataset::gaussian_clusters(120, 16, 4, 2.0, 1);
        assert_eq!(ds.len(), 120);
        assert_eq!(ds.num_features(), 16);
        assert_eq!(ds.num_classes(), 4);
        assert!(ds.labels().iter().all(|&l| l < 4));
        // Stratified by construction: every class appears.
        for c in 0..4 {
            assert!(ds.labels().iter().filter(|&&l| l == c).count() >= 25);
        }
    }

    #[test]
    fn determinism() {
        let a = SyntheticDataset::gaussian_clusters(50, 8, 3, 2.0, 9);
        let b = SyntheticDataset::gaussian_clusters(50, 8, 3, 2.0, 9);
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn split_fractions() {
        let ds = SyntheticDataset::gaussian_clusters(100, 4, 2, 2.0, 3);
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.num_features(), 4);
    }

    #[test]
    fn clusters_are_separable() {
        // Nearest-centroid classification should already do well at high separation,
        // confirming the task carries signal.
        let ds = SyntheticDataset::gaussian_clusters(400, 16, 4, 3.0, 5);
        let mut centroids = vec![vec![0.0f64; 16]; 4];
        let mut counts = [0usize; 4];
        for i in 0..ds.len() {
            let c = ds.labels()[i];
            counts[c] += 1;
            for (j, slot) in centroids[c].iter_mut().enumerate() {
                *slot += ds.features()[(i, j)] as f64;
            }
        }
        for (centroid, &count) in centroids.iter_mut().zip(&counts) {
            for slot in centroid.iter_mut() {
                *slot /= count as f64;
            }
        }
        let mut correct = 0;
        for i in 0..ds.len() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d: f64 = (0..16)
                    .map(|j| {
                        let diff = ds.features()[(i, j)] as f64 - cent[j];
                        diff * diff
                    })
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == ds.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.9, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn batch_clamps_at_end() {
        let ds = SyntheticDataset::gaussian_clusters(10, 4, 2, 2.0, 3);
        let (feats, labels) = ds.batch(8, 5);
        assert_eq!(feats.rows(), 2);
        assert_eq!(labels.len(), 2);
        let (empty, l2) = ds.batch(20, 5);
        assert_eq!(empty.rows(), 0);
        assert!(l2.is_empty());
    }
}

//! Pruning utilities applied on top of materialized weights or network specs.

use crate::network::NetworkSpec;
use crate::weights::WeightSet;
use tasd_tensor::{magnitude_prune, Matrix, NmPattern};

/// Applies a per-layer weight-sparsity profile to a network spec (one value per layer,
/// in order). Extra profile entries are ignored; missing entries leave layers unchanged.
#[must_use]
pub fn apply_sparsity_profile(spec: &NetworkSpec, profile: &[f64]) -> NetworkSpec {
    let mut out = spec.clone();
    for (layer, &s) in out.layers.iter_mut().zip(profile) {
        layer.weight_sparsity = s.clamp(0.0, 1.0);
    }
    out
}

/// Globally magnitude-prunes a weight set to an overall target sparsity: all weights of all
/// layers are ranked together and the smallest are removed, which naturally gives different
/// layers different sparsity degrees (the behaviour behind the paper's Fig. 6 profile).
pub fn global_magnitude_prune(weights: &mut WeightSet, target_sparsity: f64) {
    let target_sparsity = target_sparsity.clamp(0.0, 1.0);
    // Collect all magnitudes to find the global threshold.
    let mut mags: Vec<f32> = Vec::new();
    for (_, w) in weights.iter() {
        mags.extend(w.iter().map(|&x| x.abs()));
    }
    if mags.is_empty() {
        return;
    }
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cutoff_idx = ((mags.len() as f64) * target_sparsity) as usize;
    let threshold = if cutoff_idx >= mags.len() {
        f32::INFINITY
    } else {
        mags[cutoff_idx]
    };
    let names: Vec<String> = weights.layer_names().to_vec();
    for name in names {
        let w = weights.weight_mut(&name).expect("iterating known layers");
        w.map_inplace(|x| if x.abs() < threshold { 0.0 } else { x });
    }
}

/// Magnitude-prunes a single weight matrix to the given sparsity (re-exported convenience).
#[must_use]
pub fn prune_layer(weights: &Matrix, sparsity: f64) -> Matrix {
    magnitude_prune(weights, sparsity)
}

/// Structurally prunes every layer of a weight set to the N:M pattern (the HW-aware
/// structured-pruning baseline, which in the paper requires model fine-tuning to recover
/// accuracy).
pub fn structured_prune(weights: &mut WeightSet, pattern: NmPattern) {
    let names: Vec<String> = weights.layer_names().to_vec();
    for name in names {
        let w = weights.weight_mut(&name).expect("iterating known layers");
        pattern.view_inplace(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::LayerSpec;
    use crate::weights::{PruningRegime, WeightInit};

    fn spec() -> NetworkSpec {
        NetworkSpec::new(
            "t",
            vec![
                LayerSpec::linear("a", 64, 64, 4, Activation::Relu),
                LayerSpec::linear("b", 128, 64, 4, Activation::Relu),
                LayerSpec::linear("c", 32, 16, 4, Activation::None),
            ],
        )
    }

    #[test]
    fn profile_application() {
        let s = apply_sparsity_profile(&spec(), &[0.9, 0.5]);
        assert_eq!(s.layers[0].weight_sparsity, 0.9);
        assert_eq!(s.layers[1].weight_sparsity, 0.5);
        assert_eq!(s.layers[2].weight_sparsity, 0.0);
    }

    #[test]
    fn global_prune_hits_overall_target_with_nonuniform_layers() {
        let mut ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 11);
        global_magnitude_prune(&mut ws, 0.8);
        let overall = ws.overall_sparsity();
        assert!((overall - 0.8).abs() < 0.01, "overall {overall}");
        // Kaiming init gives different layers different scales, so per-layer sparsity
        // should not be uniform.
        let profile = ws.sparsity_profile();
        let spread = profile.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - profile.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread > 0.02, "profile {profile:?}");
    }

    #[test]
    fn global_prune_extremes() {
        let mut ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 2);
        global_magnitude_prune(&mut ws, 0.0);
        assert!(ws.overall_sparsity() < 1e-6);
        global_magnitude_prune(&mut ws, 1.0);
        assert!((ws.overall_sparsity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn structured_prune_enforces_pattern_everywhere() {
        let mut ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 3);
        let p = NmPattern::new(1, 4).unwrap();
        structured_prune(&mut ws, p);
        for (_, w) in ws.iter() {
            assert!(p.is_satisfied_by(w));
        }
        assert!((ws.overall_sparsity() - 0.75).abs() < 0.01);
    }

    #[test]
    fn prune_layer_matches_tensor_primitive() {
        let m = Matrix::from_rows(&[vec![0.1, 2.0, -3.0, 0.4]]);
        let p = prune_layer(&m, 0.5);
        assert_eq!(p.row(0), &[0.0, 2.0, -3.0, 0.0]);
    }
}

//! Materialized weight tensors for a network spec.
//!
//! The paper takes pretrained weights from SparseZoo / TorchVision. Offline, this module
//! synthesizes weight matrices with the same *statistical structure* that matters to TASD:
//! Gaussian magnitudes, per-layer unstructured sparsity obtained by magnitude pruning (so
//! small weights are the zeros), or exact N:M structured sparsity for the structured-pruned
//! baselines.

use crate::network::NetworkSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tasd_tensor::{magnitude_prune, sparsity_degree, Matrix, MatrixGenerator, NmPattern};

/// How weight values are initialized before pruning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum WeightInit {
    /// Standard normal scaled by `1/sqrt(fan_in)` (Kaiming-style), the default.
    #[default]
    Kaiming,
    /// Standard normal with the given standard deviation.
    Normal(f32),
}

/// The pruning regime applied when materializing weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PruningRegime {
    /// Keep the layer's `weight_sparsity` from the spec via unstructured magnitude pruning.
    UnstructuredFromSpec,
    /// Ignore the spec and keep the weights dense.
    Dense,
    /// Prune every layer to the given N:M structured pattern (HW-aware structured pruning,
    /// the baseline that requires fine-tuning in the paper).
    Structured(NmPattern),
}

/// Materialized weight matrices for every layer of a [`NetworkSpec`], keyed by layer name.
///
/// Weight matrices use the GEMM orientation `(K, N)` so that a layer computes
/// `output = input(M×K) · W(K×N)`.
#[derive(Debug, Clone)]
pub struct WeightSet {
    weights: HashMap<String, Matrix>,
    order: Vec<String>,
}

impl WeightSet {
    /// Materializes weights for `spec` with the given pruning regime, deterministically
    /// from `seed`.
    pub fn materialize(
        spec: &NetworkSpec,
        regime: PruningRegime,
        init: WeightInit,
        seed: u64,
    ) -> Self {
        let entries: Vec<(String, Matrix)> = spec
            .layers
            .par_iter()
            .enumerate()
            .map(|(i, layer)| {
                let (k, n) = layer.kind.weight_shape();
                let mut gen = MatrixGenerator::seeded(seed.wrapping_add(i as u64 * 7919));
                let std = match init {
                    WeightInit::Kaiming => (2.0 / k as f32).sqrt(),
                    WeightInit::Normal(s) => s,
                };
                let dense = gen.normal(k, n, 0.0, std);
                let pruned = match regime {
                    PruningRegime::Dense => dense,
                    PruningRegime::UnstructuredFromSpec => {
                        magnitude_prune(&dense, layer.weight_sparsity)
                    }
                    PruningRegime::Structured(pattern) => pattern.view(&dense),
                };
                (layer.name.clone(), pruned)
            })
            .collect();
        let order = spec.layers.iter().map(|l| l.name.clone()).collect();
        WeightSet {
            weights: entries.into_iter().collect(),
            order,
        }
    }

    /// The weight matrix of a layer, by name.
    pub fn weight(&self, layer_name: &str) -> Option<&Matrix> {
        self.weights.get(layer_name)
    }

    /// Mutable access to the weight matrix of a layer, by name.
    pub fn weight_mut(&mut self, layer_name: &str) -> Option<&mut Matrix> {
        self.weights.get_mut(layer_name)
    }

    /// Replaces a layer's weights (used when TASDER installs decomposed weights).
    ///
    /// # Panics
    ///
    /// Panics if the layer does not exist or the replacement has a different shape.
    pub fn replace(&mut self, layer_name: &str, new_weights: Matrix) {
        let slot = self
            .weights
            .get_mut(layer_name)
            .unwrap_or_else(|| panic!("unknown layer {layer_name}"));
        assert_eq!(
            slot.shape(),
            new_weights.shape(),
            "replacement weight shape mismatch for {layer_name}"
        );
        *slot = new_weights;
    }

    /// Layer names in network order.
    pub fn layer_names(&self) -> &[String] {
        &self.order
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when the set holds no layers.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterator over `(name, weights)` in network order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.order
            .iter()
            .map(move |n| (n.as_str(), &self.weights[n]))
    }

    /// Per-layer weight sparsity degrees, in network order.
    pub fn sparsity_profile(&self) -> Vec<f64> {
        self.order
            .iter()
            .map(|n| sparsity_degree(&self.weights[n]))
            .collect()
    }

    /// Overall sparsity across all layers (element-weighted).
    pub fn overall_sparsity(&self) -> f64 {
        let total: usize = self.order.iter().map(|n| self.weights[n].len()).sum();
        if total == 0 {
            return 0.0;
        }
        let zeros: usize = self
            .order
            .iter()
            .map(|n| self.weights[n].count_zeros())
            .sum();
        zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::LayerSpec;
    use tasd_tensor::Conv2dDims;

    fn spec() -> NetworkSpec {
        NetworkSpec::new(
            "t",
            vec![
                LayerSpec::conv(
                    "c1",
                    Conv2dDims::square(8, 16, 16, 3, 1, 1),
                    Activation::Relu,
                )
                .with_weight_sparsity(0.9),
                LayerSpec::linear("f1", 64, 32, 4, Activation::Relu).with_weight_sparsity(0.5),
                LayerSpec::linear("f2", 32, 10, 4, Activation::None),
            ],
        )
    }

    #[test]
    fn materialize_respects_spec_sparsity() {
        let ws = WeightSet::materialize(
            &spec(),
            PruningRegime::UnstructuredFromSpec,
            WeightInit::Kaiming,
            1,
        );
        assert_eq!(ws.len(), 3);
        let profile = ws.sparsity_profile();
        assert!(
            (profile[0] - 0.9).abs() < 5e-3,
            "layer0 sparsity {}",
            profile[0]
        );
        assert!((profile[1] - 0.5).abs() < 5e-3);
        assert!(profile[2] < 1e-6);
        assert_eq!(ws.weight("c1").unwrap().shape(), (8 * 9, 16));
        assert_eq!(ws.weight("f1").unwrap().shape(), (64, 32));
    }

    #[test]
    fn dense_regime_ignores_spec() {
        let ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 1);
        assert!(ws.overall_sparsity() < 1e-6);
    }

    #[test]
    fn structured_regime_satisfies_pattern() {
        let p = NmPattern::new(2, 4).unwrap();
        let ws = WeightSet::materialize(
            &spec(),
            PruningRegime::Structured(p),
            WeightInit::Kaiming,
            3,
        );
        for (_, w) in ws.iter() {
            assert!(p.is_satisfied_by(w));
        }
        assert!((ws.overall_sparsity() - 0.5).abs() < 0.01);
    }

    #[test]
    fn materialization_is_deterministic() {
        let a = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 7);
        let b = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 7);
        for ((_, wa), (_, wb)) in a.iter().zip(b.iter()) {
            assert_eq!(wa, wb);
        }
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 5);
        // fan_in 72 for c1 vs 32 for f2 -> smaller std for c1.
        let std = |m: &Matrix| {
            let mean = m.sum() / m.len() as f32;
            (m.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32).sqrt()
        };
        assert!(std(ws.weight("c1").unwrap()) < std(ws.weight("f2").unwrap()));
    }

    #[test]
    fn replace_validates_shape() {
        let mut ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 2);
        let new = Matrix::zeros(64, 32);
        ws.replace("f1", new.clone());
        assert_eq!(ws.weight("f1").unwrap(), &new);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn replace_rejects_wrong_shape() {
        let mut ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 2);
        ws.replace("f1", Matrix::zeros(2, 2));
    }

    #[test]
    fn iteration_order_matches_network() {
        let ws = WeightSet::materialize(&spec(), PruningRegime::Dense, WeightInit::Kaiming, 2);
        let names: Vec<&str> = ws.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["c1", "f1", "f2"]);
    }
}

//! Layer IR: CONV/FC layers and their GEMM lowering.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};
use std::fmt;
use tasd_tensor::Conv2dDims;

/// The kind of a compute layer that TASD can be applied to.
///
/// Only convolution and fully-connected layers are modelled because they dominate
/// execution time and both lower to matrix multiplication (paper §4.1). Attention
/// projections and MLP blocks of Transformers are expressed as [`LayerKind::Linear`]
/// layers with the appropriate `M` (token count) dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// A 2-D convolution, lowered to GEMM through im2col.
    Conv2d(Conv2dDims),
    /// A fully-connected (dense / linear) layer applied to `tokens` rows of activations.
    Linear {
        /// Input feature dimension (GEMM K).
        in_features: usize,
        /// Output feature dimension (GEMM N).
        out_features: usize,
        /// Number of rows the layer is applied to (batch × sequence length; GEMM M).
        tokens: usize,
    },
}

impl LayerKind {
    /// GEMM dimensions `(M, N, K)` of this layer for a batch of `batch` inputs.
    ///
    /// For convolutions, `M` scales with the number of output pixels per image times the
    /// batch; for linear layers the stored `tokens` count is per-input and also scales with
    /// the batch.
    pub fn gemm_dims(&self, batch: usize) -> (usize, usize, usize) {
        match self {
            LayerKind::Conv2d(dims) => dims.gemm_dims(batch),
            LayerKind::Linear {
                in_features,
                out_features,
                tokens,
            } => (tokens * batch, *out_features, *in_features),
        }
    }

    /// Shape of the weight matrix in the GEMM formulation, `(K, N)`:
    /// `K = in_channels·kh·kw` (conv) or `in_features` (linear), `N = out_channels` or
    /// `out_features`.
    pub fn weight_shape(&self) -> (usize, usize) {
        let (_, n, k) = self.gemm_dims(1);
        (k, n)
    }

    /// Number of weight parameters.
    pub fn weight_params(&self) -> usize {
        let (k, n) = self.weight_shape();
        k * n
    }

    /// Dense MAC count for a batch of `batch` inputs.
    pub fn dense_macs(&self, batch: usize) -> u64 {
        let (m, n, k) = self.gemm_dims(batch);
        m as u64 * n as u64 * k as u64
    }

    /// Returns `true` for convolution layers.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerKind::Conv2d(_))
    }
}

/// A named CONV/FC layer within a network, together with the activation that follows it
/// and the weight sparsity it was (notionally) pruned to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `"layer3.0.conv2"` or `"encoder.0.ffn.fc1"`).
    pub name: String,
    /// The layer's compute kind and geometry.
    pub kind: LayerKind,
    /// Activation function applied to this layer's output.
    pub activation: Activation,
    /// Weight sparsity degree this layer carries in the pruned model (0.0 for dense
    /// models). Per-layer values come from SparseZoo-like profiles in `tasd-models`.
    pub weight_sparsity: f64,
    /// Expected sparsity degree of this layer's *input* activations (0.0 when the
    /// preceding activation is GELU/Swish or the layer reads the network input).
    pub input_activation_sparsity: f64,
}

impl LayerSpec {
    /// Creates a convolution layer spec with dense weights and dense input activations.
    pub fn conv(name: impl Into<String>, dims: Conv2dDims, activation: Activation) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv2d(dims),
            activation,
            weight_sparsity: 0.0,
            input_activation_sparsity: 0.0,
        }
    }

    /// Creates a linear layer spec with dense weights and dense input activations.
    pub fn linear(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        tokens: usize,
        activation: Activation,
    ) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Linear {
                in_features,
                out_features,
                tokens,
            },
            activation,
            weight_sparsity: 0.0,
            input_activation_sparsity: 0.0,
        }
    }

    /// Sets the weight sparsity degree, returning the modified spec (builder style).
    #[must_use]
    pub fn with_weight_sparsity(mut self, sparsity: f64) -> Self {
        self.weight_sparsity = sparsity.clamp(0.0, 1.0);
        self
    }

    /// Sets the expected input-activation sparsity degree, returning the modified spec.
    #[must_use]
    pub fn with_input_activation_sparsity(mut self, sparsity: f64) -> Self {
        self.input_activation_sparsity = sparsity.clamp(0.0, 1.0);
        self
    }

    /// GEMM dimensions `(M, N, K)` for a batch of `batch` inputs.
    pub fn gemm_dims(&self, batch: usize) -> (usize, usize, usize) {
        self.kind.gemm_dims(batch)
    }

    /// Dense MAC count for a batch of `batch` inputs.
    pub fn dense_macs(&self, batch: usize) -> u64 {
        self.kind.dense_macs(batch)
    }

    /// Number of weight parameters of this layer.
    pub fn weight_params(&self) -> usize {
        self.kind.weight_params()
    }

    /// Number of non-zero weights implied by the recorded weight sparsity.
    pub fn weight_nonzeros(&self) -> usize {
        ((self.weight_params() as f64) * (1.0 - self.weight_sparsity)).round() as usize
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (m, n, k) = self.gemm_dims(1);
        write!(
            f,
            "{} [{} M{m}-N{n}-K{k}, act={}, w_sparsity={:.2}]",
            self.name,
            if self.kind.is_conv() { "conv" } else { "fc" },
            self.activation,
            self.weight_sparsity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_gemm_dims_match_im2col() {
        // Paper Table 4, dense ResNet-50 L2: M3136-N64-K576 (3x3x64 conv at 56x56).
        let dims = Conv2dDims::square(64, 64, 56, 3, 1, 1);
        let spec = LayerSpec::conv("rn50.l2", dims, Activation::Relu);
        assert_eq!(spec.gemm_dims(1), (3136, 64, 576));
        assert_eq!(spec.kind.weight_shape(), (576, 64));
        assert_eq!(spec.weight_params(), 576 * 64);
        assert!(spec.kind.is_conv());
    }

    #[test]
    fn linear_gemm_dims() {
        // Paper Table 4, dense BERT L2: M3072-N128-K768 -> FFN fc1 with 128 tokens.
        let spec = LayerSpec::linear("bert.ffn1", 768, 3072, 128, Activation::Gelu);
        assert_eq!(spec.gemm_dims(1), (128, 3072, 768));
        assert_eq!(spec.gemm_dims(4), (512, 3072, 768));
        assert_eq!(spec.kind.weight_shape(), (768, 3072));
        assert!(!spec.kind.is_conv());
    }

    #[test]
    fn macs_scale_with_batch() {
        let spec = LayerSpec::linear("fc", 128, 256, 16, Activation::Relu);
        assert_eq!(spec.dense_macs(1), 16 * 256 * 128);
        assert_eq!(spec.dense_macs(8), 8 * 16 * 256 * 128);
    }

    #[test]
    fn builder_clamps_sparsity() {
        let spec = LayerSpec::linear("fc", 8, 8, 1, Activation::None)
            .with_weight_sparsity(1.5)
            .with_input_activation_sparsity(-0.5);
        assert_eq!(spec.weight_sparsity, 1.0);
        assert_eq!(spec.input_activation_sparsity, 0.0);
        assert_eq!(spec.weight_nonzeros(), 0);
    }

    #[test]
    fn weight_nonzeros_rounds() {
        let spec = LayerSpec::linear("fc", 10, 10, 1, Activation::None).with_weight_sparsity(0.95);
        assert_eq!(spec.weight_nonzeros(), 5);
    }

    #[test]
    fn display_contains_dims_and_kind() {
        let spec = LayerSpec::linear("fc1", 768, 768, 128, Activation::Gelu);
        let s = spec.to_string();
        assert!(s.contains("fc1") && s.contains("M128") && s.contains("gelu"));
    }
}

//! Activation calibration: per-layer sparsity and pseudo-density statistics.
//!
//! TASD-A cannot inspect activations exhaustively at deployment time, so TASDER profiles
//! the model on a small calibration set (≈1000 images in the paper) and records, per
//! layer, the distribution of activation sparsity (ReLU networks) or pseudo-density
//! (GELU/Swish networks). Those statistics drive the per-layer configuration choice
//! (paper §4.3).

use crate::executable::Mlp;
use crate::network::NetworkSpec;
use serde::{Deserialize, Serialize};
use tasd::ExecutionEngine;
use tasd_tensor::stats::RunningStats;
use tasd_tensor::{pseudo_density, sparsity_degree, Matrix, MatrixGenerator};

/// Fraction of a tensor's total magnitude that the pseudo-density statistic preserves
/// (paper §4.3 uses "a fixed percentage (e.g., 99%)"; 95% is the calibrated choice here,
/// matching how skewed the synthetic GELU distributions are).
pub const PSEUDO_DENSITY_PRESERVE: f64 = 0.95;

/// Summary of one layer's input-activation behaviour over the calibration set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationStats {
    /// Layer name.
    pub layer: String,
    /// Mean activation sparsity degree across calibration batches.
    pub mean_sparsity: f64,
    /// Minimum observed sparsity (the conservative value TASD-A keys off by default —
    /// a layer is only as sparse as its densest batch).
    pub min_sparsity: f64,
    /// 99th-percentile *density* converted to sparsity, i.e. the sparsity that 99 % of
    /// batches meet or exceed.
    pub p01_sparsity: f64,
    /// Mean pseudo-density (fraction of elements needed to preserve 95 % of magnitude).
    pub mean_pseudo_density: f64,
    /// Whether this layer's input came from a sparsity-inducing (ReLU-family) activation.
    pub relu_input: bool,
}

impl ActivationStats {
    /// The *effective sparsity* TASD-A should use for this layer: observed sparsity for
    /// ReLU inputs, `1 - pseudo_density` for dense (GELU/Swish) inputs (paper §4.3).
    pub fn effective_sparsity(&self) -> f64 {
        if self.relu_input {
            self.min_sparsity
        } else {
            (1.0 - self.mean_pseudo_density).max(0.0)
        }
    }
}

/// The full calibration profile of a network: one [`ActivationStats`] per CONV/FC layer,
/// in network order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationProfile {
    /// Per-layer statistics.
    pub layers: Vec<ActivationStats>,
    /// Number of calibration batches observed.
    pub num_batches: usize,
}

impl CalibrationProfile {
    /// Statistics for a layer by name.
    pub fn layer(&self, name: &str) -> Option<&ActivationStats> {
        self.layers.iter().find(|l| l.layer == name)
    }

    /// Profiles an executable MLP over calibration inputs split into `num_batches` equal
    /// batches. The calibration forward passes dispatch through `engine`.
    pub fn from_executable(
        engine: &ExecutionEngine,
        mlp: &Mlp,
        inputs: &Matrix,
        num_batches: usize,
    ) -> Self {
        let num_batches = num_batches.max(1);
        let batch_rows = (inputs.rows() / num_batches).max(1);
        let mut per_layer: Vec<(RunningStats, RunningStats)> = (0..mlp.num_layers())
            .map(|_| (RunningStats::new(), RunningStats::new()))
            .collect();
        let mut batches_done = 0usize;
        let mut start = 0usize;
        while start < inputs.rows() {
            let end = (start + batch_rows).min(inputs.rows());
            let batch = inputs.block(start, 0, end - start, inputs.cols());
            let trace = mlp.forward_trace(engine, &batch);
            for (li, layer_input) in trace.layer_inputs.iter().enumerate() {
                per_layer[li].0.push(sparsity_degree(layer_input));
                per_layer[li]
                    .1
                    .push(pseudo_density(layer_input, PSEUDO_DENSITY_PRESERVE));
            }
            batches_done += 1;
            start = end;
        }
        let layers = per_layer
            .into_iter()
            .enumerate()
            .map(|(li, (sparsity, pseudo))| {
                // The input of layer li is produced by layer li-1's activation; the very
                // first layer reads the raw network input (dense).
                let relu_input = li > 0 && mlp.layers()[li - 1].activation.induces_sparsity();
                ActivationStats {
                    layer: format!("fc{li}"),
                    mean_sparsity: sparsity.mean().unwrap_or(0.0),
                    min_sparsity: sparsity.min().unwrap_or(0.0),
                    p01_sparsity: sparsity.percentile(0.01).unwrap_or(0.0),
                    mean_pseudo_density: pseudo.mean().unwrap_or(1.0),
                    relu_input,
                }
            })
            .collect();
        CalibrationProfile {
            layers,
            num_batches: batches_done,
        }
    }

    /// Builds a calibration profile for a paper-scale [`NetworkSpec`] by sampling synthetic
    /// activation tensors that match each layer's recorded `input_activation_sparsity`
    /// (ReLU inputs) or a GELU-shaped dense distribution (non-ReLU inputs).
    ///
    /// This is the offline substitution for running ImageNet calibration batches through
    /// the real model: the statistics TASD-A consumes (sparsity / pseudo-density per layer
    /// with small batch-to-batch variation) are reproduced directly.
    pub fn synthetic(spec: &NetworkSpec, num_batches: usize, seed: u64) -> Self {
        let num_batches = num_batches.max(1);
        let mut gen = MatrixGenerator::seeded(seed);
        let layers = spec
            .layers
            .iter()
            .enumerate()
            .map(|(li, layer)| {
                let relu_input = layer.input_activation_sparsity > 0.0;
                let mut sparsity = RunningStats::new();
                let mut pseudo = RunningStats::new();
                for _ in 0..num_batches {
                    // Small sample of the layer's input activations; 64x(K up to 512)
                    // keeps calibration cheap while giving stable statistics.
                    let (_, _, k) = layer.gemm_dims(1);
                    let cols = k.clamp(16, 512);
                    let sample = if relu_input {
                        // Batch-to-batch jitter of a couple of percent, as in Fig. 6.
                        let jitter = (gen.unit() as f64 - 0.5) * 0.04;
                        let target = (layer.input_activation_sparsity + jitter).clamp(0.0, 0.999);
                        gen.sparse_normal(64, cols, target).map(|x| x.abs())
                    } else {
                        gen.gelu_activations(64, cols)
                    };
                    sparsity.push(sparsity_degree(&sample));
                    pseudo.push(pseudo_density(&sample, PSEUDO_DENSITY_PRESERVE));
                }
                ActivationStats {
                    layer: layer.name.clone(),
                    mean_sparsity: sparsity.mean().unwrap_or(0.0),
                    min_sparsity: sparsity.min().unwrap_or(0.0),
                    p01_sparsity: sparsity.percentile(0.01).unwrap_or(0.0),
                    mean_pseudo_density: pseudo.mean().unwrap_or(1.0),
                    relu_input: relu_input && li < usize::MAX,
                }
            })
            .collect();
        CalibrationProfile {
            layers,
            num_batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::LayerSpec;

    #[test]
    fn executable_profile_sees_relu_sparsity() {
        let mlp = Mlp::new(&[16, 64, 32, 4], Activation::Relu, 3);
        let inputs = MatrixGenerator::seeded(5).normal(128, 16, 0.0, 1.0);
        let profile =
            CalibrationProfile::from_executable(ExecutionEngine::global(), &mlp, &inputs, 4);
        assert_eq!(profile.layers.len(), 3);
        assert_eq!(profile.num_batches, 4);
        // First layer reads dense network input.
        assert!(!profile.layers[0].relu_input);
        assert!(profile.layers[0].mean_sparsity < 0.05);
        // Hidden layers read ReLU outputs: roughly half sparse.
        for l in &profile.layers[1..] {
            assert!(l.relu_input);
            assert!(
                (0.2..0.8).contains(&l.mean_sparsity),
                "layer {} sparsity {}",
                l.layer,
                l.mean_sparsity
            );
            assert!(l.min_sparsity <= l.mean_sparsity + 1e-12);
            assert_eq!(l.effective_sparsity(), l.min_sparsity);
        }
    }

    #[test]
    fn gelu_network_uses_pseudo_density() {
        let mlp = Mlp::new(&[16, 64, 4], Activation::Gelu, 3);
        let inputs = MatrixGenerator::seeded(6).normal(64, 16, 0.0, 1.0);
        let profile =
            CalibrationProfile::from_executable(ExecutionEngine::global(), &mlp, &inputs, 2);
        let hidden = &profile.layers[1];
        // GELU input: no exact sparsity but meaningful pseudo-density < 1.
        assert!(!hidden.relu_input);
        assert!(hidden.mean_sparsity < 0.05);
        assert!(hidden.mean_pseudo_density < 0.95);
        assert!(hidden.effective_sparsity() > 0.0);
    }

    #[test]
    fn synthetic_profile_tracks_spec_sparsity() {
        let spec = NetworkSpec::new(
            "syn",
            vec![
                LayerSpec::linear("l0", 128, 128, 16, Activation::Relu),
                LayerSpec::linear("l1", 128, 128, 16, Activation::Relu)
                    .with_input_activation_sparsity(0.6),
                LayerSpec::linear("l2", 128, 128, 16, Activation::Gelu)
                    .with_input_activation_sparsity(0.3),
                LayerSpec::linear("l3", 128, 128, 16, Activation::None),
            ],
        );
        let profile = CalibrationProfile::synthetic(&spec, 8, 1);
        assert_eq!(profile.layers.len(), 4);
        assert!((profile.layer("l1").unwrap().mean_sparsity - 0.6).abs() < 0.05);
        assert!((profile.layer("l2").unwrap().mean_sparsity - 0.3).abs() < 0.05);
        // l3 reads a dense (no recorded sparsity) input -> pseudo-density path.
        let l3 = profile.layer("l3").unwrap();
        assert!(!l3.relu_input);
        assert!(l3.mean_pseudo_density <= 1.0);
        assert!(profile.layer("does-not-exist").is_none());
    }

    #[test]
    fn synthetic_profile_is_deterministic() {
        let spec = NetworkSpec::new(
            "syn",
            vec![LayerSpec::linear("l0", 64, 64, 8, Activation::Relu)
                .with_input_activation_sparsity(0.5)],
        );
        let a = CalibrationProfile::synthetic(&spec, 4, 9);
        let b = CalibrationProfile::synthetic(&spec, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn effective_sparsity_switches_on_input_kind() {
        let relu = ActivationStats {
            layer: "a".into(),
            mean_sparsity: 0.5,
            min_sparsity: 0.45,
            p01_sparsity: 0.46,
            mean_pseudo_density: 0.2,
            relu_input: true,
        };
        assert_eq!(relu.effective_sparsity(), 0.45);
        let gelu = ActivationStats {
            relu_input: false,
            ..relu.clone()
        };
        assert!((gelu.effective_sparsity() - 0.8).abs() < 1e-12);
    }
}

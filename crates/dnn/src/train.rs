//! Mini-batch SGD training for the executable MLP (softmax cross-entropy).
//!
//! Only what the end-to-end testbed needs: enough of a trainer to reach high accuracy on
//! the synthetic classification task so that TASD-induced accuracy drops are measurable.

use crate::dataset::SyntheticDataset;
use crate::executable::Mlp;
use tasd::ExecutionEngine;
use tasd_tensor::Matrix;

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.05,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Training-set accuracy after the final epoch.
    pub final_train_accuracy: f64,
}

/// Row-wise softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(f32::MIN_POSITIVE);
        }
    }
    out
}

/// Mean cross-entropy loss of `logits` against integer `labels`.
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs[(i, label)].max(1e-12);
        loss -= (p as f64).ln();
    }
    loss / labels.len() as f64
}

/// Trains `mlp` in place on `data` with mini-batch SGD and softmax cross-entropy. All
/// forward and backward GEMMs dispatch through `engine`.
pub fn train(
    engine: &ExecutionEngine,
    mlp: &mut Mlp,
    data: &SyntheticDataset,
    config: &TrainConfig,
) -> TrainReport {
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0usize;
        while start < data.len() {
            let (x, labels) = data.batch(start, config.batch_size);
            start += config.batch_size;
            if labels.is_empty() {
                break;
            }
            epoch_loss += train_step(engine, mlp, &x, labels, config.learning_rate);
            batches += 1;
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
    }
    let final_train_accuracy = mlp.accuracy(engine, data.features(), data.labels());
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

/// One SGD step on a mini-batch; returns the batch's mean cross-entropy loss.
fn train_step(
    engine: &ExecutionEngine,
    mlp: &mut Mlp,
    x: &Matrix,
    labels: &[usize],
    lr: f32,
) -> f64 {
    // Forward pass, caching layer inputs and pre-activations.
    let mut inputs: Vec<Matrix> = Vec::with_capacity(mlp.num_layers());
    let mut preacts: Vec<Matrix> = Vec::with_capacity(mlp.num_layers());
    let mut act = x.clone();
    for layer in mlp.layers() {
        inputs.push(act.clone());
        let mut z = engine
            .gemm(&act, &layer.weights)
            .expect("trainer shape mismatch");
        for i in 0..z.rows() {
            let row = z.row_mut(i);
            for (j, b) in layer.bias.iter().enumerate() {
                row[j] += b;
            }
        }
        preacts.push(z.clone());
        act = layer.activation.apply(&z);
    }
    let logits = act;
    let loss = cross_entropy(&logits, labels);

    // Backward pass: dL/dlogits = softmax - onehot, averaged over the batch.
    let batch = labels.len() as f32;
    let mut grad = softmax(&logits);
    for (i, &label) in labels.iter().enumerate() {
        grad[(i, label)] -= 1.0;
    }
    grad = grad.scale(1.0 / batch);

    let num_layers = mlp.num_layers();
    for li in (0..num_layers).rev() {
        // Gradient through the activation of layer li (the last layer has no activation).
        let layer_act = mlp.layers()[li].activation;
        let dz = if li == num_layers - 1 {
            grad.clone()
        } else {
            let pre = &preacts[li];
            Matrix::from_fn(grad.rows(), grad.cols(), |i, j| {
                grad[(i, j)] * layer_act.derivative(pre[(i, j)])
            })
        };
        // Weight and bias gradients.
        let dw = engine
            .gemm(&inputs[li].transpose(), &dz)
            .expect("gradient shapes");
        let mut db = vec![0.0f32; dz.cols()];
        for i in 0..dz.rows() {
            for (j, acc) in db.iter_mut().enumerate() {
                *acc += dz[(i, j)];
            }
        }
        // Gradient w.r.t. the layer input, to propagate backwards.
        let dinput = engine
            .gemm(&dz, &mlp.layers()[li].weights.transpose())
            .expect("gradient shapes");
        // SGD update.
        {
            let layer = &mut mlp.layers_mut()[li];
            layer.weights = layer.weights.try_sub(&dw.scale(lr)).expect("same shape");
            for (b, g) in layer.bias.iter_mut().zip(&db) {
                *b -= lr * g;
            }
        }
        grad = dinput;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v > 0.0));
        }
        // Monotone: larger logit -> larger probability.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Matrix::from_rows(&[vec![5.0, 0.0]]);
        let bad = Matrix::from_rows(&[vec![0.0, 5.0]]);
        assert!(cross_entropy(&good, &[0]) < cross_entropy(&bad, &[0]));
        assert!(cross_entropy(&good, &[0]) < 0.1);
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let engine = ExecutionEngine::global();
        let data = SyntheticDataset::gaussian_clusters(400, 16, 4, 2.5, 42);
        let (train_set, test_set) = data.split(0.8);
        let mut mlp = Mlp::new(&[16, 32, 4], Activation::Relu, 7);
        let before = mlp.accuracy(engine, test_set.features(), test_set.labels());
        let report = train(
            engine,
            &mut mlp,
            &train_set,
            &TrainConfig {
                epochs: 40,
                batch_size: 32,
                learning_rate: 0.05,
            },
        );
        let after = mlp.accuracy(engine, test_set.features(), test_set.labels());
        assert!(
            report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap(),
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        assert!(
            after > before,
            "accuracy did not improve ({before} -> {after})"
        );
        assert!(after > 0.85, "test accuracy too low: {after}");
        assert!(report.final_train_accuracy > 0.85);
    }

    #[test]
    fn training_works_with_gelu_hidden_layers() {
        let data = SyntheticDataset::gaussian_clusters(300, 12, 3, 2.5, 17);
        let mut mlp = Mlp::new(&[12, 24, 3], Activation::Gelu, 3);
        let report = train(
            ExecutionEngine::global(),
            &mut mlp,
            &data,
            &TrainConfig {
                epochs: 30,
                batch_size: 32,
                learning_rate: 0.05,
            },
        );
        assert!(
            report.final_train_accuracy > 0.8,
            "{}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn empty_batch_is_harmless() {
        assert_eq!(cross_entropy(&Matrix::zeros(0, 3), &[]), 0.0);
    }
}

//! Network specifications: an ordered collection of CONV/FC layers.

use crate::layer::LayerSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A network specification: the ordered CONV/FC layers of a model, with their geometry,
/// activations, and sparsity profile.
///
/// A `NetworkSpec` is the unit TASDER optimizes over and the unit the accelerator model
/// simulates. It does **not** hold weight values — materialize those with
/// [`crate::WeightSet`] when an experiment needs actual tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Model name (e.g. `"resnet50"`, `"bert-base"`).
    pub name: String,
    /// Ordered CONV/FC layers.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Creates a network spec from its layers.
    pub fn new(name: impl Into<String>, layers: Vec<LayerSpec>) -> Self {
        NetworkSpec {
            name: name.into(),
            layers,
        }
    }

    /// Number of CONV/FC layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Iterator over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, LayerSpec> {
        self.layers.iter()
    }

    /// Total dense MACs for a batch of `batch` inputs.
    pub fn total_dense_macs(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.dense_macs(batch)).sum()
    }

    /// Total number of weight parameters across CONV/FC layers.
    pub fn total_weight_params(&self) -> usize {
        self.layers.iter().map(LayerSpec::weight_params).sum()
    }

    /// Overall weight sparsity of the model: the parameter-weighted mean of per-layer
    /// sparsity degrees.
    pub fn overall_weight_sparsity(&self) -> f64 {
        let total = self.total_weight_params();
        if total == 0 {
            return 0.0;
        }
        let zeros: f64 = self
            .layers
            .iter()
            .map(|l| l.weight_params() as f64 * l.weight_sparsity)
            .sum();
        zeros / total as f64
    }

    /// Returns `true` if any layer is followed by a sparsity-inducing activation (ReLU
    /// family). GELU/Swish-only networks need the pseudo-density heuristic for TASD-A.
    pub fn has_relu_activations(&self) -> bool {
        self.layers.iter().any(|l| l.activation.induces_sparsity())
    }

    /// Looks up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&LayerSpec> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Index of a layer by name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name == name)
    }

    /// Applies a uniform weight sparsity to every layer, returning the modified spec.
    /// Per-layer profiles (closer to real pruned models) are built in `tasd-models`.
    #[must_use]
    pub fn with_uniform_weight_sparsity(mut self, sparsity: f64) -> Self {
        for l in &mut self.layers {
            l.weight_sparsity = sparsity.clamp(0.0, 1.0);
        }
        self
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers, {:.1} GMACs, {:.1} M params, {:.0}% weight sparsity",
            self.name,
            self.num_layers(),
            self.total_dense_macs(1) as f64 / 1e9,
            self.total_weight_params() as f64 / 1e6,
            self.overall_weight_sparsity() * 100.0
        )
    }
}

impl<'a> IntoIterator for &'a NetworkSpec {
    type Item = &'a LayerSpec;
    type IntoIter = std::slice::Iter<'a, LayerSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use tasd_tensor::Conv2dDims;

    fn tiny_net() -> NetworkSpec {
        NetworkSpec::new(
            "tiny",
            vec![
                LayerSpec::conv(
                    "conv1",
                    Conv2dDims::square(3, 16, 32, 3, 1, 1),
                    Activation::Relu,
                ),
                LayerSpec::linear("fc1", 16, 64, 1024, Activation::Relu).with_weight_sparsity(0.9),
                LayerSpec::linear("fc2", 64, 10, 1024, Activation::None).with_weight_sparsity(0.5),
            ],
        )
    }

    #[test]
    fn totals_aggregate_layers() {
        let net = tiny_net();
        assert_eq!(net.num_layers(), 3);
        let expected_macs: u64 = net.layers.iter().map(|l| l.dense_macs(1)).sum();
        assert_eq!(net.total_dense_macs(1), expected_macs);
        assert_eq!(net.total_weight_params(), 3 * 9 * 16 + 16 * 64 + 64 * 10);
    }

    #[test]
    fn overall_sparsity_is_parameter_weighted() {
        let net = tiny_net();
        let params = [3 * 9 * 16, 16 * 64, 64 * 10];
        let expected = (params[0] as f64 * 0.0 + params[1] as f64 * 0.9 + params[2] as f64 * 0.5)
            / params.iter().sum::<usize>() as f64;
        assert!((net.overall_weight_sparsity() - expected).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_name() {
        let net = tiny_net();
        assert!(net.layer("fc1").is_some());
        assert_eq!(net.layer_index("fc2"), Some(2));
        assert!(net.layer("missing").is_none());
    }

    #[test]
    fn uniform_sparsity_override() {
        let net = tiny_net().with_uniform_weight_sparsity(0.8);
        assert!(net.layers.iter().all(|l| l.weight_sparsity == 0.8));
        assert!((net.overall_weight_sparsity() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn relu_detection() {
        let net = tiny_net();
        assert!(net.has_relu_activations());
        let gelu_net = NetworkSpec::new(
            "gelu-only",
            vec![LayerSpec::linear("fc", 8, 8, 4, Activation::Gelu)],
        );
        assert!(!gelu_net.has_relu_activations());
    }

    #[test]
    fn display_summarizes() {
        let s = tiny_net().to_string();
        assert!(s.contains("tiny") && s.contains("3 layers"));
    }

    #[test]
    fn empty_network_is_well_behaved() {
        let net = NetworkSpec::new("empty", vec![]);
        assert_eq!(net.total_dense_macs(1), 0);
        assert_eq!(net.overall_weight_sparsity(), 0.0);
        assert!(!net.has_relu_activations());
    }
}

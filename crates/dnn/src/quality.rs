//! Model-quality signals: proxy accuracy from per-layer approximation error, and the
//! paper's "valid model" criterion (≥ 99 % of the original accuracy, following MLPerf).
//!
//! The paper evaluates ImageNet / GLUE accuracy directly. Offline, this module provides the
//! substitution documented in DESIGN.md: a calibrated proxy that maps per-layer TASD
//! approximation error to an estimated accuracy, preserving the monotone relationship
//! (drop more signal → lose more accuracy) and the cliff shape of the paper's Fig. 14.
//! Exact accuracy remains available for small executable networks via `Mlp::accuracy`.

use serde::{Deserialize, Serialize};

/// The fraction of original accuracy a transformed model must keep to count as valid
/// (99 %, following MLPerf and the paper's §5.1 criterion).
pub const ACCURACY_RETENTION_THRESHOLD: f64 = 0.99;

/// Per-layer approximation damage, as produced by applying a TASD configuration to that
/// layer's weights or activations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerDamage {
    /// Fraction of the layer tensor's non-zeros dropped by the approximation (0–1).
    pub dropped_nonzero_fraction: f64,
    /// Fraction of the layer tensor's magnitude dropped by the approximation (0–1).
    pub dropped_magnitude_fraction: f64,
}

impl LayerDamage {
    /// No damage (dense execution or a lossless decomposition).
    pub fn none() -> Self {
        LayerDamage {
            dropped_nonzero_fraction: 0.0,
            dropped_magnitude_fraction: 0.0,
        }
    }
}

/// Proxy accuracy model: estimates model accuracy from per-layer damage.
///
/// The estimated retention is
///
/// ```text
/// retention = Π_l (1 − m_l)^sensitivity
/// ```
///
/// where `m_l` is layer `l`'s dropped-magnitude fraction. Intuition: a layer that keeps
/// all of its magnitude contributes a factor of 1; a layer that loses *all* of its
/// magnitude contributes 0 (the model is destroyed no matter how small `sensitivity` is);
/// in between, small per-layer losses compose multiplicatively across the depth of the
/// network. The default `sensitivity = 0.01` is calibrated so that ≈50 CONV/FC layers each
/// losing ≈2 % of their magnitude sit right at the 99 %-retention boundary, matching the
/// behaviour of magnitude-pruned ImageNet CNNs under small structured perturbations and
/// reproducing the flat-then-cliff shape of the paper's Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyAccuracyModel {
    /// Accuracy of the unmodified model (e.g. 0.761 for ResNet-50 top-1).
    pub base_accuracy: f64,
    /// Per-layer exponent applied to the kept-magnitude fraction (see the type docs).
    pub sensitivity: f64,
}

impl ProxyAccuracyModel {
    /// Creates a model with the given base accuracy and the default sensitivity (0.01).
    pub fn new(base_accuracy: f64) -> Self {
        ProxyAccuracyModel {
            base_accuracy,
            sensitivity: 0.01,
        }
    }

    /// Sets a custom sensitivity, returning the modified model.
    #[must_use]
    pub fn with_sensitivity(mut self, sensitivity: f64) -> Self {
        self.sensitivity = sensitivity;
        self
    }

    /// Estimates the accuracy of a model whose layers suffered the given damage.
    pub fn estimate(&self, damage: &[LayerDamage]) -> f64 {
        self.base_accuracy * self.retention(damage)
    }

    /// Estimated accuracy retention (`estimate / base_accuracy`).
    pub fn retention(&self, damage: &[LayerDamage]) -> f64 {
        let mut retention = 1.0f64;
        for d in damage {
            let kept = (1.0 - d.dropped_magnitude_fraction).clamp(0.0, 1.0);
            retention *= kept.powf(self.sensitivity);
        }
        retention
    }

    /// Whether the damaged model still meets the paper's validity criterion
    /// (≥ 99 % of original accuracy).
    pub fn is_valid(&self, damage: &[LayerDamage]) -> bool {
        self.retention(damage) >= ACCURACY_RETENTION_THRESHOLD
    }
}

/// Checks the 99 % retention criterion for two measured accuracies (used with the exact
/// accuracy of the executable testbed instead of the proxy).
pub fn meets_accuracy_criterion(original: f64, transformed: f64) -> bool {
    if original <= 0.0 {
        return transformed >= original;
    }
    transformed / original >= ACCURACY_RETENTION_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_damage(layers: usize, magnitude_drop: f64) -> Vec<LayerDamage> {
        vec![
            LayerDamage {
                dropped_nonzero_fraction: magnitude_drop,
                dropped_magnitude_fraction: magnitude_drop,
            };
            layers
        ]
    }

    #[test]
    fn no_damage_keeps_base_accuracy() {
        let model = ProxyAccuracyModel::new(0.761);
        let damage = vec![LayerDamage::none(); 50];
        assert_eq!(model.estimate(&damage), 0.761);
        assert!(model.is_valid(&damage));
        assert_eq!(model.retention(&damage), 1.0);
    }

    #[test]
    fn calibration_point_fifty_layers_two_percent() {
        let model = ProxyAccuracyModel::new(0.761);
        // 50 layers each losing 2% of magnitude: right around the validity edge.
        assert!(model.is_valid(&uniform_damage(50, 0.018)));
        // 50 layers each losing 20%: clearly invalid.
        assert!(!model.is_valid(&uniform_damage(50, 0.20)));
    }

    #[test]
    fn destroyed_layer_destroys_the_model() {
        let model = ProxyAccuracyModel::new(0.761);
        let mut damage = uniform_damage(50, 0.0);
        damage[25].dropped_magnitude_fraction = 1.0;
        assert_eq!(model.estimate(&damage), 0.0);
        assert!(!model.is_valid(&damage));
    }

    #[test]
    fn estimate_is_monotone_in_each_layer() {
        let model = ProxyAccuracyModel::new(0.9);
        let mut damage = vec![LayerDamage::none(); 10];
        let base = model.estimate(&damage);
        damage[3].dropped_magnitude_fraction = 0.2;
        let one = model.estimate(&damage);
        damage[7].dropped_magnitude_fraction = 0.5;
        let two = model.estimate(&damage);
        assert!(base > one && one > two);
        assert!(two > 0.0);
    }

    #[test]
    fn sensitivity_controls_steepness() {
        let damage = uniform_damage(10, 0.3);
        let gentle = ProxyAccuracyModel::new(0.8).with_sensitivity(0.005);
        let harsh = ProxyAccuracyModel::new(0.8).with_sensitivity(0.5);
        assert!(gentle.estimate(&damage) > harsh.estimate(&damage));
    }

    #[test]
    fn retention_independent_of_base_accuracy() {
        let damage = uniform_damage(20, 0.1);
        let a = ProxyAccuracyModel::new(0.9).retention(&damage);
        let b = ProxyAccuracyModel::new(0.5).retention(&damage);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn measured_criterion() {
        assert!(meets_accuracy_criterion(0.761, 0.7605));
        assert!(meets_accuracy_criterion(0.761, 0.761));
        assert!(!meets_accuracy_criterion(0.761, 0.70));
        assert!(meets_accuracy_criterion(0.0, 0.0));
    }
}

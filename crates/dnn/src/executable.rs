//! A small executable multi-layer perceptron.
//!
//! This is the end-to-end testbed: a network small enough to train and evaluate exactly,
//! whose weights and activations TASD can be applied to so that selection algorithms can be
//! validated against a *true* accuracy metric (the offline stand-in for the paper's
//! ImageNet evaluation). Forward execution also doubles as the calibration engine for
//! TASD-A: [`Mlp::forward_trace`] records every layer's input activations.
//!
//! All matmul traffic — the layer GEMMs and the TASD decompositions — dispatches through
//! an [`ExecutionEngine`], so forward passes inherit its backend planning, decomposition
//! caching, and parallelism. Callers that do not care pass
//! [`ExecutionEngine::global()`](ExecutionEngine::global).

use crate::activation::Activation;
use crate::layer::LayerSpec;
use crate::network::NetworkSpec;
use tasd::{BatchRequest, ExecutionEngine, ResponseHandle, ServingEngine, TasdConfig};
use tasd_tensor::{Matrix, MatrixGenerator};

/// One dense layer of the executable network.
#[derive(Debug, Clone)]
pub struct MlpLayer {
    /// Weight matrix in GEMM orientation `(in_features, out_features)`.
    pub weights: Matrix,
    /// Bias vector of length `out_features`.
    pub bias: Vec<f32>,
    /// Activation applied to this layer's output.
    pub activation: Activation,
}

impl MlpLayer {
    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weights.rows()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weights.cols()
    }
}

/// Per-layer activation trace captured during a forward pass.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// For each layer, the matrix of *input* activations it consumed (batch × in_features).
    pub layer_inputs: Vec<Matrix>,
    /// The network output logits (batch × classes).
    pub logits: Matrix,
}

/// A small multi-layer perceptron with explicit weights.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<MlpLayer>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (`dims[0]` inputs → `dims.last()` outputs)
    /// and hidden activation; the final layer has no activation (logits).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], hidden_activation: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut gen = MatrixGenerator::seeded(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f32).sqrt();
            layers.push(MlpLayer {
                weights: gen.normal(fan_in, fan_out, 0.0, std),
                bias: vec![0.0; fan_out],
                activation: hidden_activation,
            });
        }
        if let Some(last) = layers.last_mut() {
            last.activation = Activation::None;
        }
        Mlp { layers }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[MlpLayer] {
        &self.layers
    }

    /// Mutable access to the layers (the trainer and TASDER transforms use this).
    pub fn layers_mut(&mut self) -> &mut Vec<MlpLayer> {
        &mut self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, MlpLayer::in_features)
    }

    /// Output dimensionality (number of classes).
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, MlpLayer::out_features)
    }

    /// Forward pass: `inputs` is `(batch, input_dim)`, returns logits `(batch, output_dim)`.
    /// Every layer GEMM dispatches through `engine`.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the first layer.
    pub fn forward(&self, engine: &ExecutionEngine, inputs: &Matrix) -> Matrix {
        self.forward_trace(engine, inputs).logits
    }

    /// Forward pass that also records each layer's input activations (for calibration and
    /// for TASD-A evaluation).
    pub fn forward_trace(&self, engine: &ExecutionEngine, inputs: &Matrix) -> ForwardTrace {
        let mut x = inputs.clone();
        let mut layer_inputs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            assert_eq!(
                x.cols(),
                layer.in_features(),
                "activation width does not match layer input"
            );
            layer_inputs.push(x.clone());
            let mut z = engine
                .gemm(&x, &layer.weights)
                .expect("shapes checked above");
            add_bias(&mut z, &layer.bias);
            x = layer.activation.apply(&z);
        }
        ForwardTrace {
            layer_inputs,
            logits: x,
        }
    }

    /// Forward pass with TASD applied to each layer's *input activations*: before layer
    /// `i`'s GEMM, its input is decomposed with `configs[i]` and the approximated product
    /// is executed term-by-term through `engine` — the software model of TASD-A (the
    /// hardware performs the same decomposition in the TASD unit). Layers with no entry in
    /// `configs` run unmodified.
    pub fn forward_with_activation_tasd(
        &self,
        engine: &ExecutionEngine,
        inputs: &Matrix,
        configs: &[Option<TasdConfig>],
    ) -> Matrix {
        let mut x = inputs.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = match configs.get(i) {
                Some(Some(cfg)) => {
                    // Activations are fresh every batch: decompose directly instead of
                    // through the engine's cache, which would pay fingerprinting for keys
                    // that never repeat and evict reusable weight-series entries.
                    // Execution still dispatches through the engine's planned backends.
                    let series = tasd::decompose(&x, cfg);
                    engine
                        .series_gemm(&series, &layer.weights)
                        .expect("shape mismatch in tasd forward")
                }
                _ => engine
                    .gemm(&x, &layer.weights)
                    .expect("shape mismatch in tasd forward"),
            };
            add_bias(&mut z, &layer.bias);
            x = layer.activation.apply(&z);
        }
        x
    }

    /// Batched serving forward pass: runs many independent requests (each a
    /// `(samples, input_dim)` activation matrix) through the network in one
    /// [`ExecutionEngine::submit`] batch per layer.
    ///
    /// Each layer's GEMM executes in the *serving orientation* `Wᵀ·xᵀ`, with the
    /// transposed weight matrix as the batch's shared left-hand operand — so the engine
    /// groups every request onto one operand fingerprint and multiplies the packed
    /// activation panels in a single kernel pass per layer, instead of once per request.
    /// Outputs match [`Mlp::forward`] per request up to f32 accumulation-order effects.
    ///
    /// # Panics
    ///
    /// Panics if any request's width does not match the first layer.
    pub fn forward_batch(&self, engine: &ExecutionEngine, inputs: &[Matrix]) -> Vec<Matrix> {
        self.forward_batch_with_weight_tasd(engine, inputs, &[])
    }

    /// [`Mlp::forward_batch`] with TASD applied to each layer's *weights*: layer `i`'s
    /// transposed weight operand is decomposed with `configs[i]` (through the engine's
    /// prepared cache, so the decomposition *and* its backend-native packing happen once
    /// and are reused across requests, batches, and calls) and each request's product is
    /// executed term-by-term — the software model of serving a TASD-W deployment. Layers
    /// with no entry in `configs` run unmodified.
    ///
    /// Each call snapshots the network into a fresh [`ServingMlp`] (one `O(in·out)`
    /// transpose copy plus one content-fingerprint scan per layer per call), so weight
    /// mutation through [`Mlp::layers_mut`] can never serve a stale operand. A serving
    /// deployment that forwards many batches between weight updates should hold a
    /// [`Mlp::prepare_serving`] snapshot instead — its pointer-stable operands hit the
    /// engine's fingerprint memo and prepared cache with zero per-call rescans.
    ///
    /// # Panics
    ///
    /// Panics if any request's width does not match the first layer.
    pub fn forward_batch_with_weight_tasd(
        &self,
        engine: &ExecutionEngine,
        inputs: &[Matrix],
        configs: &[Option<TasdConfig>],
    ) -> Vec<Matrix> {
        self.prepare_serving(engine, configs)
            .forward_batch(engine, inputs)
    }

    /// Snapshots this network for serving: every layer's weights are transposed into the
    /// serving orientation **once**, behind pointer-stable [`Arc`](std::sync::Arc)s, and
    /// each configured layer's decomposition is prepared into `engine`'s cache up front.
    /// Repeated [`ServingMlp::forward_batch`] calls then perform zero weight transposes,
    /// zero content-fingerprint scans, zero decompositions, zero format conversions, and
    /// zero replans — the prepare-once / execute-many contract of the `tasd::engine`
    /// module, applied network-wide.
    ///
    /// Layers large enough to meet the engine's shard routing (an
    /// `EngineBuilder::shard_policy` plus `shard_min_rows`) are warmed **shard by
    /// shard** — one cache entry per row shard of the transposed weight — so serving
    /// batches against those layers execute on the shard worker pool with every shard
    /// already prepared. Sharding never changes results; outputs are bitwise identical
    /// to an unsharded engine's.
    ///
    /// The snapshot is decoupled from the `Mlp`: mutating weights afterwards (e.g. via
    /// [`Mlp::layers_mut`]) does not invalidate it — rebuild the snapshot after a weight
    /// update, as a deployment would roll a new model version.
    pub fn prepare_serving(
        &self,
        engine: &ExecutionEngine,
        configs: &[Option<TasdConfig>],
    ) -> ServingMlp {
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                let w_t = std::sync::Arc::new(layer.weights.transpose());
                let config = configs.get(l).cloned().flatten();
                if let Some(cfg) = &config {
                    // Warm the prepared cache (and the fingerprint memo) now, so the
                    // first batch is as cheap as the hundredth. Layers that meet the
                    // engine's shard routing warm one entry per row shard instead.
                    engine.warm_serving_operand(&w_t, cfg);
                }
                ServingLayer {
                    w_t,
                    bias: layer.bias.clone(),
                    activation: layer.activation,
                    in_features: layer.in_features(),
                    config,
                }
            })
            .collect();
        ServingMlp { layers }
    }

    /// Predicted class per sample (argmax of logits).
    pub fn predict(&self, engine: &ExecutionEngine, inputs: &Matrix) -> Vec<usize> {
        argmax_rows(&self.forward(engine, inputs))
    }

    /// Classification accuracy on `(inputs, labels)`.
    pub fn accuracy(&self, engine: &ExecutionEngine, inputs: &Matrix, labels: &[usize]) -> f64 {
        let preds = self.predict(engine, inputs);
        accuracy_from_predictions(&preds, labels)
    }

    /// Classification accuracy with activation-TASD applied (see
    /// [`Mlp::forward_with_activation_tasd`]).
    pub fn accuracy_with_activation_tasd(
        &self,
        engine: &ExecutionEngine,
        inputs: &Matrix,
        labels: &[usize],
        configs: &[Option<TasdConfig>],
    ) -> f64 {
        let preds = argmax_rows(&self.forward_with_activation_tasd(engine, inputs, configs));
        accuracy_from_predictions(&preds, labels)
    }

    /// Returns a copy of this network with layer `layer_idx`'s weights decomposed with
    /// `config` and reconstructed (the software model of TASD-W). The decomposition goes
    /// through `engine`, so repeated evaluations of the same layer hit its cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer_idx` is out of range.
    #[must_use]
    pub fn with_weight_tasd(
        &self,
        engine: &ExecutionEngine,
        layer_idx: usize,
        config: &TasdConfig,
    ) -> Mlp {
        let mut out = self.clone();
        let w = &out.layers[layer_idx].weights;
        let series = engine.decompose(w, config);
        out.layers[layer_idx].weights = series.reconstruct();
        out
    }

    /// The network spec (layer IR) corresponding to this executable network, for feeding
    /// the same model into the optimizer and the accelerator simulator. `tokens` is the
    /// batch size the spec should assume.
    pub fn to_spec(&self, name: &str, tokens: usize) -> NetworkSpec {
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                LayerSpec::linear(
                    format!("fc{i}"),
                    l.in_features(),
                    l.out_features(),
                    tokens,
                    l.activation,
                )
                .with_weight_sparsity(tasd_tensor::sparsity_degree(&l.weights))
            })
            .collect();
        NetworkSpec::new(name, layers)
    }
}

/// One layer of a [`ServingMlp`]: the transposed weight operand behind a pointer-stable
/// `Arc`, plus the epilogue state.
#[derive(Debug, Clone)]
struct ServingLayer {
    w_t: std::sync::Arc<Matrix>,
    bias: Vec<f32>,
    activation: Activation,
    in_features: usize,
    config: Option<TasdConfig>,
}

impl ServingLayer {
    /// The serving-orientation request for one activation matrix (`Wᵀ·xᵀ`, sharing the
    /// snapshot's pointer-stable weight operand).
    fn request(&self, x: &Matrix) -> BatchRequest {
        assert_eq!(
            x.cols(),
            self.in_features,
            "activation width does not match layer input"
        );
        match &self.config {
            Some(cfg) => BatchRequest::decomposed(
                std::sync::Arc::clone(&self.w_t),
                cfg.clone(),
                x.transpose(),
            ),
            None => BatchRequest::dense(std::sync::Arc::clone(&self.w_t), x.transpose()),
        }
    }

    /// Un-transposes one response and applies bias + activation.
    fn epilogue(&self, z_t: Matrix) -> Matrix {
        let mut z = z_t.transpose();
        add_bias(&mut z, &self.bias);
        self.activation.apply(&z)
    }
}

/// A serving-ready snapshot of an [`Mlp`], from [`Mlp::prepare_serving`]: weights
/// pre-transposed into the shared-operand orientation behind pointer-stable `Arc`s, and
/// per-layer TASD configurations pinned. Because the operand allocations never change
/// across calls, every [`forward_batch`](ServingMlp::forward_batch) after the first hits
/// the engine's fingerprint memo and prepared decomposition cache — the hot path does no
/// conversion and no replanning.
#[derive(Debug, Clone)]
pub struct ServingMlp {
    layers: Vec<ServingLayer>,
}

impl ServingMlp {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Batched serving forward pass (see [`Mlp::forward_batch`] for the orientation
    /// contract): one [`ExecutionEngine::submit`] batch per layer, every request sharing
    /// the snapshot's weight operand. Outputs match [`Mlp::forward_batch`] on the
    /// snapshotted weights exactly.
    ///
    /// # Panics
    ///
    /// Panics if any request's width does not match the first layer.
    pub fn forward_batch(&self, engine: &ExecutionEngine, inputs: &[Matrix]) -> Vec<Matrix> {
        self.try_forward_batch(engine, inputs)
            .expect("shapes checked by the snapshot; no serving faults on this path")
    }

    /// [`forward_batch`](Self::forward_batch) with structured failure: any request
    /// failing (a width mismatch surfacing as
    /// [`ServingError::ShapeMismatch`](tasd::ServingError), or an injected/real kernel
    /// fault as [`KernelPanicked`](tasd::ServingError::KernelPanicked)) fails the pass
    /// with that request's error instead of panicking.
    ///
    /// # Errors
    ///
    /// The first failing request's [`ServingError`](tasd::ServingError), scanning
    /// layer by layer in request order.
    pub fn try_forward_batch(
        &self,
        engine: &ExecutionEngine,
        inputs: &[Matrix],
    ) -> Result<Vec<Matrix>, tasd::ServingError> {
        let mut xs: Vec<Matrix> = inputs.to_vec();
        for layer in &self.layers {
            let requests: Vec<BatchRequest> = xs.iter().map(|x| layer.request(x)).collect();
            xs = engine
                .submit(requests)
                .into_iter()
                .map(|response| Ok(layer.epilogue(response.output?)))
                .collect::<Result<_, tasd::ServingError>>()?;
        }
        Ok(xs)
    }

    /// Batched serving forward pass through a [`ServingEngine`] session's handle API:
    /// per layer, every request is [`enqueue`](ServingEngine::enqueue)d into the
    /// session's open micro-batch window and collected through its
    /// [`ResponseHandle`] — so this network's traffic coalesces with whatever *other*
    /// requests are in flight on the same session (another thread serving the same
    /// snapshot joins the same window and shares the packed kernel passes).
    ///
    /// Layer boundaries force a window per layer for this call's own requests (layer
    /// `i+1`'s inputs are layer `i`'s outputs, so the handles must drain), flushed via
    /// [`ResponseHandle::wait`] — late arrivals from other threads still join each
    /// window until it closes. Outputs are **bitwise identical** to
    /// [`forward_batch`](Self::forward_batch) on the session's engine: window
    /// composition never changes results (see the `tasd::engine` module docs).
    ///
    /// # Panics
    ///
    /// Panics if any request's width does not match the first layer, or if the session
    /// refuses/fails a request (queue full, shutting down, kernel fault) — use
    /// [`try_forward_batch_serving`](Self::try_forward_batch_serving) to observe those
    /// as errors instead.
    pub fn forward_batch_serving(&self, serving: &ServingEngine, inputs: &[Matrix]) -> Vec<Matrix> {
        self.try_forward_batch_serving(serving, inputs)
            .expect("shapes checked by the snapshot; session healthy on this path")
    }

    /// [`forward_batch_serving`](Self::forward_batch_serving) with structured failure:
    /// every per-request serving outcome — admission rejection
    /// ([`QueueFull`](tasd::ServingError::QueueFull),
    /// [`ShuttingDown`](tasd::ServingError::ShuttingDown)), deadline expiry,
    /// cancellation, or a contained kernel panic — surfaces as that request's
    /// [`ServingError`](tasd::ServingError) instead of a panic.
    ///
    /// # Errors
    ///
    /// The first failing request's [`ServingError`](tasd::ServingError), scanning
    /// layer by layer in request order. Later handles in the same layer are still
    /// waited (their windows resolve them), so no handle leaks.
    pub fn try_forward_batch_serving(
        &self,
        serving: &ServingEngine,
        inputs: &[Matrix],
    ) -> Result<Vec<Matrix>, tasd::ServingError> {
        let mut xs: Vec<Matrix> = inputs.to_vec();
        for layer in &self.layers {
            let handles: Vec<ResponseHandle> = xs
                .iter()
                .map(|x| serving.enqueue(layer.request(x)))
                .collect();
            // Wait every handle before surfacing the first error: the responses are
            // already scheduled, and abandoning a handle mid-layer would discard them.
            let outputs: Vec<Result<Matrix, tasd::ServingError>> = handles
                .into_iter()
                .map(|handle| {
                    // `wait` closes the open window if this request is still parked, so
                    // the drain can never hang on a window nobody else fills.
                    handle.wait().output
                })
                .collect();
            xs = outputs
                .into_iter()
                .map(|output| Ok(layer.epilogue(output?)))
                .collect::<Result<_, tasd::ServingError>>()?;
        }
        Ok(xs)
    }
}

/// Adds `bias` to every row of `z` (the shared layer epilogue).
fn add_bias(z: &mut Matrix, bias: &[f32]) {
    for i in 0..z.rows() {
        let row = z.row_mut(i);
        for (j, b) in bias.iter().enumerate() {
            row[j] += b;
        }
    }
}

/// Argmax of every row.
pub(crate) fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .map(|i| {
            m.row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

/// Fraction of predictions matching the labels.
pub(crate) fn accuracy_from_predictions(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "prediction/label count mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / preds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> &'static ExecutionEngine {
        ExecutionEngine::global()
    }

    #[test]
    fn construction_and_shapes() {
        let mlp = Mlp::new(&[16, 32, 8, 4], Activation::Relu, 1);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.input_dim(), 16);
        assert_eq!(mlp.output_dim(), 4);
        assert_eq!(mlp.layers()[0].out_features(), 32);
        // Last layer emits raw logits.
        assert_eq!(mlp.layers()[2].activation, Activation::None);
        assert_eq!(mlp.layers()[0].activation, Activation::Relu);
    }

    #[test]
    fn forward_shapes_and_trace() {
        let mlp = Mlp::new(&[8, 16, 3], Activation::Relu, 2);
        let x = MatrixGenerator::seeded(5).normal(10, 8, 0.0, 1.0);
        let trace = mlp.forward_trace(engine(), &x);
        assert_eq!(trace.logits.shape(), (10, 3));
        assert_eq!(trace.layer_inputs.len(), 2);
        assert_eq!(trace.layer_inputs[0].shape(), (10, 8));
        assert_eq!(trace.layer_inputs[1].shape(), (10, 16));
        // Hidden activations are ReLU outputs: non-negative.
        assert!(trace.layer_inputs[1].iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn predictions_and_accuracy() {
        let mlp = Mlp::new(&[4, 8, 2], Activation::Relu, 3);
        let x = MatrixGenerator::seeded(6).normal(20, 4, 0.0, 1.0);
        let preds = mlp.predict(engine(), &x);
        assert_eq!(preds.len(), 20);
        assert!(preds.iter().all(|&p| p < 2));
        // Accuracy against its own predictions is 1.
        assert_eq!(mlp.accuracy(engine(), &x, &preds), 1.0);
    }

    #[test]
    fn dense_tasd_config_is_a_noop() {
        let mlp = Mlp::new(&[8, 16, 4], Activation::Relu, 7);
        let x = MatrixGenerator::seeded(8).normal(12, 8, 0.0, 1.0);
        let baseline = mlp.forward(engine(), &x);
        let dense_cfgs = vec![Some(TasdConfig::dense(8)); mlp.num_layers()];
        let with_tasd = mlp.forward_with_activation_tasd(engine(), &x, &dense_cfgs);
        assert!(baseline.approx_eq(&with_tasd, 1e-5));
        let w_tasd = mlp.with_weight_tasd(engine(), 0, &TasdConfig::dense(8));
        assert!(w_tasd.forward(engine(), &x).approx_eq(&baseline, 1e-5));
    }

    #[test]
    fn aggressive_activation_tasd_changes_output() {
        let mlp = Mlp::new(&[16, 32, 4], Activation::Relu, 9);
        let x = MatrixGenerator::seeded(10).normal(6, 16, 0.0, 1.0);
        let baseline = mlp.forward(engine(), &x);
        let cfgs = vec![Some(TasdConfig::parse("1:8").unwrap()); mlp.num_layers()];
        let approx = mlp.forward_with_activation_tasd(engine(), &x, &cfgs);
        assert_eq!(approx.shape(), baseline.shape());
        assert!(
            !baseline.approx_eq(&approx, 1e-6),
            "1:8 on dense input must perturb output"
        );
    }

    #[test]
    fn weight_tasd_reduces_weight_density() {
        let mlp = Mlp::new(&[32, 64, 4], Activation::Relu, 11);
        let cfg = TasdConfig::parse("2:8").unwrap();
        let modified = mlp.with_weight_tasd(engine(), 0, &cfg);
        let dens = 1.0 - tasd_tensor::sparsity_degree(&modified.layers()[0].weights);
        assert!(dens <= 0.25 + 1e-9, "density {dens}");
        // Other layers untouched.
        assert_eq!(modified.layers()[1].weights, mlp.layers()[1].weights);
    }

    #[test]
    fn forward_is_engine_invariant() {
        // The same network must produce the same logits whatever engine executes it.
        let mlp = Mlp::new(&[12, 24, 5], Activation::Relu, 15);
        let x = MatrixGenerator::seeded(16).normal(9, 12, 0.0, 1.0);
        let default = mlp.forward(engine(), &x);
        let csr_only = ExecutionEngine::builder()
            .backend(std::sync::Arc::new(tasd_tensor::CsrBackend::default()))
            .build();
        let sequential = ExecutionEngine::builder().parallel(false).build();
        assert!(mlp.forward(&csr_only, &x).approx_eq(&default, 1e-5));
        assert!(mlp.forward(&sequential, &x).approx_eq(&default, 1e-5));
    }

    #[test]
    fn with_weight_tasd_reuses_the_engine_cache() {
        let mlp = Mlp::new(&[16, 16, 4], Activation::Relu, 17);
        let e = ExecutionEngine::builder().cache_capacity(8).build();
        let cfg = TasdConfig::parse("2:8").unwrap();
        let _ = mlp.with_weight_tasd(&e, 0, &cfg);
        let _ = mlp.with_weight_tasd(&e, 0, &cfg);
        let stats = e.cache_stats();
        assert_eq!(
            stats.misses, 1,
            "second decomposition must be served from cache"
        );
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn forward_batch_matches_per_request_forward() {
        let mlp = Mlp::new(&[10, 20, 6], Activation::Relu, 19);
        let mut gen = MatrixGenerator::seeded(20);
        // Mixed request sizes, including a single-sample request.
        let inputs: Vec<Matrix> = [4usize, 1, 7]
            .iter()
            .map(|&n| gen.normal(n, 10, 0.0, 1.0))
            .collect();
        let e = ExecutionEngine::builder().build();
        let batched = mlp.forward_batch(&e, &inputs);
        assert_eq!(batched.len(), inputs.len());
        for (x, got) in inputs.iter().zip(&batched) {
            let expected = mlp.forward(&e, x);
            assert_eq!(got.shape(), expected.shape());
            // The serving orientation transposes the GEMM, so accumulation order
            // differs from the row-major forward pass: compare within tolerance.
            assert!(got.approx_eq(&expected, 1e-4));
        }
    }

    #[test]
    fn forward_batch_with_dense_tasd_is_a_noop() {
        let mlp = Mlp::new(&[8, 16, 4], Activation::Relu, 27);
        let mut gen = MatrixGenerator::seeded(28);
        let inputs: Vec<Matrix> = (0..3).map(|_| gen.normal(5, 8, 0.0, 1.0)).collect();
        let e = ExecutionEngine::builder().build();
        let dense_cfgs = vec![Some(TasdConfig::dense(8)); mlp.num_layers()];
        let with_tasd = mlp.forward_batch_with_weight_tasd(&e, &inputs, &dense_cfgs);
        let baseline = mlp.forward_batch(&e, &inputs);
        for (a, b) in with_tasd.iter().zip(&baseline) {
            assert!(a.approx_eq(b, 1e-5));
        }
    }

    #[test]
    fn forward_batch_decomposes_each_layer_once_across_requests_and_calls() {
        let mlp = Mlp::new(&[16, 24, 8], Activation::Relu, 29);
        let mut gen = MatrixGenerator::seeded(30);
        let inputs: Vec<Matrix> = (0..6).map(|_| gen.normal(3, 16, 0.0, 1.0)).collect();
        let e = ExecutionEngine::builder().build();
        let cfgs = vec![Some(TasdConfig::parse("2:8").unwrap()); mlp.num_layers()];
        let _ = mlp.forward_batch_with_weight_tasd(&e, &inputs, &cfgs);
        let stats = e.cache_stats();
        assert_eq!(
            stats.misses,
            mlp.num_layers() as u64,
            "one decomposition per layer, shared by all 6 requests"
        );
        // A second batch is served entirely from the cache.
        let _ = mlp.forward_batch_with_weight_tasd(&e, &inputs, &cfgs);
        assert_eq!(e.cache_stats().misses, mlp.num_layers() as u64);
        assert!(e.cache_stats().hits >= mlp.num_layers() as u64);
    }

    #[test]
    fn serving_snapshot_matches_forward_batch_and_never_rescans() {
        let mlp = Mlp::new(&[16, 24, 8], Activation::Relu, 33);
        let mut gen = MatrixGenerator::seeded(34);
        let inputs: Vec<Matrix> = (0..4).map(|_| gen.normal(3, 16, 0.0, 1.0)).collect();
        let e = ExecutionEngine::builder().build();
        let cfgs = vec![Some(TasdConfig::parse("2:8").unwrap()); mlp.num_layers()];
        let serving = mlp.prepare_serving(&e, &cfgs);
        assert_eq!(serving.num_layers(), mlp.num_layers());
        // The snapshot path answers exactly like the per-call path on the same engine.
        let via_snapshot = serving.forward_batch(&e, &inputs);
        let via_percall = mlp.forward_batch_with_weight_tasd(&e, &inputs, &cfgs);
        for (a, b) in via_snapshot.iter().zip(&via_percall) {
            assert_eq!(a, b, "snapshot serving must be bitwise identical");
        }
        // Warm calls on the snapshot: zero scans, zero decompositions, zero conversions,
        // zero replans — the prepare-once / execute-many contract end to end.
        let _ = serving.forward_batch(&e, &inputs);
        let before = e.prep_stats();
        let cache_before = e.cache_stats();
        let _ = serving.forward_batch(&e, &inputs);
        let after = e.prep_stats();
        assert_eq!(after.fingerprint_scans, before.fingerprint_scans);
        assert_eq!(after.conversions, before.conversions);
        assert_eq!(after.plans_computed, before.plans_computed);
        assert_eq!(after.prepares, before.prepares);
        assert_eq!(e.cache_stats().misses, cache_before.misses);
    }

    #[test]
    fn sharded_serving_is_bitwise_identical_and_warms_per_shard() {
        use tasd::ShardPolicy;
        // The serving operand is the transposed weight, so its row count is the layer's
        // out_features: layer 0 (48 rows) crosses the shard threshold, layer 1 (8 rows)
        // stays unsharded.
        let mlp = Mlp::new(&[24, 48, 8], Activation::Relu, 35);
        let mut gen = MatrixGenerator::seeded(36);
        let inputs: Vec<Matrix> = (0..3).map(|_| gen.normal(4, 24, 0.0, 1.0)).collect();
        let cfgs = vec![Some(TasdConfig::parse("2:8").unwrap()); mlp.num_layers()];
        let plain = ExecutionEngine::builder().build();
        let sharded = ExecutionEngine::builder()
            .shard_policy(ShardPolicy::NnzBalanced(3))
            .shard_min_rows(32)
            .build();
        let baseline = mlp
            .prepare_serving(&plain, &cfgs)
            .forward_batch(&plain, &inputs);
        let serving = mlp.prepare_serving(&sharded, &cfgs);
        // Layer 0 warms 3 shard entries, layer 1 warms 1 whole-matrix entry.
        assert_eq!(sharded.cache_stats().entries, 4);
        let via_shards = serving.forward_batch(&sharded, &inputs);
        for (a, b) in via_shards.iter().zip(&baseline) {
            assert_eq!(a, b, "sharded serving must be bitwise identical");
        }
        // Warm sharded batches keep the prepare-once contract: no conversions, no
        // replans, no rescans, and per-shard cache hits.
        let _ = serving.forward_batch(&sharded, &inputs);
        let before = sharded.prep_stats();
        let hits_before = sharded.cache_stats().hits;
        let _ = serving.forward_batch(&sharded, &inputs);
        let after = sharded.prep_stats();
        assert_eq!(after.conversions, before.conversions);
        assert_eq!(after.plans_computed, before.plans_computed);
        assert_eq!(after.fingerprint_scans, before.fingerprint_scans);
        assert_eq!(after.prepares, before.prepares);
        assert_eq!(
            sharded.cache_stats().hits,
            hits_before + 4,
            "one hit per shard of layer 0 plus one for layer 1"
        );
    }

    #[test]
    fn serving_handles_match_submit_serving_bitwise() {
        use tasd::ServingEngine;
        // The handle API must produce exactly what the synchronous submit path does —
        // window composition (here: one window per layer, closed by the first `wait`)
        // never changes bits.
        let mlp = Mlp::new(&[12, 24, 5], Activation::Relu, 37);
        let mut gen = MatrixGenerator::seeded(38);
        let inputs: Vec<Matrix> = (0..5).map(|_| gen.normal(3, 12, 0.0, 1.0)).collect();
        let cfgs = vec![Some(TasdConfig::parse("2:8").unwrap()); mlp.num_layers()];
        let engine = std::sync::Arc::new(ExecutionEngine::builder().build());
        let snapshot = mlp.prepare_serving(&engine, &cfgs);
        let serving = ServingEngine::over(std::sync::Arc::clone(&engine));
        let via_handles = snapshot.forward_batch_serving(&serving, &inputs);
        let via_submit = snapshot.forward_batch(&engine, &inputs);
        for (a, b) in via_handles.iter().zip(&via_submit) {
            assert_eq!(a, b, "handle serving must be bitwise identical");
        }
        // Warm handle serving keeps the prepare-once contract.
        let before = engine.prep_stats();
        let _ = snapshot.forward_batch_serving(&serving, &inputs);
        let after = engine.prep_stats();
        assert_eq!(after.conversions, before.conversions);
        assert_eq!(after.plans_computed, before.plans_computed);
        assert_eq!(after.fingerprint_scans, before.fingerprint_scans);
        assert_eq!(after.prepares, before.prepares);
        // One window per layer per call, every window coalescing all 5 requests.
        let stats = serving.stats();
        assert_eq!(stats.windows, 2 * mlp.num_layers() as u64);
        assert_eq!(stats.coalesced_windows, stats.windows);
        assert_eq!(stats.max_window, inputs.len());
    }

    #[test]
    fn forward_batch_of_empty_and_zero_requests() {
        let mlp = Mlp::new(&[4, 6, 2], Activation::Relu, 31);
        let e = ExecutionEngine::builder().build();
        assert!(mlp.forward_batch(&e, &[]).is_empty());
        // A zero-sample request flows through and keeps its shape.
        let out = mlp.forward_batch(&e, &[Matrix::zeros(0, 4)]);
        assert_eq!(out[0].shape(), (0, 2));
    }

    #[test]
    fn to_spec_mirrors_structure() {
        let mlp = Mlp::new(&[8, 16, 4], Activation::Gelu, 13);
        let spec = mlp.to_spec("mini", 32);
        assert_eq!(spec.num_layers(), 2);
        assert_eq!(spec.layers[0].gemm_dims(1), (32, 16, 8));
        assert_eq!(spec.layers[0].activation, Activation::Gelu);
        assert_eq!(spec.layers[1].activation, Activation::None);
    }

    #[test]
    fn argmax_helper() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9, 0.2], vec![3.0, -1.0, 2.0]]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
        assert_eq!(accuracy_from_predictions(&[1, 0], &[1, 1]), 0.5);
    }
}

//! # tasd-dnn
//!
//! DNN substrate for the TASD reproduction. The paper applies TASD to the CONV and FC
//! layers of real networks (ResNet-50, BERT, …); this crate provides everything needed to
//! stand in for those networks offline:
//!
//! * [`Activation`] / [`LayerKind`] / [`LayerSpec`] / [`NetworkSpec`] — a layer IR that
//!   records, for every CONV/FC layer, its GEMM dimensions after im2col lowering, the
//!   activation function that follows it, and its position in the network.
//! * [`WeightSet`] — materialized weight matrices for a network spec, generated with
//!   per-layer sparsity profiles (unstructured magnitude-pruned, N:M structured, or dense)
//!   so TASD-W has real tensors to decompose.
//! * [`calibration`] — per-layer activation statistics (sparsity, pseudo-density) gathered
//!   either from synthetic activation profiles or by running an executable network over a
//!   calibration set, exactly the input TASD-A needs.
//! * [`quality`] — the model-quality signal: a proxy-accuracy model driven by per-layer
//!   approximation error, plus exact accuracy evaluation for small executable networks.
//! * [`executable`] / [`dataset`] / [`train`] — a small multi-layer perceptron that can be
//!   trained on a synthetic classification task, so the TASDER selection algorithms can be
//!   validated against a *true* accuracy metric end to end.
//!
//! The paper-scale networks themselves (ResNet, VGG, BERT, ViT, ConvNeXt shapes and their
//! SparseZoo-like sparsity profiles) live in the `tasd-models` crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod calibration;
pub mod dataset;
pub mod executable;
pub mod layer;
pub mod network;
pub mod pruning;
pub mod quality;
pub mod train;
pub mod weights;

pub use activation::Activation;
pub use calibration::{ActivationStats, CalibrationProfile};
pub use dataset::SyntheticDataset;
pub use executable::{Mlp, ServingMlp};
pub use layer::{LayerKind, LayerSpec};
pub use network::NetworkSpec;
pub use quality::ProxyAccuracyModel;
pub use weights::{WeightInit, WeightSet};

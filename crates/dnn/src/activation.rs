//! Activation functions and their sparsity behaviour.

use serde::{Deserialize, Serialize};
use std::fmt;
use tasd_tensor::Matrix;

/// Activation function applied after a CONV/FC layer.
///
/// The distinction that matters for TASD-A is whether the function produces *exact zeros*
/// (ReLU family → unstructured activation sparsity, handled with the sparsity-degree
/// heuristic) or not (GELU/Swish → dense activations, handled with the pseudo-density
/// heuristic, paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// No activation (e.g. the last layer, or an internal projection).
    #[default]
    None,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// ReLU clipped at 6 (MobileNet-style).
    Relu6,
    /// Gaussian error linear unit (BERT, ViT, ConvNeXt). Produces no exact zeros.
    Gelu,
    /// Swish / SiLU: `x * sigmoid(x)` (EfficientNet). Produces no exact zeros.
    Swish,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply_scalar(&self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Gelu => tasd_tensor::random::gelu(x),
            Activation::Swish => x * sigmoid(x),
        }
    }

    /// Applies the activation element-wise, returning a new matrix.
    pub fn apply(&self, m: &Matrix) -> Matrix {
        match self {
            Activation::None => m.clone(),
            _ => m.map(|x| self.apply_scalar(x)),
        }
    }

    /// Derivative of the activation with respect to its input, evaluated at `x`
    /// (used by the small trainer; GELU/Swish use their analytic forms).
    pub fn derivative(&self, x: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Relu6 => {
                if x > 0.0 && x < 6.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Gelu => {
                // Derivative of the tanh approximation.
                let c = 0.797_884_6_f32;
                let a = c * (x + 0.044_715 * x * x * x);
                let t = a.tanh();
                let dadx = c * (1.0 + 3.0 * 0.044_715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dadx
            }
            Activation::Swish => {
                let s = sigmoid(x);
                s + x * s * (1.0 - s)
            }
        }
    }

    /// Whether this activation produces exact zeros (and therefore unstructured activation
    /// sparsity that TASD-A can read directly).
    pub fn induces_sparsity(&self) -> bool {
        matches!(self, Activation::Relu | Activation::Relu6)
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::None => "none",
            Activation::Relu => "relu",
            Activation::Relu6 => "relu6",
            Activation::Gelu => "gelu",
            Activation::Swish => "swish",
        };
        write!(f, "{s}")
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_tensor::{sparsity_degree, MatrixGenerator};

    #[test]
    fn relu_clips_negatives() {
        assert_eq!(Activation::Relu.apply_scalar(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(3.0), 3.0);
        assert_eq!(Activation::Relu6.apply_scalar(8.0), 6.0);
        assert_eq!(Activation::Relu6.apply_scalar(-1.0), 0.0);
    }

    #[test]
    fn gelu_and_swish_have_no_exact_zeros_on_generic_input() {
        let m = MatrixGenerator::seeded(1).normal(32, 32, 0.5, 1.0);
        for act in [Activation::Gelu, Activation::Swish] {
            let out = act.apply(&m);
            assert_eq!(out.count_zeros(), 0, "{act} produced exact zeros");
            assert!(!act.induces_sparsity());
        }
    }

    #[test]
    fn relu_induces_about_half_sparsity_on_zero_mean_input() {
        let m = MatrixGenerator::seeded(2).normal(64, 64, 0.0, 1.0);
        let out = Activation::Relu.apply(&m);
        let s = sparsity_degree(&out);
        assert!((0.4..0.6).contains(&s), "sparsity {s}");
        assert!(Activation::Relu.induces_sparsity());
    }

    #[test]
    fn none_is_identity() {
        let m = MatrixGenerator::seeded(3).normal(8, 8, 0.0, 1.0);
        assert_eq!(Activation::None.apply(&m), m);
        assert_eq!(Activation::None.derivative(5.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let xs = [-2.0f32, -0.5, 0.1, 0.7, 2.5];
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Gelu,
            Activation::Swish,
            Activation::Relu6,
        ] {
            for &x in &xs {
                // Skip the ReLU kink where the finite difference is ill-defined.
                if act.induces_sparsity() && x.abs() < 2.0 * eps {
                    continue;
                }
                let numeric = (act.apply_scalar(x + eps) - act.apply_scalar(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "{act} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Gelu.to_string(), "gelu");
        assert_eq!(Activation::default(), Activation::None);
    }
}

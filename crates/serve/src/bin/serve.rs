//! `tasd-serve` — the network serving daemon.
//!
//! ```text
//! tasd-serve [--addr 127.0.0.1:7474] [--max-batch 32] [--max-wait 2]
//!            [--tick-us 1000] [--queue-cap N] [--shed] [--max-frame-mb 64]
//! ```
//!
//! Runs until a `Shutdown` control frame arrives (the supervisor-friendly stop path;
//! see the server module docs).

use std::process::ExitCode;
use std::time::Duration;

use tasd::OverloadPolicy;
use tasd_serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tasd-serve [--addr HOST:PORT] [--max-batch N] [--max-wait TICKS] \
         [--tick-us MICROS] [--queue-cap N] [--shed] [--max-frame-mb MIB]"
    );
    ExitCode::FAILURE
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> Option<T> {
    let value = args.next()?;
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!("tasd-serve: bad value {value:?} for {flag}");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7474".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => return usage(),
            },
            "--max-batch" => match parse(&mut args, "--max-batch") {
                Some(value) => config.max_batch = value,
                None => return usage(),
            },
            "--max-wait" => match parse(&mut args, "--max-wait") {
                Some(value) => config.max_wait_ticks = value,
                None => return usage(),
            },
            "--tick-us" => match parse::<u64>(&mut args, "--tick-us") {
                Some(value) => config.tick_interval = Duration::from_micros(value),
                None => return usage(),
            },
            "--queue-cap" => match parse(&mut args, "--queue-cap") {
                Some(value) => config.queue_capacity = Some(value),
                None => return usage(),
            },
            "--shed" => config.overload = OverloadPolicy::ShedExpiredFirst,
            "--max-frame-mb" => match parse::<usize>(&mut args, "--max-frame-mb") {
                Some(value) => config.max_frame_bytes = value << 20,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let mut server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("tasd-serve: cannot bind {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!("tasd-serve listening on {}", server.local_addr());
    server.wait();
    println!("tasd-serve: shut down cleanly");
    ExitCode::SUCCESS
}

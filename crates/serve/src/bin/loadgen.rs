//! `tasd-loadgen` — closed-loop load generator for `tasd-serve`.
//!
//! ```text
//! tasd-loadgen [--addr 127.0.0.1:7474] [--conns 4] [--requests 16]
//!              [--shapes 128x256@0.9,256x128@0.7] [--panel-cols 32]
//!              [--config 2:8+1:8 | --dense] [--deadline-us N] [--seed N] [--json]
//! ```
//!
//! Prints the merged latency/throughput report; `--json` emits a machine-readable
//! line instead.

use std::net::ToSocketAddrs;
use std::process::ExitCode;

use tasd_serve::loadgen::{run, LoadShape, LoadSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tasd-loadgen [--addr HOST:PORT] [--conns N] [--requests N] \
         [--shapes RxC@S,...] [--panel-cols N] [--config CFG | --dense] \
         [--deadline-us N] [--seed N] [--json]"
    );
    ExitCode::FAILURE
}

/// Parses one `RxC@S` shape, the sparsity suffix optional (default 0.9).
fn parse_shape(text: &str) -> Option<LoadShape> {
    let (dims, sparsity) = match text.split_once('@') {
        Some((dims, sparsity)) => (dims, sparsity.parse().ok()?),
        None => (text, 0.9),
    };
    let (rows, cols) = dims.split_once('x')?;
    Some(LoadShape {
        rows: rows.parse().ok()?,
        cols: cols.parse().ok()?,
        sparsity,
    })
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> Option<T> {
    let value = args.next()?;
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!("tasd-loadgen: bad value {value:?} for {flag}");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7474".to_string();
    let mut spec = LoadSpec::default();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => return usage(),
            },
            "--conns" => match parse(&mut args, "--conns") {
                Some(value) => spec.connections = value,
                None => return usage(),
            },
            "--requests" => match parse(&mut args, "--requests") {
                Some(value) => spec.requests_per_connection = value,
                None => return usage(),
            },
            "--shapes" => match args.next() {
                Some(value) => {
                    let shapes: Option<Vec<LoadShape>> =
                        value.split(',').map(parse_shape).collect();
                    match shapes {
                        Some(shapes) if !shapes.is_empty() => spec.shapes = shapes,
                        _ => {
                            eprintln!("tasd-loadgen: bad --shapes {value:?}");
                            return usage();
                        }
                    }
                }
                None => return usage(),
            },
            "--panel-cols" => match parse(&mut args, "--panel-cols") {
                Some(value) => spec.panel_cols = value,
                None => return usage(),
            },
            "--config" => match args.next() {
                Some(value) => spec.config = Some(value),
                None => return usage(),
            },
            "--dense" => spec.config = None,
            "--deadline-us" => match parse(&mut args, "--deadline-us") {
                Some(value) => spec.deadline_micros = Some(value),
                None => return usage(),
            },
            "--seed" => match parse(&mut args, "--seed") {
                Some(value) => spec.seed = value,
                None => return usage(),
            },
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let resolved = match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(resolved) => resolved,
        None => {
            eprintln!("tasd-loadgen: cannot resolve {addr}");
            return ExitCode::FAILURE;
        }
    };
    match run(resolved, &spec) {
        Ok(report) => {
            if json {
                println!(
                    "{{\"requests\":{},\"ok\":{},\"errors\":{},\"elapsed_s\":{:.6},\
                     \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"mean_us\":{},\"rps\":{:.2}}}",
                    report.requests,
                    report.ok,
                    report.errors,
                    report.elapsed.as_secs_f64(),
                    report.p50.as_micros(),
                    report.p95.as_micros(),
                    report.p99.as_micros(),
                    report.mean.as_micros(),
                    report.throughput_rps,
                );
            } else {
                println!("{report}");
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("tasd-loadgen: {error}");
            ExitCode::FAILURE
        }
    }
}

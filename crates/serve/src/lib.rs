//! # tasd-serve — network serving front-end for the TASD serving engine
//!
//! This crate puts [`tasd::ServingEngine`] behind a TCP socket:
//!
//! * [`wire`] — the length-prefixed binary frame format (requests, responses,
//!   structured error frames, session control) with a hardened, panic-free decoder;
//! * [`server`] — the server: one shared serving session, a per-connection
//!   reader/writer thread pair, and a background [`TickerHandle`] that owns the
//!   session's logical clock so window-close latency is bounded by wall-clock
//!   `max_wait × tick_interval` no matter what clients do;
//! * [`client`] — a minimal blocking client for tests and tools;
//! * [`loadgen`] — a closed-loop load generator that replays mixed-shape traffic and
//!   reports p50/p95/p99 latency and throughput.
//!
//! # Deploys on the wire
//!
//! The server fronts a [`tasd::WeightStore`]: an
//! [`UpdateWeights`](wire::Frame::UpdateWeights) frame deploys named weights (full
//! registration with a config, incremental push without — only dirty row shards
//! re-prepare), answered by [`UpdateAck`](wire::Frame::UpdateAck);
//! [`NamedRequest`](wire::Frame::NamedRequest) multiplies against the name's current
//! generation, resolved at enqueue so a concurrent deploy never tears an in-flight
//! request. [`Server::bind_restored`] starts from a prepared-cache snapshot (written
//! by [`Server::snapshot`]) so a restarted server decomposes nothing on its first
//! request; the [`Stats`](wire::Frame::Stats) frame reports the store generation,
//! resident cache bytes, and warm-start status. Wire details: `README.md`.
//!
//! # Error frames, not dropped connections
//!
//! Admission-control outcomes ([`QueueFull`](wire::ErrorCode::QueueFull),
//! [`DeadlineExceeded`](wire::ErrorCode::DeadlineExceeded),
//! [`ShuttingDown`](wire::ErrorCode::ShuttingDown)) and execution failures all travel
//! back as [`Frame::Error`](wire::Frame::Error) with the request's id — a client never
//! learns about overload from a reset connection. Only an unrecoverable protocol
//! violation (bytes that do not decode) closes the connection, and even that is
//! preceded by a [`BadFrame`](wire::ErrorCode::BadFrame) error frame.
//!
//! [`TickerHandle`]: tasd::TickerHandle

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::Client;
pub use loadgen::{LoadReport, LoadShape, LoadSpec};
pub use server::{Server, ServerConfig};
pub use wire::{ControlOp, ErrorCode, Frame, RecvError, StatsReport, WireError};

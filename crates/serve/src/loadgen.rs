//! A closed-loop load generator for `tasd-serve`.
//!
//! Each connection runs on its own thread, replaying a round-robin mix of matrix
//! shapes (operands pre-generated per shape, so measured time is serving time, not
//! generation time) and measuring per-request send→receive latency. The merged
//! report carries p50/p95/p99/mean latency and completed-request throughput —
//! exactly what the serving bench records as `serving_net/*`.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use tasd_tensor::{Matrix, MatrixGenerator};

use crate::client::Client;
use crate::wire::Frame;

/// One operand shape in the traffic mix: an `rows × cols` sparse left operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadShape {
    /// Left-operand rows.
    pub rows: usize,
    /// Left-operand cols (also the right operand's rows).
    pub cols: usize,
    /// Fraction of zero entries in the left operand.
    pub sparsity: f64,
}

/// What traffic to replay.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent connections, each on its own thread.
    pub connections: usize,
    /// Closed-loop requests issued per connection.
    pub requests_per_connection: usize,
    /// Shapes replayed round-robin per connection.
    pub shapes: Vec<LoadShape>,
    /// Right-operand panel width shared by every request.
    pub panel_cols: usize,
    /// Decomposition config for every request; `None` runs the exact GEMM.
    pub config: Option<String>,
    /// Relative deadline per request, in microseconds.
    pub deadline_micros: Option<u64>,
    /// Base RNG seed; connection `i` derives `seed + i`.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            connections: 4,
            requests_per_connection: 16,
            shapes: vec![
                LoadShape {
                    rows: 128,
                    cols: 256,
                    sparsity: 0.9,
                },
                LoadShape {
                    rows: 256,
                    cols: 128,
                    sparsity: 0.7,
                },
            ],
            panel_cols: 32,
            config: Some("2:8+1:8".to_string()),
            deadline_micros: None,
            seed: 0x7a5d,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued.
    pub requests: u64,
    /// Requests answered with a response frame.
    pub ok: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
    /// Median send→receive latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Mean latency.
    pub mean: Duration,
    /// Completed requests (ok + errors) per wall-clock second.
    pub throughput_rps: f64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} ok, {} errors) in {:.3}s — p50 {:?}, p95 {:?}, p99 {:?}, mean {:?}, {:.1} req/s",
            self.requests,
            self.ok,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.p50,
            self.p95,
            self.p99,
            self.mean,
            self.throughput_rps,
        )
    }
}

struct ConnectionOutcome {
    latencies: Vec<Duration>,
    ok: u64,
    errors: u64,
}

fn run_connection(
    addr: SocketAddr,
    spec: &LoadSpec,
    connection_index: usize,
) -> io::Result<ConnectionOutcome> {
    let mut gen = MatrixGenerator::seeded(spec.seed + connection_index as u64);
    let operands: Vec<(Matrix, Matrix)> = spec
        .shapes
        .iter()
        .map(|shape| {
            (
                gen.sparse_normal(shape.rows, shape.cols, shape.sparsity),
                gen.normal(shape.cols, spec.panel_cols, 0.0, 1.0),
            )
        })
        .collect();
    let mut client = Client::connect(addr)?;
    let mut outcome = ConnectionOutcome {
        latencies: Vec::with_capacity(spec.requests_per_connection),
        ok: 0,
        errors: 0,
    };
    for request_index in 0..spec.requests_per_connection {
        let (a, b) = &operands[request_index % operands.len()];
        let id = request_index as u64;
        let started = Instant::now();
        client.request(id, a, b, spec.config.as_deref(), spec.deadline_micros)?;
        let answer = client
            .recv()
            .map_err(|e| io::Error::other(e.to_string()))?
            .ok_or_else(|| io::Error::other("server closed mid-run"))?;
        outcome.latencies.push(started.elapsed());
        match answer {
            Frame::Response { .. } => outcome.ok += 1,
            Frame::Error { .. } => outcome.errors += 1,
            other => {
                return Err(io::Error::other(format!(
                    "unexpected frame answering a request: {other:?}"
                )))
            }
        }
    }
    Ok(outcome)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays `spec` against the server at `addr` and merges every connection's
/// measurements. Fails fast on the first transport error.
pub fn run(addr: SocketAddr, spec: &LoadSpec) -> io::Result<LoadReport> {
    assert!(spec.connections > 0, "at least one connection");
    assert!(!spec.shapes.is_empty(), "at least one shape");
    let started = Instant::now();
    let outcomes: Vec<io::Result<ConnectionOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|connection_index| {
                scope.spawn(move || run_connection(addr, spec, connection_index))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|_| Err(io::Error::other("load connection panicked")))
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let mut latencies = Vec::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for outcome in outcomes {
        let outcome = outcome?;
        latencies.extend(outcome.latencies);
        ok += outcome.ok;
        errors += outcome.errors;
    }
    latencies.sort_unstable();
    let completed = ok + errors;
    let mean = if latencies.is_empty() {
        Duration::ZERO
    } else {
        latencies.iter().sum::<Duration>() / latencies.len() as u32
    };
    Ok(LoadReport {
        requests: completed,
        ok,
        errors,
        elapsed,
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
        mean,
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    })
}

//! The `tasd-serve` wire format: length-prefixed binary frames over a byte stream.
//!
//! Every frame is `[len: u32 LE][type: u8][payload]` where `len` counts the type byte
//! plus the payload. Matrices travel as `[rows: u64 LE][cols: u64 LE][f32 LE ×
//! rows·cols]`. All integers are little-endian; f32 payloads are raw IEEE-754 bits, so
//! a round trip is bitwise exact.
//!
//! # Hardening contract
//!
//! The decoder treats every input as untrusted and **never panics**: each failure mode
//! is a structured [`WireError`] —
//!
//! * truncation anywhere (header, type, any field, the f32 payload) →
//!   [`WireError::Truncated`] naming the field;
//! * a `rows × cols` header that disagrees with the payload (the classic codec bug:
//!   Snippet-style deserializers read "whatever bytes are left" and ignore the header)
//!   is caught in both directions — short payloads are [`Truncated`](WireError::Truncated)
//!   at the exact field, excess bytes are [`WireError::TrailingBytes`];
//! * `rows · cols · 4` is computed with checked arithmetic —
//!   [`WireError::ElementOverflow`] instead of a wrap-around under-allocation;
//! * declared frame lengths above the cap are [`WireError::Oversized`] *before* any
//!   allocation, and absurd dimensions (possible at zero width, where the payload is
//!   empty no matter the row count) are [`WireError::DimensionTooLarge`]
//!   (cap [`MAX_MATRIX_DIM`]);
//! * unknown type/op/code bytes and reserved flag bits are their own variants, so a
//!   protocol-version skew fails loudly instead of misparsing.
//!
//! Allocation is bounded by *received* bytes: the decoder verifies the payload is
//! present before sizing any buffer from header-declared counts.

use std::io::{self, Read, Write};
use tasd::{ServingError, ServingStats};
use tasd_tensor::Matrix;

/// Default cap on one frame's body (type byte + payload), applied by
/// [`read_frame`] before any allocation: 64 MiB.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// Cap on either matrix dimension. Bounds decode-side work even for zero-width
/// matrices, whose payload is empty regardless of the declared row count.
pub const MAX_MATRIX_DIM: u64 = 1 << 24;

/// The `id` used by connection-scoped [`Frame::Error`]s (decode failures that are not
/// attributable to any request).
pub const CONNECTION_SCOPE_ID: u64 = u64::MAX;

const TYPE_REQUEST: u8 = 0x01;
const TYPE_CONTROL: u8 = 0x02;
const TYPE_UPDATE_WEIGHTS: u8 = 0x03;
const TYPE_NAMED_REQUEST: u8 = 0x04;
const TYPE_RESPONSE: u8 = 0x81;
const TYPE_ERROR: u8 = 0x82;
const TYPE_CONTROL_ACK: u8 = 0x83;
const TYPE_STATS: u8 = 0x84;
const TYPE_UPDATE_ACK: u8 = 0x85;

const FLAG_CONFIG: u8 = 0b01;
const FLAG_DEADLINE: u8 = 0b10;

/// A structured decode failure: what was malformed and where. See the module docs for
/// the full hardening contract.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before `needed` bytes of the named field arrived.
    Truncated {
        /// The field being decoded when the bytes ran out.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame body carried bytes past the end of its last field.
    TrailingBytes {
        /// How many undecoded bytes were left over.
        extra: usize,
    },
    /// The frame header declared a zero-length body (not even a type byte).
    EmptyFrame,
    /// The declared frame length exceeds the receiver's cap (checked before any
    /// allocation).
    Oversized {
        /// Declared body length.
        declared: usize,
        /// The receiver's frame cap.
        cap: usize,
    },
    /// `rows · cols · 4` overflowed — a wrap-around that a naive decoder would turn
    /// into an under-allocation.
    ElementOverflow {
        /// Declared row count.
        rows: u64,
        /// Declared column count.
        cols: u64,
    },
    /// A single declared dimension exceeds [`MAX_MATRIX_DIM`].
    DimensionTooLarge {
        /// Which dimension ("matrix rows" / "matrix cols").
        what: &'static str,
        /// The declared value.
        value: u64,
    },
    /// The frame's type byte is not part of the protocol.
    UnknownFrameType(u8),
    /// A control frame named an operation this protocol version does not know.
    UnknownControlOp(u8),
    /// An error frame named a code this protocol version does not know.
    UnknownErrorCode(u8),
    /// A request frame set reserved flag bits.
    UnknownRequestFlags(u8),
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// The field that failed to parse.
        context: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated {
                context,
                needed,
                have,
            } => write!(
                f,
                "truncated frame: {context} needs {needed} bytes, only {have} available"
            ),
            WireError::TrailingBytes { extra } => {
                write!(
                    f,
                    "frame length mismatch: {extra} bytes past the last field"
                )
            }
            WireError::EmptyFrame => write!(f, "empty frame: zero-length body"),
            WireError::Oversized { declared, cap } => {
                write!(f, "oversized frame: declared {declared} bytes, cap {cap}")
            }
            WireError::ElementOverflow { rows, cols } => {
                write!(f, "matrix byte size overflows: {rows} x {cols} elements")
            }
            WireError::DimensionTooLarge { what, value } => {
                write!(f, "{what} too large: {value} exceeds cap {MAX_MATRIX_DIM}")
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            WireError::UnknownControlOp(op) => write!(f, "unknown control op 0x{op:02x}"),
            WireError::UnknownErrorCode(c) => write!(f, "unknown error code 0x{c:02x}"),
            WireError::UnknownRequestFlags(bits) => {
                write!(f, "reserved request flag bits set: 0b{bits:08b}")
            }
            WireError::BadUtf8 { context } => write!(f, "{context} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why [`read_frame`] failed: a transport error, or bytes that decoded to garbage.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed (connection reset, etc.).
    Io(io::Error),
    /// The bytes arrived but did not form a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A session-control operation carried by [`Frame::Control`] and acknowledged by
/// [`Frame::ControlAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// No-op round trip (liveness probe; also flushes the write pipeline).
    Ping,
    /// Close and execute the open window now ([`ServingEngine::flush`]).
    ///
    /// [`ServingEngine::flush`]: tasd::ServingEngine::flush
    Flush,
    /// Graceful close: shut admission, execute the parked window. Later requests on
    /// any connection resolve to [`ErrorCode::ShuttingDown`] error frames; the server
    /// keeps running and connections stay open.
    Drain,
    /// Full stop: shut admission, abandon parked requests (as
    /// [`ErrorCode::ShuttingDown`] error frames), then stop the server — the accept
    /// loop exits and every connection is closed after its writer flushes.
    Shutdown,
    /// Ask for the session's [`ServingStats`], answered with a [`Frame::Stats`].
    Stats,
}

impl ControlOp {
    fn to_byte(self) -> u8 {
        match self {
            ControlOp::Ping => 0,
            ControlOp::Flush => 1,
            ControlOp::Drain => 2,
            ControlOp::Shutdown => 3,
            ControlOp::Stats => 4,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, WireError> {
        match byte {
            0 => Ok(ControlOp::Ping),
            1 => Ok(ControlOp::Flush),
            2 => Ok(ControlOp::Drain),
            3 => Ok(ControlOp::Shutdown),
            4 => Ok(ControlOp::Stats),
            other => Err(WireError::UnknownControlOp(other)),
        }
    }
}

/// Why a request failed, as carried by [`Frame::Error`] — the wire projection of
/// [`ServingError`] plus the two connection-level causes the engine never sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The session's bounded queue rejected the request at admission.
    QueueFull,
    /// The request's deadline passed before its window executed.
    DeadlineExceeded,
    /// The session is draining or shut down; the request was refused or abandoned.
    ShuttingDown,
    /// The request was cancelled before delivery.
    Cancelled,
    /// A kernel panicked while executing the request's group (contained per group).
    KernelPanicked,
    /// The request's operand shapes are inconsistent.
    ShapeMismatch,
    /// The underlying execution failed with a (non-shape) tensor error.
    Execution,
    /// The connection sent bytes that did not decode ([`WireError`]); the server
    /// answers with this code at [`CONNECTION_SCOPE_ID`] and closes the connection
    /// (the stream cannot be resynchronized).
    BadFrame,
    /// The frame decoded but its content was unusable (e.g. an unparsable
    /// decomposition config). The connection stays open.
    BadRequest,
    /// A [`Frame::NamedRequest`] or incremental [`Frame::UpdateWeights`] named an
    /// operand the server's weight store has never registered.
    UnknownOperand,
    /// A deploy was rejected without touching the resident weights (shape mismatch
    /// against the resident generation, or preparation failed); the old generation
    /// keeps serving.
    DeployRejected,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Cancelled => 4,
            ErrorCode::KernelPanicked => 5,
            ErrorCode::ShapeMismatch => 6,
            ErrorCode::Execution => 7,
            ErrorCode::BadFrame => 8,
            ErrorCode::BadRequest => 9,
            ErrorCode::UnknownOperand => 10,
            ErrorCode::DeployRejected => 11,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, WireError> {
        match byte {
            1 => Ok(ErrorCode::QueueFull),
            2 => Ok(ErrorCode::DeadlineExceeded),
            3 => Ok(ErrorCode::ShuttingDown),
            4 => Ok(ErrorCode::Cancelled),
            5 => Ok(ErrorCode::KernelPanicked),
            6 => Ok(ErrorCode::ShapeMismatch),
            7 => Ok(ErrorCode::Execution),
            8 => Ok(ErrorCode::BadFrame),
            9 => Ok(ErrorCode::BadRequest),
            10 => Ok(ErrorCode::UnknownOperand),
            11 => Ok(ErrorCode::DeployRejected),
            other => Err(WireError::UnknownErrorCode(other)),
        }
    }

    /// The wire code for an engine-side [`ServingError`].
    pub fn from_serving(error: &ServingError) -> Self {
        match error {
            ServingError::QueueFull => ErrorCode::QueueFull,
            ServingError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServingError::ShuttingDown => ErrorCode::ShuttingDown,
            ServingError::Cancelled => ErrorCode::Cancelled,
            ServingError::KernelPanicked { .. } => ErrorCode::KernelPanicked,
            ServingError::ShapeMismatch { .. } => ErrorCode::ShapeMismatch,
            // `ServingError` is non-exhaustive: any future engine-side variant
            // degrades to the generic execution failure rather than a decode error.
            _ => ErrorCode::Execution,
        }
    }
}

/// The server-side counters answering [`ControlOp::Stats`]: the serving session's
/// numbers plus the deploy-lifecycle state operators use to verify a weight push
/// landed (compare `cache_generation` against the [`Frame::UpdateAck`] generation) and
/// that a restart came back warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReport {
    /// The serving session's counters.
    pub serving: ServingStats,
    /// The weight store's deploy counter (0 when nothing was ever deployed).
    pub cache_generation: u64,
    /// Resident bytes of the engine's decomposition cache (prepared series + packed
    /// execution formats, deduped by allocation).
    pub bytes_resident: u64,
    /// Whether the server started from an intact prepared-cache snapshot (zero
    /// decompositions on the first request against snapshotted weights).
    pub warm_start: bool,
}

/// One protocol frame. Clients send [`Request`](Frame::Request) /
/// [`NamedRequest`](Frame::NamedRequest) / [`UpdateWeights`](Frame::UpdateWeights) /
/// [`Control`](Frame::Control); servers answer with [`Response`](Frame::Response) /
/// [`Error`](Frame::Error) / [`ControlAck`](Frame::ControlAck) /
/// [`UpdateAck`](Frame::UpdateAck) / [`Stats`](Frame::Stats). Responses on one
/// connection arrive in request order.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Multiply `a · b` (with `a` optionally TASD-decomposed under `config`).
    Request {
        /// Client-chosen correlation id, echoed on the answer.
        id: u64,
        /// Decomposition config string (e.g. `"2:8+1:8"`); `None` runs the exact GEMM.
        config: Option<String>,
        /// Relative deadline budget in microseconds from server receipt; `None` never
        /// expires.
        deadline_micros: Option<u64>,
        /// Left-hand operand.
        a: Matrix,
        /// Right-hand panel (`a.cols() × width`).
        b: Matrix,
    },
    /// A session-control operation.
    Control(ControlOp),
    /// Deploy weights under `name` into the server's weight store. With `config`, a
    /// full registration (first deploy of the name, or a config change — every shard
    /// prepares); without, an incremental push against the resident generation (only
    /// dirty row shards re-prepare; the name must already be registered). Answered
    /// with [`UpdateAck`](Frame::UpdateAck) or an [`Error`](Frame::Error) at
    /// [`CONNECTION_SCOPE_ID`] ([`ErrorCode::UnknownOperand`] /
    /// [`ErrorCode::DeployRejected`]); either way the previous generation keeps
    /// serving until the ack.
    UpdateWeights {
        /// The operand's name in the server's weight store.
        name: String,
        /// Decomposition config string for a full registration; `None` pushes
        /// incrementally under the registered config.
        config: Option<String>,
        /// The new weights.
        a: Matrix,
    },
    /// Multiply `name · b` against the named operand's *current* generation (resolved
    /// at enqueue: a concurrent [`UpdateWeights`](Frame::UpdateWeights) never tears an
    /// in-flight request). Answered like [`Request`](Frame::Request), or with
    /// [`ErrorCode::UnknownOperand`] if the name was never deployed.
    NamedRequest {
        /// Client-chosen correlation id, echoed on the answer.
        id: u64,
        /// The operand's name in the server's weight store.
        name: String,
        /// Relative deadline budget in microseconds from server receipt; `None` never
        /// expires.
        deadline_micros: Option<u64>,
        /// Right-hand panel (`operand.cols() × width`).
        b: Matrix,
    },
    /// A successful answer to the request with the same `id`.
    Response {
        /// The request's correlation id.
        id: u64,
        /// The product matrix.
        output: Matrix,
    },
    /// A structured failure: admission control, execution errors, and connection-level
    /// decode failures all arrive as this frame — never as a dropped connection.
    Error {
        /// The failing request's id, or [`CONNECTION_SCOPE_ID`].
        id: u64,
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges a [`Control`](Frame::Control) after the operation completed.
    ControlAck(ControlOp),
    /// Acknowledges an [`UpdateWeights`](Frame::UpdateWeights) after the new
    /// generation is installed and serving. The numbers mirror the store's
    /// `DeployReport`: how much actually changed and re-prepared.
    UpdateAck {
        /// The deployed operand's name.
        name: String,
        /// The store's generation counter after the deploy (unchanged for a no-op
        /// push whose rows were all identical).
        generation: u64,
        /// Rows whose content changed.
        dirty_rows: u64,
        /// Total rows of the operand.
        total_rows: u64,
        /// Row shards containing at least one dirty row.
        dirty_shards: u64,
        /// Total row shards of the operand.
        total_shards: u64,
        /// Decompositions the deploy actually performed (tracks `dirty_shards`, not
        /// `total_shards`: clean shards hit the prepared cache).
        prepares: u64,
    },
    /// The server's counters, answering [`ControlOp::Stats`].
    Stats(StatsReport),
}

/// Appends a `[len: u16 LE][UTF-8]` string field (config strings, operand names).
fn encode_str16(s: &str, out: &mut Vec<u8>) {
    debug_assert!(s.len() <= u16::MAX as usize, "string fields are short");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends a matrix in wire form (`[rows u64][cols u64][f32 ×]`) to `out`.
pub fn encode_matrix(matrix: &Matrix, out: &mut Vec<u8>) {
    out.extend_from_slice(&(matrix.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(matrix.cols() as u64).to_le_bytes());
    out.reserve(matrix.len() * 4);
    for &value in matrix.as_slice() {
        out.extend_from_slice(&value.to_le_bytes());
    }
}

fn take<'a>(
    buf: &mut &'a [u8],
    needed: usize,
    context: &'static str,
) -> Result<&'a [u8], WireError> {
    if buf.len() < needed {
        return Err(WireError::Truncated {
            context,
            needed,
            have: buf.len(),
        });
    }
    let (head, rest) = buf.split_at(needed);
    *buf = rest;
    Ok(head)
}

fn take_u8(buf: &mut &[u8], context: &'static str) -> Result<u8, WireError> {
    Ok(take(buf, 1, context)?[0])
}

fn take_u16(buf: &mut &[u8], context: &'static str) -> Result<u16, WireError> {
    let bytes = take(buf, 2, context)?;
    Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
}

fn take_u32(buf: &mut &[u8], context: &'static str) -> Result<u32, WireError> {
    let bytes = take(buf, 4, context)?;
    Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

fn take_u64(buf: &mut &[u8], context: &'static str) -> Result<u64, WireError> {
    let bytes = take(buf, 8, context)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(raw))
}

/// Decodes a `[len: u16 LE][UTF-8]` string field; `context` names it in errors
/// ("config length"/"config string" style pairs collapse to one context here).
fn take_str16(buf: &mut &[u8], context: &'static str) -> Result<String, WireError> {
    let len = take_u16(buf, context)? as usize;
    let bytes = take(buf, len, context)?;
    Ok(std::str::from_utf8(bytes)
        .map_err(|_| WireError::BadUtf8 { context })?
        .to_string())
}

/// Decodes one wire-form matrix from the front of `buf`, advancing it. Validates the
/// `rows × cols` header against the available payload (see the module docs).
pub fn decode_matrix(buf: &mut &[u8]) -> Result<Matrix, WireError> {
    let rows = take_u64(buf, "matrix rows")?;
    let cols = take_u64(buf, "matrix cols")?;
    if rows > MAX_MATRIX_DIM {
        return Err(WireError::DimensionTooLarge {
            what: "matrix rows",
            value: rows,
        });
    }
    if cols > MAX_MATRIX_DIM {
        return Err(WireError::DimensionTooLarge {
            what: "matrix cols",
            value: cols,
        });
    }
    let elements = rows
        .checked_mul(cols)
        .ok_or(WireError::ElementOverflow { rows, cols })?;
    let payload_bytes = elements
        .checked_mul(4)
        .and_then(|b| usize::try_from(b).ok())
        .ok_or(WireError::ElementOverflow { rows, cols })?;
    // The header-vs-payload check the exemplar codec skipped: the declared element
    // count must actually be present (allocation below is bounded by received bytes).
    let payload = take(buf, payload_bytes, "matrix payload")?;
    let data: Vec<f32> = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Matrix::from_vec(rows as usize, cols as usize, data).map_err(|_| {
        // Unreachable by construction (data.len() == rows·cols); kept as a structured
        // error rather than an unwrap so the decoder stays panic-free.
        WireError::ElementOverflow { rows, cols }
    })
}

/// Encodes `frame` to its full wire form (length prefix included).
///
/// # Errors
///
/// [`WireError::Oversized`] if the body exceeds the `u32` length prefix.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::new();
    match frame {
        Frame::Request {
            id,
            config,
            deadline_micros,
            a,
            b,
        } => {
            body.push(TYPE_REQUEST);
            body.extend_from_slice(&id.to_le_bytes());
            let mut flags = 0u8;
            if config.is_some() {
                flags |= FLAG_CONFIG;
            }
            if deadline_micros.is_some() {
                flags |= FLAG_DEADLINE;
            }
            body.push(flags);
            if let Some(config) = config {
                let bytes = config.as_bytes();
                debug_assert!(bytes.len() <= u16::MAX as usize, "config strings are short");
                body.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                body.extend_from_slice(bytes);
            }
            if let Some(deadline) = deadline_micros {
                body.extend_from_slice(&deadline.to_le_bytes());
            }
            encode_matrix(a, &mut body);
            encode_matrix(b, &mut body);
        }
        Frame::Control(op) => {
            body.push(TYPE_CONTROL);
            body.push(op.to_byte());
        }
        Frame::UpdateWeights { name, config, a } => {
            body.push(TYPE_UPDATE_WEIGHTS);
            let mut flags = 0u8;
            if config.is_some() {
                flags |= FLAG_CONFIG;
            }
            body.push(flags);
            encode_str16(name, &mut body);
            if let Some(config) = config {
                encode_str16(config, &mut body);
            }
            encode_matrix(a, &mut body);
        }
        Frame::NamedRequest {
            id,
            name,
            deadline_micros,
            b,
        } => {
            body.push(TYPE_NAMED_REQUEST);
            body.extend_from_slice(&id.to_le_bytes());
            let mut flags = 0u8;
            if deadline_micros.is_some() {
                flags |= FLAG_DEADLINE;
            }
            body.push(flags);
            encode_str16(name, &mut body);
            if let Some(deadline) = deadline_micros {
                body.extend_from_slice(&deadline.to_le_bytes());
            }
            encode_matrix(b, &mut body);
        }
        Frame::Response { id, output } => {
            body.push(TYPE_RESPONSE);
            body.extend_from_slice(&id.to_le_bytes());
            encode_matrix(output, &mut body);
        }
        Frame::Error { id, code, message } => {
            body.push(TYPE_ERROR);
            body.extend_from_slice(&id.to_le_bytes());
            body.push(code.to_byte());
            let bytes = message.as_bytes();
            body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            body.extend_from_slice(bytes);
        }
        Frame::ControlAck(op) => {
            body.push(TYPE_CONTROL_ACK);
            body.push(op.to_byte());
        }
        Frame::UpdateAck {
            name,
            generation,
            dirty_rows,
            total_rows,
            dirty_shards,
            total_shards,
            prepares,
        } => {
            body.push(TYPE_UPDATE_ACK);
            encode_str16(name, &mut body);
            for counter in [
                *generation,
                *dirty_rows,
                *total_rows,
                *dirty_shards,
                *total_shards,
                *prepares,
            ] {
                body.extend_from_slice(&counter.to_le_bytes());
            }
        }
        Frame::Stats(report) => {
            body.push(TYPE_STATS);
            let stats = &report.serving;
            for counter in [
                stats.enqueued,
                stats.dispatched,
                stats.windows,
                stats.coalesced_windows,
                stats.max_window as u64,
                stats.ticks,
                stats.rejected_full,
                stats.expired,
                stats.shed,
                stats.cancelled,
                stats.shutdown_rejected,
                stats.window_panics,
                report.cache_generation,
                report.bytes_resident,
                u64::from(report.warm_start),
            ] {
                body.extend_from_slice(&counter.to_le_bytes());
            }
        }
    }
    if body.len() > u32::MAX as usize {
        return Err(WireError::Oversized {
            declared: body.len(),
            cap: u32::MAX as usize,
        });
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes a frame body (the bytes after the length prefix). The body must be exactly
/// one frame: leftover bytes are [`WireError::TrailingBytes`].
pub fn decode_frame_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut buf = body;
    let frame_type = take_u8(&mut buf, "frame type").map_err(|_| WireError::EmptyFrame)?;
    let frame = match frame_type {
        TYPE_REQUEST => {
            let id = take_u64(&mut buf, "request id")?;
            let flags = take_u8(&mut buf, "request flags")?;
            if flags & !(FLAG_CONFIG | FLAG_DEADLINE) != 0 {
                return Err(WireError::UnknownRequestFlags(flags));
            }
            let config = if flags & FLAG_CONFIG != 0 {
                let len = take_u16(&mut buf, "config length")? as usize;
                let bytes = take(&mut buf, len, "config string")?;
                Some(
                    std::str::from_utf8(bytes)
                        .map_err(|_| WireError::BadUtf8 {
                            context: "config string",
                        })?
                        .to_string(),
                )
            } else {
                None
            };
            let deadline_micros = if flags & FLAG_DEADLINE != 0 {
                Some(take_u64(&mut buf, "deadline")?)
            } else {
                None
            };
            let a = decode_matrix(&mut buf)?;
            let b = decode_matrix(&mut buf)?;
            Frame::Request {
                id,
                config,
                deadline_micros,
                a,
                b,
            }
        }
        TYPE_CONTROL => Frame::Control(ControlOp::from_byte(take_u8(&mut buf, "control op")?)?),
        TYPE_UPDATE_WEIGHTS => {
            let flags = take_u8(&mut buf, "update flags")?;
            if flags & !FLAG_CONFIG != 0 {
                return Err(WireError::UnknownRequestFlags(flags));
            }
            let name = take_str16(&mut buf, "operand name")?;
            let config = if flags & FLAG_CONFIG != 0 {
                Some(take_str16(&mut buf, "config string")?)
            } else {
                None
            };
            let a = decode_matrix(&mut buf)?;
            Frame::UpdateWeights { name, config, a }
        }
        TYPE_NAMED_REQUEST => {
            let id = take_u64(&mut buf, "request id")?;
            let flags = take_u8(&mut buf, "request flags")?;
            if flags & !FLAG_DEADLINE != 0 {
                return Err(WireError::UnknownRequestFlags(flags));
            }
            let name = take_str16(&mut buf, "operand name")?;
            let deadline_micros = if flags & FLAG_DEADLINE != 0 {
                Some(take_u64(&mut buf, "deadline")?)
            } else {
                None
            };
            let b = decode_matrix(&mut buf)?;
            Frame::NamedRequest {
                id,
                name,
                deadline_micros,
                b,
            }
        }
        TYPE_RESPONSE => {
            let id = take_u64(&mut buf, "response id")?;
            let output = decode_matrix(&mut buf)?;
            Frame::Response { id, output }
        }
        TYPE_ERROR => {
            let id = take_u64(&mut buf, "error id")?;
            let code = ErrorCode::from_byte(take_u8(&mut buf, "error code")?)?;
            let len = take_u32(&mut buf, "error message length")? as usize;
            let bytes = take(&mut buf, len, "error message")?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadUtf8 {
                    context: "error message",
                })?
                .to_string();
            Frame::Error { id, code, message }
        }
        TYPE_CONTROL_ACK => {
            Frame::ControlAck(ControlOp::from_byte(take_u8(&mut buf, "control op")?)?)
        }
        TYPE_UPDATE_ACK => {
            let name = take_str16(&mut buf, "operand name")?;
            let mut counters = [0u64; 6];
            for counter in counters.iter_mut() {
                *counter = take_u64(&mut buf, "update ack counter")?;
            }
            Frame::UpdateAck {
                name,
                generation: counters[0],
                dirty_rows: counters[1],
                total_rows: counters[2],
                dirty_shards: counters[3],
                total_shards: counters[4],
                prepares: counters[5],
            }
        }
        TYPE_STATS => {
            let mut counters = [0u64; 15];
            for counter in counters.iter_mut() {
                *counter = take_u64(&mut buf, "stats counter")?;
            }
            Frame::Stats(StatsReport {
                serving: ServingStats {
                    enqueued: counters[0],
                    dispatched: counters[1],
                    windows: counters[2],
                    coalesced_windows: counters[3],
                    max_window: counters[4] as usize,
                    ticks: counters[5],
                    rejected_full: counters[6],
                    expired: counters[7],
                    shed: counters[8],
                    cancelled: counters[9],
                    shutdown_rejected: counters[10],
                    window_panics: counters[11],
                },
                cache_generation: counters[12],
                bytes_resident: counters[13],
                // Tolerant on purpose: any nonzero flag means warm (the encoder only
                // ever writes 0 or 1).
                warm_start: counters[14] != 0,
            })
        }
        other => return Err(WireError::UnknownFrameType(other)),
    };
    if !buf.is_empty() {
        return Err(WireError::TrailingBytes { extra: buf.len() });
    }
    Ok(frame)
}

/// Decodes one full frame (length prefix included) from the front of `bytes`,
/// returning the frame and the bytes consumed. Pure-buffer twin of [`read_frame`] for
/// codec tests.
pub fn decode_frame(bytes: &[u8], max_frame: usize) -> Result<(Frame, usize), WireError> {
    let mut buf = bytes;
    let len = take_u32(&mut buf, "frame header")? as usize;
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    if len > max_frame {
        return Err(WireError::Oversized {
            declared: len,
            cap: max_frame,
        });
    }
    let body = take(&mut buf, len, "frame body")?;
    Ok((decode_frame_body(body)?, 4 + len))
}

/// Writes `frame` to `w` in wire form (no flush — callers own batching).
///
/// # Errors
///
/// Transport errors pass through; an unencodable frame (body beyond the `u32` prefix)
/// surfaces as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    w.write_all(&bytes)
}

/// Reads until `buf` is full or EOF; returns how many bytes were read.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads one frame from `r`, enforcing `max_frame` on the declared body length before
/// allocating. Returns `Ok(None)` on a clean EOF at a frame boundary; EOF anywhere
/// inside a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Frame>, RecvError> {
    let mut header = [0u8; 4];
    let got = read_full(r, &mut header).map_err(RecvError::Io)?;
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(RecvError::Wire(WireError::Truncated {
            context: "frame header",
            needed: header.len(),
            have: got,
        }));
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(RecvError::Wire(WireError::EmptyFrame));
    }
    if len > max_frame {
        return Err(RecvError::Wire(WireError::Oversized {
            declared: len,
            cap: max_frame,
        }));
    }
    let mut body = vec![0u8; len];
    let got = read_full(r, &mut body).map_err(RecvError::Io)?;
    if got < len {
        return Err(RecvError::Wire(WireError::Truncated {
            context: "frame body",
            needed: len,
            have: got,
        }));
    }
    decode_frame_body(&body).map(Some).map_err(RecvError::Wire)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * 31 + j) as f32 * 0.5 - 3.0)
    }

    #[test]
    fn matrix_roundtrip_is_bitwise() {
        for (rows, cols) in [(0, 0), (0, 5), (5, 0), (1, 1), (3, 7)] {
            let m = sample_matrix(rows, cols);
            let mut bytes = Vec::new();
            encode_matrix(&m, &mut bytes);
            let mut buf = bytes.as_slice();
            let back = decode_matrix(&mut buf).expect("well-formed");
            assert!(buf.is_empty());
            assert_eq!(back, m);
        }
    }

    #[test]
    fn frame_roundtrip_every_variant() {
        let frames = vec![
            Frame::Request {
                id: 7,
                config: Some("2:8+1:8".to_string()),
                deadline_micros: Some(1500),
                a: sample_matrix(4, 6),
                b: sample_matrix(6, 2),
            },
            Frame::Request {
                id: 8,
                config: None,
                deadline_micros: None,
                a: sample_matrix(0, 3),
                b: sample_matrix(3, 0),
            },
            Frame::Control(ControlOp::Drain),
            Frame::Response {
                id: 9,
                output: sample_matrix(2, 2),
            },
            Frame::Error {
                id: CONNECTION_SCOPE_ID,
                code: ErrorCode::BadFrame,
                message: "truncated frame: matrix payload needs 12 bytes".to_string(),
            },
            Frame::ControlAck(ControlOp::Shutdown),
            Frame::UpdateWeights {
                name: "mlp.0.weight".to_string(),
                config: Some("2:8+1:8".to_string()),
                a: sample_matrix(4, 6),
            },
            Frame::UpdateWeights {
                name: "mlp.0.weight".to_string(),
                config: None,
                a: sample_matrix(4, 6),
            },
            Frame::NamedRequest {
                id: 11,
                name: "mlp.0.weight".to_string(),
                deadline_micros: Some(2000),
                b: sample_matrix(6, 3),
            },
            Frame::NamedRequest {
                id: 12,
                name: String::new(),
                deadline_micros: None,
                b: sample_matrix(6, 0),
            },
            Frame::UpdateAck {
                name: "mlp.0.weight".to_string(),
                generation: 3,
                dirty_rows: 17,
                total_rows: 256,
                dirty_shards: 2,
                total_shards: 8,
                prepares: 2,
            },
            Frame::Stats(StatsReport {
                serving: ServingStats {
                    enqueued: 1,
                    dispatched: 2,
                    windows: 3,
                    coalesced_windows: 4,
                    max_window: 5,
                    ticks: 6,
                    rejected_full: 7,
                    expired: 8,
                    shed: 9,
                    cancelled: 10,
                    shutdown_rejected: 11,
                    window_panics: 12,
                },
                cache_generation: 13,
                bytes_resident: 14,
                warm_start: true,
            }),
        ];
        for frame in frames {
            let bytes = encode_frame(&frame).expect("encodable");
            let (back, consumed) =
                decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES).expect("well-formed");
            assert_eq!(consumed, bytes.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn truncation_is_structured_at_every_length() {
        let frame = Frame::Request {
            id: 1,
            config: Some("2:8".to_string()),
            deadline_micros: Some(10),
            a: sample_matrix(3, 3),
            b: sample_matrix(3, 2),
        };
        let bytes = encode_frame(&frame).expect("encodable");
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_BYTES)
                .expect_err("every prefix is malformed");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        // Same property for the deploy-era frames (string fields + flags + matrix).
        for frame in [
            Frame::UpdateWeights {
                name: "w".to_string(),
                config: Some("2:8".to_string()),
                a: sample_matrix(3, 3),
            },
            Frame::NamedRequest {
                id: 2,
                name: "w".to_string(),
                deadline_micros: Some(10),
                b: sample_matrix(3, 2),
            },
            Frame::UpdateAck {
                name: "w".to_string(),
                generation: 1,
                dirty_rows: 2,
                total_rows: 3,
                dirty_shards: 1,
                total_shards: 1,
                prepares: 1,
            },
        ] {
            let bytes = encode_frame(&frame).expect("encodable");
            for cut in 0..bytes.len() {
                let err = decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_BYTES)
                    .expect_err("every prefix is malformed");
                assert!(
                    matches!(err, WireError::Truncated { .. }),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn header_payload_mismatch_is_rejected_both_directions() {
        // Shorter payload than rows×cols declares: Truncated at the payload.
        let mut bytes = Vec::new();
        encode_matrix(&sample_matrix(2, 2), &mut bytes);
        bytes.truncate(bytes.len() - 4); // drop one element
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_matrix(&mut buf),
            Err(WireError::Truncated {
                context: "matrix payload",
                ..
            })
        ));
        // Longer: extra bytes survive matrix decode but fail the frame-level check.
        let mut body = vec![TYPE_RESPONSE];
        body.extend_from_slice(&1u64.to_le_bytes());
        encode_matrix(&sample_matrix(2, 2), &mut body);
        body.extend_from_slice(&[0xAB, 0xCD]);
        assert_eq!(
            decode_frame_body(&body),
            Err(WireError::TrailingBytes { extra: 2 })
        );
    }

    #[test]
    fn overflow_and_caps_are_checked() {
        // A huge-but-capped element count with no payload dies as Truncated *before*
        // any allocation sized from the header (the capped dims keep rows·cols·4
        // within u64 on 64-bit targets, so the checked-mul guard is backstop only).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(1u64 << 23).to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 23).to_le_bytes());
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_matrix(&mut buf),
            Err(WireError::Truncated {
                context: "matrix payload",
                ..
            })
        ));
        // Absurd dimension at zero width (payload would be empty — dims still capped).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_matrix(&mut buf),
            Err(WireError::DimensionTooLarge { .. })
        ));
        // Declared frame length above the cap fails before allocation.
        let mut framed = Vec::new();
        framed.extend_from_slice(&(1024u32).to_le_bytes());
        framed.push(TYPE_CONTROL);
        assert!(matches!(
            decode_frame(&framed, 16),
            Err(WireError::Oversized {
                declared: 1024,
                cap: 16
            })
        ));
    }

    #[test]
    fn unknown_bytes_are_structured() {
        assert_eq!(
            decode_frame_body(&[0x7F]),
            Err(WireError::UnknownFrameType(0x7F))
        );
        assert_eq!(
            decode_frame_body(&[TYPE_CONTROL, 200]),
            Err(WireError::UnknownControlOp(200))
        );
        assert_eq!(decode_frame_body(&[]), Err(WireError::EmptyFrame));
        let mut body = vec![TYPE_REQUEST];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0b1000_0000); // reserved flag bit
        assert_eq!(
            decode_frame_body(&body),
            Err(WireError::UnknownRequestFlags(0b1000_0000))
        );
        // Deploy frames police their reserved bits too: UpdateWeights only knows the
        // config flag, NamedRequest only the deadline flag.
        assert_eq!(
            decode_frame_body(&[TYPE_UPDATE_WEIGHTS, FLAG_DEADLINE]),
            Err(WireError::UnknownRequestFlags(FLAG_DEADLINE))
        );
        let mut body = vec![TYPE_NAMED_REQUEST];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(FLAG_CONFIG);
        assert_eq!(
            decode_frame_body(&body),
            Err(WireError::UnknownRequestFlags(FLAG_CONFIG))
        );
    }

    #[test]
    fn stream_reader_distinguishes_clean_eof_from_truncation() {
        let frame = Frame::Control(ControlOp::Ping);
        let bytes = encode_frame(&frame).expect("encodable");
        // Clean EOF at a frame boundary.
        let mut cursor = io::Cursor::new(bytes.clone());
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).expect("frame"),
            Some(frame)
        );
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("clean eof")
            .is_none());
        // EOF inside a frame is Truncated, not a clean close.
        let mut cursor = io::Cursor::new(bytes[..bytes.len() - 1].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(RecvError::Wire(WireError::Truncated { .. }))
        ));
    }
}

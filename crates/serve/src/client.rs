//! A minimal blocking client for the `tasd-serve` wire protocol.
//!
//! One [`Client`] owns one connection. Requests are correlated by caller-chosen ids
//! and answered in request order, so the simplest usage is fully synchronous:
//! [`request`](Client::request) then [`recv`](Client::recv). Pipelining (several
//! `request`s before the first `recv`) is also valid — the server's per-connection
//! writer preserves FIFO order.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tasd_tensor::Matrix;

use crate::wire::{read_frame, write_frame, ControlOp, Frame, RecvError, DEFAULT_MAX_FRAME_BYTES};

/// A blocking connection to a `tasd-serve` server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr` with the default frame cap.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader_stream = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            max_frame: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Overrides the receive-side frame cap (must match the server's to accept the
    /// largest responses it can send).
    #[must_use]
    pub fn with_max_frame(mut self, max_frame: usize) -> Client {
        self.max_frame = max_frame;
        self
    }

    /// Writes one frame and flushes it.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()
    }

    /// Reads the next frame; `Ok(None)` means the server closed the connection at a
    /// frame boundary.
    pub fn recv(&mut self) -> Result<Option<Frame>, RecvError> {
        read_frame(&mut self.reader, self.max_frame)
    }

    /// Sends a multiply request: `a · b`, optionally TASD-decomposed under `config`
    /// (e.g. `"2:8+1:8"`), optionally bounded by a relative deadline in microseconds.
    pub fn request(
        &mut self,
        id: u64,
        a: &Matrix,
        b: &Matrix,
        config: Option<&str>,
        deadline_micros: Option<u64>,
    ) -> io::Result<()> {
        self.send(&Frame::Request {
            id,
            config: config.map(str::to_string),
            deadline_micros,
            a: a.clone(),
            b: b.clone(),
        })
    }

    /// Sends a multiply request against a *named* operand deployed on the server
    /// (its current generation is resolved server-side at enqueue).
    pub fn request_named(
        &mut self,
        id: u64,
        name: &str,
        b: &Matrix,
        deadline_micros: Option<u64>,
    ) -> io::Result<()> {
        self.send(&Frame::NamedRequest {
            id,
            name: name.to_string(),
            deadline_micros,
            b: b.clone(),
        })
    }

    /// Deploys weights under `name`. With `config` (e.g. `"2:8+1:8"`) this is a full
    /// registration; without, an incremental push against the registered config that
    /// re-prepares only dirty row shards. The server answers with an `UpdateAck` (or
    /// a structured error frame) via [`recv`](Client::recv).
    pub fn update_weights(
        &mut self,
        name: &str,
        a: &Matrix,
        config: Option<&str>,
    ) -> io::Result<()> {
        self.send(&Frame::UpdateWeights {
            name: name.to_string(),
            config: config.map(str::to_string),
            a: a.clone(),
        })
    }

    /// Sends a control frame (the matching ack or stats frame arrives via
    /// [`recv`](Client::recv), after any in-flight responses).
    pub fn control(&mut self, op: ControlOp) -> io::Result<()> {
        self.send(&Frame::Control(op))
    }
}

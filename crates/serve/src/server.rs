//! The `tasd-serve` server: a TCP accept loop over one shared serving session.
//!
//! # Thread anatomy
//!
//! ```text
//! accept thread ──spawns──▶ reader thread (per connection)
//!                               │  decodes frames, enqueues into the session,
//!                               │  pushes (id, ResponseHandle) into an mpsc channel
//!                               ▼
//!                           writer thread (per connection)
//!                               waits each handle passively, encodes the answer
//!
//! ticker thread (one, TickerHandle) — owns ServingEngine::tick()
//! ```
//!
//! The writer waits with [`wait_without_dispatch`](tasd::ResponseHandle::wait_without_dispatch):
//! it must **not** force-close the open window (that would defeat cross-connection
//! coalescing), and it does not need to — the background ticker guarantees every
//! window closes within `max_wait × tick_interval` of wall-clock time. This is the
//! network-facing fix for the unowned-ticker latency bug (see
//! `tasd::engine::ticker`).
//!
//! # Ordering guarantee
//!
//! Responses on one connection are written in request order (the per-connection
//! channel is FIFO and the writer drains it sequentially). Control acks are ordered
//! with the requests around them the same way.
//!
//! # Lifecycle
//!
//! [`ControlOp::Drain`] closes admission on the *session* (every later request, on
//! any connection, resolves to a [`ErrorCode::ShuttingDown`] error frame) but keeps
//! the server and its connections up. [`ControlOp::Shutdown`] is the SIGTERM path:
//! it shuts the session down (parked requests resolve as `ShuttingDown` error
//! frames, in-flight windows finish), acks, then stops the whole server —
//! [`Server::wait`] returns after tearing everything down. std cannot install a
//! signal handler without platform crates, so process supervisors should send the
//! `Shutdown` control frame instead of relying on signal delivery.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tasd::{
    load_snapshot, save_snapshot, BatchRequest, DeployError, ExecutionEngine, LoadOutcome,
    OverloadPolicy, ResponseHandle, ServingEngine, SnapshotStats, TasdConfig, TickerHandle,
    WeightStore,
};

use crate::wire::{
    read_frame, write_frame, ControlOp, ErrorCode, Frame, RecvError, StatsReport,
    CONNECTION_SCOPE_ID, DEFAULT_MAX_FRAME_BYTES,
};

/// How the server's serving session and transport are shaped.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Window-closing batch size ([`ServingEngine::with_max_batch`]).
    pub max_batch: usize,
    /// Window-closing tick budget ([`ServingEngine::with_max_wait`]).
    pub max_wait_ticks: u64,
    /// Wall-clock interval between background ticks; a parked window therefore closes
    /// within `max_wait_ticks × tick_interval` of real time.
    pub tick_interval: Duration,
    /// Bounded admission queue, if any ([`ServingEngine::with_queue_capacity`]).
    pub queue_capacity: Option<usize>,
    /// What a full queue does with new arrivals.
    pub overload: OverloadPolicy,
    /// Per-frame size cap enforced on receive, before any allocation.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 32,
            max_wait_ticks: 2,
            tick_interval: Duration::from_millis(1),
            queue_capacity: None,
            overload: OverloadPolicy::RejectNew,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

struct ConnectionRegistry {
    /// One `(registered stream clone, thread)` pair per live connection; finished
    /// pairs are pruned on each accept so a long-running server does not accumulate
    /// dead fds.
    connections: Vec<(TcpStream, JoinHandle<()>)>,
}

struct ServerShared {
    session: ServingEngine,
    /// Named serving operands; `UpdateWeights` deploys into it, `NamedRequest`
    /// resolves through it. Shares the session's engine (and its prepared cache).
    store: Arc<WeightStore>,
    /// Whether startup restored an intact prepared-cache snapshot (reported in the
    /// `Stats` frame so operators can verify a warm restart).
    warm_start: bool,
    /// Fast-path flag the accept loop polls between connections.
    stop: AtomicBool,
    /// Condvar-guarded stop latch [`Server::wait`] blocks on.
    stop_signal: Mutex<bool>,
    stop_cv: Condvar,
    connections: Mutex<ConnectionRegistry>,
    max_frame: usize,
}

impl ServerShared {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut stop_signal = self
                .stop_signal
                .lock()
                .expect("tasd-serve stop-signal lock poisoned");
            *stop_signal = true;
        }
        self.stop_cv.notify_all();
    }
}

/// A running `tasd-serve` instance: accept loop, per-connection threads, and the
/// background ticker that owns the session's logical clock.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    ticker: Option<TickerHandle>,
    stopped: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("stopped", &self.stopped)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), builds a fresh
    /// [`ExecutionEngine`] + serving session shaped by `config`, spawns the accept
    /// loop and the background ticker, and returns immediately.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let engine = Arc::new(ExecutionEngine::builder().build());
        Server::bind_over(addr, config, engine)
    }

    /// [`bind`](Server::bind), but serving through a caller-supplied engine (shared
    /// caches with in-process work).
    pub fn bind_over(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        engine: Arc<ExecutionEngine>,
    ) -> io::Result<Server> {
        Server::bind_inner(addr, config, engine, false)
    }

    /// [`bind_over`](Server::bind_over), restoring the engine's prepared cache from a
    /// snapshot first (see [`tasd::load_snapshot`]). Returns the server together with
    /// the load outcome; a defective snapshot is a *cold* start, never a bind error —
    /// the warm-start flag in the `Stats` frame reflects the outcome. After a warm
    /// start, the first request against snapshotted weights decomposes nothing.
    pub fn bind_restored(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        engine: Arc<ExecutionEngine>,
        snapshot: &Path,
    ) -> io::Result<(Server, LoadOutcome)> {
        let outcome = load_snapshot(&engine, snapshot);
        let server = Server::bind_inner(addr, config, engine, outcome.is_warm())?;
        Ok((server, outcome))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        engine: Arc<ExecutionEngine>,
        warm_start: bool,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let store = Arc::new(WeightStore::new(Arc::clone(&engine)));
        let mut session = ServingEngine::over(engine)
            .with_max_batch(config.max_batch)
            .with_max_wait(config.max_wait_ticks)
            .with_overload_policy(config.overload);
        if let Some(capacity) = config.queue_capacity {
            session = session.with_queue_capacity(capacity);
        }
        let ticker = session.spawn_ticker(config.tick_interval);
        let shared = Arc::new(ServerShared {
            session,
            store,
            warm_start,
            stop: AtomicBool::new(false),
            stop_signal: Mutex::new(false),
            stop_cv: Condvar::new(),
            connections: Mutex::new(ConnectionRegistry {
                connections: Vec::new(),
            }),
            max_frame: config.max_frame_bytes,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("tasd-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            ticker: Some(ticker),
            stopped: false,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving session behind the socket — for stats and in-process comparison.
    pub fn session(&self) -> &ServingEngine {
        &self.shared.session
    }

    /// The server's weight store — the in-process twin of the `UpdateWeights` /
    /// `NamedRequest` wire surface (deploys made here are visible on the wire and
    /// vice versa).
    pub fn store(&self) -> &Arc<WeightStore> {
        &self.shared.store
    }

    /// Snapshots the engine's prepared cache to `path` (see [`tasd::save_snapshot`]);
    /// a later [`bind_restored`](Server::bind_restored) over it starts warm.
    pub fn snapshot(&self, path: &Path) -> io::Result<SnapshotStats> {
        save_snapshot(self.shared.store.engine(), path)
    }

    /// Graceful session drain: closes admission and executes the parked window. The
    /// server keeps running; later requests on any connection resolve to
    /// [`ErrorCode::ShuttingDown`] error frames.
    pub fn drain(&self) {
        self.shared.session.drain();
    }

    /// Blocks until a [`ControlOp::Shutdown`] control frame (or another thread's
    /// [`shutdown`](Server::shutdown)) stops the server, then tears everything down.
    pub fn wait(&mut self) {
        {
            let mut stop_signal = self
                .shared
                .stop_signal
                .lock()
                .expect("tasd-serve stop-signal lock poisoned");
            while !*stop_signal {
                stop_signal = self
                    .shared
                    .stop_cv
                    .wait(stop_signal)
                    .expect("tasd-serve stop-signal lock poisoned");
            }
        }
        self.shutdown();
    }

    /// Stops the server: shuts the session down (parked requests resolve to
    /// `ShuttingDown` error frames, in-flight windows finish), unblocks and joins the
    /// accept loop, closes every connection after its writer flushed, and stops the
    /// ticker. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.request_stop();
        self.shared.session.shutdown();
        // Unblock the (blocking) accept call with a throwaway connection; the loop
        // re-checks the stop flag before handling it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let live = {
            let mut connections = self
                .shared
                .connections
                .lock()
                .expect("tasd-serve connection registry lock poisoned");
            std::mem::take(&mut connections.connections)
        };
        // Read-side shutdown unblocks parked readers with a clean EOF while leaving
        // the write side open for writers still flushing final error frames.
        for (stream, _) in &live {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, thread) in live {
            let _ = thread.join();
        }
        if let Some(ticker) = self.ticker.take() {
            ticker.stop();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(stream) => stream,
            // Transient accept errors (e.g. aborted handshakes) don't kill the server.
            Err(_) => continue,
        };
        let registered = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let conn_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("tasd-serve-conn".to_string())
            .spawn(move || handle_connection(conn_shared, stream));
        let thread = match thread {
            Ok(thread) => thread,
            Err(_) => continue,
        };
        {
            let mut connections = shared
                .connections
                .lock()
                .expect("tasd-serve connection registry lock poisoned");
            // Prune connections whose threads already exited (their sockets are shut
            // down); without this a long-running server accumulates dead fds.
            connections
                .connections
                .retain(|(_, thread)| !thread.is_finished());
            connections.connections.push((registered, thread));
        }
    }
}

/// What the reader hands the writer, in request order.
enum WriterMsg {
    /// Wait this handle (passively) and write the response or error frame.
    Deliver { id: u64, handle: ResponseHandle },
    /// Write this frame as-is (acks, stats, reader-side errors).
    Frame(Frame),
}

fn handle_connection(shared: Arc<ServerShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let writer_thread = std::thread::Builder::new()
        .name("tasd-serve-writer".to_string())
        .spawn(move || writer_loop(writer_stream, rx));
    let writer_thread = match writer_thread {
        Ok(thread) => thread,
        Err(_) => return,
    };
    reader_loop(&shared, &stream, &tx);
    // Dropping the sender ends the writer's FIFO drain once queued answers flush.
    drop(tx);
    let _ = writer_thread.join();
    // Send the FIN ourselves: the registry holds a clone of this socket (for server
    // teardown), so merely dropping our handles would leave the peer waiting on a
    // connection that is already dead.
    let _ = stream.shutdown(Shutdown::Both);
}

fn reader_loop(shared: &ServerShared, stream: &TcpStream, tx: &mpsc::Sender<WriterMsg>) {
    let session = &shared.session;
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader, shared.max_frame) {
            Ok(Some(frame)) => frame,
            // Clean EOF at a frame boundary: the client hung up.
            Ok(None) => return,
            Err(RecvError::Io(_)) => return,
            Err(RecvError::Wire(wire_error)) => {
                // The stream cannot be resynchronized after a framing error: report
                // it as a structured frame, then close.
                let _ = tx.send(WriterMsg::Frame(Frame::Error {
                    id: CONNECTION_SCOPE_ID,
                    code: ErrorCode::BadFrame,
                    message: wire_error.to_string(),
                }));
                return;
            }
        };
        match frame {
            Frame::Request {
                id,
                config,
                deadline_micros,
                a,
                b,
            } => {
                let config = match config.as_deref().map(TasdConfig::parse).transpose() {
                    Ok(config) => config,
                    Err(parse_error) => {
                        // The frame decoded fine; only this request is unusable.
                        let _ = tx.send(WriterMsg::Frame(Frame::Error {
                            id,
                            code: ErrorCode::BadRequest,
                            message: format!("unparsable decomposition config: {parse_error}"),
                        }));
                        continue;
                    }
                };
                let mut request = match config {
                    Some(config) => BatchRequest::decomposed(a, config, b),
                    None => BatchRequest::dense(a, b),
                };
                if let Some(micros) = deadline_micros {
                    request = request.with_deadline(session.now() + Duration::from_micros(micros));
                }
                // Admission-control rejections (QueueFull / ShuttingDown) resolve the
                // handle immediately; the writer turns them into error frames.
                let handle = session.enqueue(request);
                if tx.send(WriterMsg::Deliver { id, handle }).is_err() {
                    return;
                }
            }
            Frame::UpdateWeights { name, config, a } => {
                // Deploys run inline on this reader thread: a push blocks only *this*
                // connection's reads (deploys are rare and deploy clients are
                // dedicated), while serving traffic on every other connection keeps
                // enqueueing — the store is never locked across preparation.
                let result = match config {
                    Some(text) => match TasdConfig::parse(&text) {
                        Ok(parsed) => shared.store.register(&name, a, parsed),
                        Err(parse_error) => {
                            let _ = tx.send(WriterMsg::Frame(Frame::Error {
                                id: CONNECTION_SCOPE_ID,
                                code: ErrorCode::BadRequest,
                                message: format!("unparsable decomposition config: {parse_error}"),
                            }));
                            continue;
                        }
                    },
                    None => shared.store.push(&name, a),
                };
                let answer = match result {
                    Ok(report) => Frame::UpdateAck {
                        name,
                        generation: report.generation,
                        dirty_rows: report.dirty_rows as u64,
                        total_rows: report.total_rows as u64,
                        dirty_shards: report.dirty_shards as u64,
                        total_shards: report.total_shards as u64,
                        prepares: report.prepares,
                    },
                    Err(error @ DeployError::UnknownOperand { .. }) => Frame::Error {
                        id: CONNECTION_SCOPE_ID,
                        code: ErrorCode::UnknownOperand,
                        message: error.to_string(),
                    },
                    // ShapeMismatch / PreparePanicked (and any future rejection): the
                    // resident generation keeps serving untouched.
                    Err(error) => Frame::Error {
                        id: CONNECTION_SCOPE_ID,
                        code: ErrorCode::DeployRejected,
                        message: error.to_string(),
                    },
                };
                let _ = tx.send(WriterMsg::Frame(answer));
            }
            Frame::NamedRequest {
                id,
                name,
                deadline_micros,
                b,
            } => {
                // Resolve the operand's current generation *now*, at enqueue: the
                // request keeps that generation's weights bitwise even if a deploy
                // swaps the name before its window executes.
                let Some(generation) = shared.store.resolve(&name) else {
                    let _ = tx.send(WriterMsg::Frame(Frame::Error {
                        id,
                        code: ErrorCode::UnknownOperand,
                        message: format!("unknown operand {name:?}: deploy it first"),
                    }));
                    continue;
                };
                let mut request = generation.request(b);
                if let Some(micros) = deadline_micros {
                    request = request.with_deadline(session.now() + Duration::from_micros(micros));
                }
                let handle = session.enqueue(request);
                if tx.send(WriterMsg::Deliver { id, handle }).is_err() {
                    return;
                }
            }
            Frame::Control(op) => match op {
                ControlOp::Ping => {
                    let _ = tx.send(WriterMsg::Frame(Frame::ControlAck(ControlOp::Ping)));
                }
                ControlOp::Flush => {
                    session.flush();
                    let _ = tx.send(WriterMsg::Frame(Frame::ControlAck(ControlOp::Flush)));
                }
                ControlOp::Drain => {
                    session.drain();
                    let _ = tx.send(WriterMsg::Frame(Frame::ControlAck(ControlOp::Drain)));
                }
                ControlOp::Shutdown => {
                    // Shut the session first so every parked request's error frame is
                    // queued ahead of the ack, then stop the whole server.
                    session.shutdown();
                    let _ = tx.send(WriterMsg::Frame(Frame::ControlAck(ControlOp::Shutdown)));
                    shared.request_stop();
                    return;
                }
                ControlOp::Stats => {
                    let report = StatsReport {
                        serving: session.stats(),
                        cache_generation: shared.store.generation(),
                        bytes_resident: shared.store.engine().cache_stats().bytes_resident as u64,
                        warm_start: shared.warm_start,
                    };
                    let _ = tx.send(WriterMsg::Frame(Frame::Stats(report)));
                }
            },
            // Server-to-client frames arriving at the server are a protocol violation.
            Frame::Response { .. }
            | Frame::Error { .. }
            | Frame::ControlAck(_)
            | Frame::UpdateAck { .. }
            | Frame::Stats(_) => {
                let _ = tx.send(WriterMsg::Frame(Frame::Error {
                    id: CONNECTION_SCOPE_ID,
                    code: ErrorCode::BadFrame,
                    message: "client sent a server-to-client frame".to_string(),
                }));
                return;
            }
        }
    }
}

fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<WriterMsg>) {
    let mut writer = BufWriter::new(stream);
    for msg in rx {
        let frame = match msg {
            WriterMsg::Deliver { id, handle } => {
                // Passive wait: the ticker owns window dispatch, so waiting here must
                // not force-close the open window (which would defeat coalescing).
                let response = handle.wait_without_dispatch();
                match response.output {
                    Ok(output) => Frame::Response { id, output },
                    Err(serving_error) => Frame::Error {
                        id,
                        code: ErrorCode::from_serving(&serving_error),
                        message: serving_error.to_string(),
                    },
                }
            }
            WriterMsg::Frame(frame) => frame,
        };
        if write_frame(&mut writer, &frame)
            .and_then(|()| writer.flush())
            .is_err()
        {
            // The peer is gone; remaining handles are dropped (responses abandoned).
            return;
        }
    }
}

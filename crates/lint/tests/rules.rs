//! Fixture-driven integration tests: one positive (violation caught at the right
//! file:line) and one negative (clean or justified code passes) per rule family.
//!
//! Fixtures live in `tests/fixtures/` and are excluded from the workspace scan by
//! `lint.toml` — they contain violations on purpose.

use std::fs;
use std::path::Path;

use tasd_lint::config::Config;
use tasd_lint::diagnostics::Rule;
use tasd_lint::Report;

fn check_fixture(name: &str, config: &Config) -> Report {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = fs::read_to_string(dir.join(name)).expect("fixture must exist");
    let mut report = Report {
        violations: Vec::new(),
        unsafe_sites: Vec::new(),
        allow_sites: Vec::new(),
        lock_sites: Vec::new(),
        files_scanned: 1,
    };
    tasd_lint::check_file(name, &text, config, &mut report);
    report
}

fn lock_config() -> Config {
    Config::parse(
        r#"
[lock_order]
order = ["fixture.outer", "fixture.inner"]

[[lock]]
name = "fixture.outer"
file = "lock_nested.rs"
receiver = "outer"

[[lock]]
name = "fixture.inner"
file = "lock_nested.rs"
receiver = "inner"
"#,
    )
    .expect("fixture lock config parses")
}

// ---- unsafe-audit ----------------------------------------------------------------

#[test]
fn undocumented_unsafe_is_caught_at_its_line() {
    let report = check_fixture("unsafe_undocumented.rs", &Config::default());
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::UnsafeAudit);
    assert_eq!(v.path, "unsafe_undocumented.rs");
    assert_eq!(v.line, 2);
    assert_eq!(report.unsafe_sites.len(), 1);
    assert!(!report.unsafe_sites[0].has_safety_comment);
}

#[test]
fn documented_unsafe_passes_and_is_inventoried() {
    let report = check_fixture("unsafe_documented.rs", &Config::default());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // One `unsafe fn` (satisfied by the `# Safety` section) plus one inner block
    // (satisfied by the `// SAFETY:` comment).
    assert_eq!(report.unsafe_sites.len(), 2);
    assert!(report.unsafe_sites.iter().all(|s| s.has_safety_comment));
}

// ---- hot-path --------------------------------------------------------------------

#[test]
fn hot_path_panic_and_indexing_are_caught_at_their_lines() {
    let report = check_fixture("hot_panic.rs", &Config::default());
    let got: Vec<(Rule, usize)> = report.violations.iter().map(|v| (v.rule, v.line)).collect();
    assert_eq!(
        got,
        vec![(Rule::HotPathPanic, 3), (Rule::HotPathIndexing, 4)],
        "{:?}",
        report.violations
    );
    assert!(report.violations.iter().all(|v| v.path == "hot_panic.rs"));
}

#[test]
fn justified_and_unmarked_hot_constructs_pass() {
    let report = check_fixture("hot_clean.rs", &Config::default());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The region allow and the line allow are both inventoried.
    assert_eq!(report.allow_sites.len(), 2);
}

// ---- warm-path -------------------------------------------------------------------

#[test]
fn warm_path_allocations_are_caught_at_their_lines() {
    let report = check_fixture("warm_alloc.rs", &Config::default());
    let got: Vec<(Rule, usize)> = report.violations.iter().map(|v| (v.rule, v.line)).collect();
    assert_eq!(
        got,
        vec![(Rule::WarmPathAlloc, 3), (Rule::WarmPathAlloc, 8)],
        "{:?}",
        report.violations
    );
}

#[test]
fn justified_and_unmarked_allocations_pass() {
    let report = check_fixture("warm_clean.rs", &Config::default());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

// ---- lock-order ------------------------------------------------------------------

#[test]
fn reversed_nesting_is_caught_and_declared_order_passes() {
    let report = check_fixture("lock_nested.rs", &lock_config());
    // `reversed` acquires inner then outer — flagged at the second (outer) site.
    // `declared` acquires outer then inner — clean.
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::LockOrder);
    assert_eq!(v.path, "lock_nested.rs");
    assert_eq!(v.line, 11);
    // All four acquisitions are cataloged and attributed.
    assert_eq!(report.lock_sites.len(), 4);
    assert!(report.lock_sites.iter().all(|s| s.lock_name.is_some()));
}

#[test]
fn unregistered_lock_is_caught_at_its_line() {
    let report = check_fixture("lock_unregistered.rs", &lock_config());
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::LockUnregistered);
    assert_eq!(v.line, 4);
}

// ---- directives ------------------------------------------------------------------

#[test]
fn malformed_directive_is_caught_at_its_line() {
    let report = check_fixture("directive_bad.rs", &Config::default());
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::Directive);
    assert_eq!(v.line, 1);
}

// lint: warm-path
pub fn broken(v: &[f32]) -> Vec<f32> {
    v.to_vec()
}

// lint: warm-path
pub fn macro_alloc(n: usize) -> Vec<f32> {
    vec![0.0; n]
}

use std::sync::Mutex;

pub fn grab(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

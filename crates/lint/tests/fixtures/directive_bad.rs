// lint: hot-path, allow(panic):
pub fn missing_justification() {}

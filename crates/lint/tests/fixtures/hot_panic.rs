// lint: hot-path
pub fn broken(v: &[f32], i: usize) -> f32 {
    let first = v.first().unwrap();
    first + v[i]
}

/// Reads one byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read(p: *const u8) -> u8 {
    // SAFETY: the caller upholds this fn's `# Safety` contract.
    unsafe { *p }
}

// lint: hot-path, allow(indexing): i is validated by the caller
pub fn justified(v: &[f32], i: usize) -> f32 {
    // lint: allow(panic): v is non-empty by construction
    let first = v.first().unwrap();
    first + v[i]
}

pub fn unmarked_code_may_panic(v: &[f32]) -> f32 {
    v.first().unwrap() + v[0]
}

// lint: warm-path, allow(alloc): one-time fallback densify, measured and accepted
pub fn justified(v: &[f32]) -> Vec<f32> {
    v.to_vec()
}

pub fn unmarked_code_may_allocate(v: &[f32]) -> Vec<f32> {
    v.to_vec()
}

use std::sync::Mutex;

pub struct S {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
}

impl S {
    pub fn reversed(&self) -> u32 {
        let i = self.inner.lock().unwrap();
        let o = self.outer.lock().unwrap();
        *i + *o
    }

    pub fn declared(&self) -> u32 {
        let o = self.outer.lock().unwrap();
        let i = self.inner.lock().unwrap();
        *o + *i
    }
}

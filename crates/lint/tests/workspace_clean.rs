//! Self-check: `tasd-lint` must run clean over this very workspace, with every
//! `unsafe` site documented. This is the same gate CI runs via
//! `cargo run -p tasd-lint -- --check`, kept as a test so `cargo test` alone
//! catches regressions.

use std::path::Path;

use tasd_lint::config::Config;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml at repo root");
    let config = Config::parse(&text).expect("lint.toml parses");
    let report = tasd_lint::check_workspace(&root, &config).expect("workspace scan succeeds");
    assert!(
        report.violations.is_empty(),
        "workspace must be lint-clean:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unsafe_sites.iter().all(|s| s.has_safety_comment),
        "every unsafe site needs a SAFETY contract"
    );
    // The unsafe inventory is budgeted in lint.toml's [unsafe_audit] section (the
    // executor transmute plus the SIMD microkernels); `check_workspace` enforces the
    // exact count, so an empty violation list above already proves it. Pin here that
    // the budget is actually configured — deleting the section must not silently
    // disable the tripwire.
    let expected = config
        .expected_unsafe_sites
        .expect("lint.toml must budget the unsafe inventory");
    assert_eq!(
        report.unsafe_sites.len(),
        expected,
        "{:?}",
        report.unsafe_sites
    );
    assert!(report.files_scanned > 100, "scan looks truncated");
}

//! Self-check: `tasd-lint` must run clean over this very workspace, with every
//! `unsafe` site documented. This is the same gate CI runs via
//! `cargo run -p tasd-lint -- --check`, kept as a test so `cargo test` alone
//! catches regressions.

use std::path::Path;

use tasd_lint::config::Config;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml at repo root");
    let config = Config::parse(&text).expect("lint.toml parses");
    let report = tasd_lint::check_workspace(&root, &config).expect("workspace scan succeeds");
    assert!(
        report.violations.is_empty(),
        "workspace must be lint-clean:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unsafe_sites.iter().all(|s| s.has_safety_comment),
        "every unsafe site needs a SAFETY contract"
    );
    // The executor's lifetime-erasing transmute is the workspace's only unsafe site.
    // If this number moves, the new site needs a SAFETY contract and review — see
    // crates/lint/README.md.
    assert_eq!(report.unsafe_sites.len(), 1, "{:?}", report.unsafe_sites);
    assert!(report.files_scanned > 100, "scan looks truncated");
}

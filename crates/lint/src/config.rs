//! `lint.toml` loading: a hand-rolled parser for the TOML subset the checker needs.
//!
//! No registry access means no `toml` crate; the configuration language is therefore
//! deliberately small: `[section]` tables, `[[section]]` arrays of tables, and
//! `key = value` pairs where a value is a quoted string, an integer, a boolean, or a
//! flat array of strings. Comments start with `#`. That covers lock registration, the
//! declared lock order, path includes/excludes, and extra allocating paths.

use std::collections::HashSet;
use std::fmt;

/// One registered lock: a name, the file (prefix) its acquisitions live in, and the
/// receiver path suffix that identifies it at a call site (`shared.state` matches
/// `self.shared.state.lock()` but not `self.state.lock()`).
#[derive(Debug, Clone)]
pub struct LockSpec {
    pub name: String,
    /// Repo-relative file path prefix this registration applies to.
    pub file: String,
    /// Dot-separated receiver suffix matched against acquisition sites.
    pub receiver: String,
    /// `"mutex"` (default) or `"rwlock"`; rwlock registrations additionally catalog
    /// `.read()` / `.write()` on matching receivers.
    pub kind: String,
    /// Registered but outside the order DAG (e.g. a generic helper's own parameter).
    pub exempt: bool,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory roots (repo-relative) to walk for `.rs` sources.
    pub include: Vec<String>,
    /// Repo-relative path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Extra `Type::method` paths treated as allocating in warm-path regions.
    pub extra_alloc_paths: Vec<String>,
    /// Declared lock acquisition order: a lock may be acquired while holding only locks
    /// that appear *earlier* in this list.
    pub lock_order: Vec<String>,
    /// Registered locks.
    pub locks: Vec<LockSpec>,
    /// Exact number of `unsafe` sites the workspace is budgeted for
    /// (`[unsafe_audit].expected_sites`). When set, a scan finding any other count is
    /// a violation: removing a site must shrink the budget, adding one must grow it —
    /// consciously, in review, alongside its SAFETY contract.
    pub expected_unsafe_sites: Option<usize>,
}

/// A configuration or parse failure, with the offending line when known.
#[derive(Debug)]
pub struct ConfigError {
    pub message: String,
    pub line: usize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "lint.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "lint.toml: {}", self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        message: message.into(),
        line,
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl Config {
    /// Parses the configuration text and validates its cross-references.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        // (section, is_array_entry): `[[lock]]` starts a fresh entry of the lock list.
        let mut section = String::new();
        let mut current_lock: Option<(LockSpec, usize)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| err(lineno, "unterminated [[table]] header"))?
                    .trim();
                if name != "lock" {
                    return Err(err(lineno, format!("unknown array table [[{name}]]")));
                }
                if let Some((lock, at)) = current_lock.take() {
                    config.push_lock(lock, at)?;
                }
                current_lock = Some((LockSpec::empty(), lineno));
                section = "lock".to_string();
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated [table] header"))?
                    .trim();
                if let Some((lock, at)) = current_lock.take() {
                    config.push_lock(lock, at)?;
                }
                section = name.to_string();
                continue;
            }
            let (key, value) = parse_assignment(line, lineno)?;
            match (section.as_str(), key.as_str()) {
                ("lock", field) => {
                    let (lock, _) = current_lock
                        .as_mut()
                        .ok_or_else(|| err(lineno, "lock field outside [[lock]]"))?;
                    lock.set(field, value, lineno)?;
                }
                ("paths", "include") => config.include = value.into_str_array(lineno, "include")?,
                ("paths", "exclude") => config.exclude = value.into_str_array(lineno, "exclude")?,
                ("warm_path", "extra_alloc_paths") => {
                    config.extra_alloc_paths = value.into_str_array(lineno, "extra_alloc_paths")?;
                }
                ("lock_order", "order") => {
                    config.lock_order = value.into_str_array(lineno, "order")?;
                }
                ("unsafe_audit", "expected_sites") => {
                    config.expected_unsafe_sites =
                        Some(value.into_count(lineno, "expected_sites")?);
                }
                (section, key) => {
                    return Err(err(lineno, format!("unknown key `{key}` in [{section}]")));
                }
            }
        }
        if let Some((lock, at)) = current_lock.take() {
            config.push_lock(lock, at)?;
        }
        config.validate()?;
        Ok(config)
    }

    fn push_lock(&mut self, lock: LockSpec, at: usize) -> Result<(), ConfigError> {
        if lock.name.is_empty() || lock.file.is_empty() || lock.receiver.is_empty() {
            return Err(err(at, "[[lock]] requires name, file, and receiver"));
        }
        self.locks.push(lock);
        Ok(())
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let mut seen = HashSet::new();
        for name in &self.lock_order {
            if !seen.insert(name.as_str()) {
                return Err(err(0, format!("lock `{name}` appears twice in the order")));
            }
        }
        for lock in &self.locks {
            if !lock.exempt && !seen.contains(lock.name.as_str()) {
                return Err(err(
                    0,
                    format!(
                        "lock `{}` is registered but missing from [lock_order].order \
                         (add it, or mark it exempt = true)",
                        lock.name
                    ),
                ));
            }
            if lock.kind != "mutex" && lock.kind != "rwlock" {
                return Err(err(0, format!("lock `{}`: unknown kind", lock.name)));
            }
        }
        Ok(())
    }

    /// Position of `name` in the declared order, if ordered.
    pub fn order_index(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|n| n == name)
    }
}

impl LockSpec {
    fn empty() -> Self {
        LockSpec {
            name: String::new(),
            file: String::new(),
            receiver: String::new(),
            kind: "mutex".to_string(),
            exempt: false,
        }
    }

    fn set(&mut self, field: &str, value: Value, lineno: usize) -> Result<(), ConfigError> {
        match (field, value) {
            ("name", Value::Str(s)) => self.name = s,
            ("file", Value::Str(s)) => self.file = s,
            ("receiver", Value::Str(s)) => self.receiver = s,
            ("kind", Value::Str(s)) => self.kind = s,
            ("exempt", Value::Bool(b)) => self.exempt = b,
            (field, _) => {
                return Err(err(
                    lineno,
                    format!("bad [[lock]] field `{field}` (or wrong value type)"),
                ));
            }
        }
        Ok(())
    }
}

impl Value {
    fn into_str_array(self, lineno: usize, key: &str) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::StrArray(v) => Ok(v),
            _ => Err(err(lineno, format!("`{key}` must be an array of strings"))),
        }
    }

    fn into_count(self, lineno: usize, key: &str) -> Result<usize, ConfigError> {
        match self {
            Value::Int(n) if n >= 0 => Ok(n as usize),
            _ => Err(err(
                lineno,
                format!("`{key}` must be a non-negative integer"),
            )),
        }
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_assignment(line: &str, lineno: usize) -> Result<(String, Value), ConfigError> {
    let eq = line
        .find('=')
        .ok_or_else(|| err(lineno, "expected `key = value`"))?;
    let key = line[..eq].trim().to_string();
    let value = parse_value(line[eq + 1..].trim(), lineno)?;
    Ok((key, value))
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ConfigError> {
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        return Ok(Value::Str(unescape(inner)));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "arrays must open and close on one line"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, lineno)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(lineno, "arrays may contain only strings")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("unrecognized value `{text}`")))
}

/// Splits array items on commas outside quotes.
fn split_array_items(inner: &str) -> Vec<&str> {
    let bytes = inner.as_bytes();
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    items.push(&inner[start..]);
    items
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[paths]
include = ["crates", "src"]   # trailing comment
exclude = ["crates/compat"]

[warm_path]
extra_alloc_paths = ["Matrix::zeros"]

[lock_order]
order = ["a.first", "b.second"]

[unsafe_audit]
expected_sites = 7

[[lock]]
name = "a.first"
file = "src/a.rs"
receiver = "shared.state"

[[lock]]
name = "b.second"
file = "src/b.rs"
receiver = "queue"
kind = "mutex"

[[lock]]
name = "helper"
file = "src/sync.rs"
receiver = "mutex"
exempt = true
"#;

    #[test]
    fn parses_the_full_schema() {
        let config = Config::parse(SAMPLE).expect("sample must parse");
        assert_eq!(config.include, vec!["crates", "src"]);
        assert_eq!(config.exclude, vec!["crates/compat"]);
        assert_eq!(config.extra_alloc_paths, vec!["Matrix::zeros"]);
        assert_eq!(config.lock_order, vec!["a.first", "b.second"]);
        assert_eq!(config.locks.len(), 3);
        assert_eq!(config.locks[0].receiver, "shared.state");
        assert!(config.locks[2].exempt);
        assert_eq!(config.order_index("b.second"), Some(1));
        assert_eq!(config.order_index("helper"), None);
        assert_eq!(config.expected_unsafe_sites, Some(7));
    }

    #[test]
    fn negative_unsafe_budget_is_rejected() {
        let bad = "[unsafe_audit]\nexpected_sites = -1\n";
        assert!(Config::parse(bad).is_err());
        // And the key stays optional.
        assert_eq!(
            Config::parse("")
                .expect("empty parses")
                .expected_unsafe_sites,
            None
        );
    }

    #[test]
    fn unordered_unexempt_lock_is_rejected() {
        let bad = r#"
[lock_order]
order = ["x"]

[[lock]]
name = "y"
file = "f.rs"
receiver = "r"
"#;
        let e = Config::parse(bad).expect_err("must reject");
        assert!(e.message.contains('y'), "{e}");
    }

    #[test]
    fn incomplete_lock_is_rejected() {
        let bad = "[[lock]]\nname = \"only\"\n";
        assert!(Config::parse(bad).is_err());
    }

    #[test]
    fn duplicate_order_entry_is_rejected() {
        let bad = "[lock_order]\norder = [\"a\", \"a\"]\n";
        assert!(Config::parse(bad).is_err());
    }
}

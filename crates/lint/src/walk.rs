//! Workspace source discovery: collects `.rs` files under the configured include
//! roots, skipping excluded prefixes, and returns deterministic repo-relative paths.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;

/// Collects every `.rs` file under `root` selected by the config, sorted by path.
/// Returned paths are repo-relative with `/` separators (stable across platforms,
/// and what the lock registry's `file` prefixes match against).
pub fn collect_sources(root: &Path, config: &Config) -> io::Result<Vec<String>> {
    let mut found = Vec::new();
    for include in &config.include {
        let dir = root.join(include);
        if !dir.exists() {
            continue;
        }
        visit(root, &dir, config, &mut found)?;
    }
    found.sort();
    found.dedup();
    Ok(found)
}

fn visit(root: &Path, dir: &Path, config: &Config, found: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = relative(root, &path);
        if is_excluded(&rel, config) {
            continue;
        }
        if path.is_dir() {
            // Never descend into build output even if it is not listed explicitly.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            visit(root, &path, config, found)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            found.push(rel);
        }
    }
    Ok(())
}

fn is_excluded(rel: &str, config: &Config) -> bool {
    config
        .exclude
        .iter()
        .any(|prefix| rel == prefix || rel.starts_with(&format!("{prefix}/")))
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusion_matches_path_prefixes_only() {
        let config = Config {
            exclude: vec!["crates/compat".to_string()],
            ..Config::default()
        };
        assert!(is_excluded("crates/compat", &config));
        assert!(is_excluded("crates/compat/serde/src/lib.rs", &config));
        assert!(!is_excluded("crates/compatible/src/lib.rs", &config));
        assert!(!is_excluded("crates/core/src/lib.rs", &config));
    }
}

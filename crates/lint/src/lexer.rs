//! A minimal hand-rolled Rust lexer: just enough token structure for static checks.
//!
//! The checker runs in environments with no registry access, so it cannot lean on `syn`
//! or `proc-macro2`. Full parsing is also unnecessary: every rule in this tool is
//! expressible over a token stream that correctly classifies comments, string/char
//! literals, lifetimes, identifiers, and punctuation — the classes that make naive
//! regex scanning wrong (the word `unsafe` inside a doc comment, a `{` inside a format
//! string, `'a` vs `'a'`). The lexer keeps line numbers on every token and preserves
//! comment text, which is where the tool's own directives (`// lint: ...`,
//! `// SAFETY: ...`) live.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token classes the rules care about. Literal payloads are discarded (no rule reads
/// string contents); comment text is preserved for directive and `SAFETY:` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `{`, `!`, `:`, ...).
    Punct(char),
    /// String, raw string, byte string, char, or numeric literal.
    Literal,
    /// `//`-style comment; the text excludes the leading slashes but keeps the `!` or
    /// `/` doc marker so callers can distinguish `//!` (inner) and `///` (doc) forms.
    LineComment(String),
    /// `/* */`-style comment (nesting handled); the recorded line is where it starts.
    BlockComment(String),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The comment text (line or block), if this token is a comment.
    pub fn comment(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::LineComment(s) | TokenKind::BlockComment(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment(_)
        )
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` into a token stream. Unknown bytes (non-ASCII in code position) are
/// emitted as punctuation so the scan never stalls; they occur only inside comments and
/// strings in practice, which are consumed wholesale.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => self.raw_prefixed_or_ident(),
                b'0'..=b'9' => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    self.push(TokenKind::Punct(c as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.push(Token {
            kind,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(TokenKind::LineComment(text));
        self.pos = end;
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let text_start = self.pos + 2;
        let mut depth = 1usize;
        let mut i = text_start;
        while i < self.src.len() && depth > 0 {
            match self.src[i] {
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                b'/' if self.src.get(i + 1) == Some(&b'*') => {
                    depth += 1;
                    i += 2;
                }
                b'*' if self.src.get(i + 1) == Some(&b'/') => {
                    depth -= 1;
                    i += 2;
                }
                _ => i += 1,
            }
        }
        let text_end = i.saturating_sub(2).max(text_start);
        let text = String::from_utf8_lossy(&self.src[text_start..text_end]).into_owned();
        self.out.push(Token {
            kind: TokenKind::BlockComment(text),
            line: start_line,
        });
        self.pos = i;
    }

    /// Consumes a `"..."` literal starting at `self.pos` (which must be the quote).
    fn string_literal(&mut self) {
        self.push(TokenKind::Literal);
        let mut i = self.pos + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2,
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        self.pos = i;
    }

    /// Consumes a raw string `r"..."` / `r#"..."#` with any number of `#`s; `self.pos`
    /// points at the first `#` or quote (the `r`/`b` prefix is already consumed).
    fn raw_string_literal(&mut self) {
        self.push(TokenKind::Literal);
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        // Skip hashes and the opening quote.
        let mut i = self.pos + hashes + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                b'"' => {
                    let closed = (1..=hashes).all(|h| self.src.get(i + h) == Some(&b'#'));
                    i += 1;
                    if closed {
                        i += hashes;
                        break;
                    }
                }
                _ => i += 1,
            }
        }
        self.pos = i;
    }

    /// Disambiguates `'a` (lifetime), `'a'` (char literal), and escaped char literals.
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            next.is_some_and(is_ident_start) && after != Some(b'\'') && next != Some(b'\\');
        if is_lifetime {
            // Swallow the quote and the lifetime identifier; rules never need it.
            let mut i = self.pos + 1;
            while i < self.src.len() && is_ident_continue(self.src[i]) {
                i += 1;
            }
            self.pos = i;
            return;
        }
        self.push(TokenKind::Literal);
        let mut i = self.pos + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2,
                b'\'' => {
                    i += 1;
                    break;
                }
                b'\n' => break, // malformed; don't run away
                _ => i += 1,
            }
        }
        self.pos = i;
    }

    /// `r`/`b` can prefix raw strings (`r"`, `r#"`), byte strings (`b"`, `br"`), byte
    /// chars (`b'`), raw identifiers (`r#ident`) — or just start a plain identifier.
    fn raw_prefixed_or_ident(&mut self) {
        let c = self.src[self.pos];
        let n1 = self.peek(1);
        let n2 = self.peek(2);
        match (c, n1) {
            (b'r', Some(b'"')) => {
                self.pos += 1;
                self.raw_string_literal();
            }
            (b'r', Some(b'#')) if n2 == Some(b'"') || n2 == Some(b'#') => {
                self.pos += 1;
                self.raw_string_literal();
            }
            (b'r', Some(b'#')) if n2.is_some_and(is_ident_start) => {
                // Raw identifier: lex `ident` itself (keywords-as-names are still names).
                self.pos += 2;
                self.ident();
            }
            (b'b', Some(b'"')) => {
                self.pos += 1;
                self.string_literal();
            }
            (b'b', Some(b'\'')) => {
                self.pos += 1;
                self.char_or_lifetime();
            }
            (b'b', Some(b'r')) if n2 == Some(b'"') || n2 == Some(b'#') => {
                self.pos += 2;
                self.raw_string_literal();
            }
            _ => self.ident(),
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        let mut i = self.pos;
        while i < self.src.len() && is_ident_continue(self.src[i]) {
            i += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..i]).into_owned();
        self.push(TokenKind::Ident(text));
        self.pos = i;
    }

    /// Numeric literal: digits with embedded underscores/type suffixes, an optional
    /// fractional part (only when followed by a digit, so `0..n` stays two tokens), and
    /// an optional signed exponent.
    fn number(&mut self) {
        self.push(TokenKind::Literal);
        let mut i = self.pos;
        while i < self.src.len() && is_ident_continue(self.src[i]) {
            i += 1;
        }
        if self.src.get(i) == Some(&b'.') && self.src.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            i += 1;
            while i < self.src.len() && is_ident_continue(self.src[i]) {
                i += 1;
            }
        }
        if i > 0
            && matches!(self.src.get(i - 1), Some(b'e') | Some(b'E'))
            && matches!(self.src.get(i), Some(b'+') | Some(b'-'))
        {
            i += 1;
            while i < self.src.len() && self.src.get(i).is_some_and(|c| c.is_ascii_digit()) {
                i += 1;
            }
        }
        self.pos = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn words_inside_comments_and_strings_are_not_code_idents() {
        let src = r#"
            // this is never memory-unsafe, promise
            /* unsafe unwrap */
            let x = "unsafe { panic!() }";
            let y = 'u';
        "#;
        assert!(idents(src).iter().all(|w| w != "unsafe" && w != "panic"));
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lits = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lits, 0, "lifetimes must not be lexed as char literals");
        let toks = lex("let c = 'a'; let nl = '\\n'; let q = '\\'';");
        let lits = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn raw_strings_and_nested_block_comments_are_single_tokens() {
        let toks = lex(r##"let s = r#"quote " inside"#; /* outer /* inner */ still */ x"##);
        let idents: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["let", "s", "x"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb\n/* c1\nc2 */\nc";
        let toks = lex(src);
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.ident() == Some(name))
                .map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn comment_text_is_preserved_with_doc_markers() {
        let toks = lex("//! inner\n/// doc\n// SAFETY: fine\ncode();");
        let comments: Vec<_> = toks.iter().filter_map(|t| t.comment()).collect();
        assert_eq!(comments, vec!["! inner", "/ doc", " SAFETY: fine"]);
    }

    #[test]
    fn ranges_do_not_swallow_numbers() {
        let toks = lex("for i in 0..n { v[i] = 1.5e-3; }");
        let idents: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["for", "i", "in", "n", "v", "i"]);
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` range keeps both dots");
    }
}

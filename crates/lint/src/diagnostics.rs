//! Diagnostic types shared by all rules: violations for `--check`, inventory records
//! for `--inventory`.

use std::fmt;

/// Which rule family produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` site without an adjacent `// SAFETY:` contract.
    UnsafeAudit,
    /// Panicking construct in a `hot-path` region without an allow.
    HotPathPanic,
    /// Slice/array indexing in a `hot-path` region without an allow.
    HotPathIndexing,
    /// Allocating call in a `warm-path` region without an allow.
    WarmPathAlloc,
    /// Lock acquisition whose receiver is not registered in `lint.toml`.
    LockUnregistered,
    /// Nested acquisition that violates the declared lock order.
    LockOrder,
    /// Malformed or dangling `// lint:` directive.
    Directive,
}

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::HotPathIndexing => "hot-path-indexing",
            Rule::WarmPathAlloc => "warm-path-alloc",
            Rule::LockUnregistered => "lock-unregistered",
            Rule::LockOrder => "lock-order",
            Rule::Directive => "directive",
        }
    }
}

/// One finding, anchored to a repo-relative `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.as_str(),
            self.message
        )
    }
}

/// One `unsafe` occurrence, for the machine-readable inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub path: String,
    pub line: usize,
    /// `block`, `fn`, `impl`, `trait`, or `extern`.
    pub kind: String,
    pub has_safety_comment: bool,
}

/// One allowlist entry (a `lint: ... allow(...)` directive), for the inventory.
#[derive(Debug, Clone)]
pub struct AllowSite {
    pub path: String,
    pub line: usize,
    pub rules: Vec<String>,
    pub justification: String,
    /// True when the allow covers a whole marked function, false when line-scoped.
    pub region: bool,
}

/// How a synchronization primitive was touched at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockSiteKind {
    /// `receiver.lock()`.
    Lock,
    /// `lock_or_panic(&receiver, ...)`.
    Helper,
    /// `receiver.read()` on a registered rwlock.
    Read,
    /// `receiver.write()` on a registered rwlock.
    Write,
    /// `receiver.wait(guard)` / `wait_or_panic(...)` — cataloged, never an order edge.
    CondvarWait,
}

impl LockSiteKind {
    pub fn as_str(self) -> &'static str {
        match self {
            LockSiteKind::Lock => "lock",
            LockSiteKind::Helper => "lock_or_panic",
            LockSiteKind::Read => "read",
            LockSiteKind::Write => "write",
            LockSiteKind::CondvarWait => "condvar-wait",
        }
    }
}

/// One acquisition site in the per-module lock catalog.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub path: String,
    pub line: usize,
    /// Name from `lint.toml` when the receiver matched a registration.
    pub lock_name: Option<String>,
    /// Dot-path receiver as written at the site (e.g. `self.shared.queue`).
    pub receiver: String,
    pub kind: LockSiteKind,
    /// Enclosing function name.
    pub function: String,
}

//! Shared per-file analysis: function spans, `// lint:` directive parsing, and the
//! hot/warm region map that the rule modules consult.
//!
//! Directive grammar (inside a line comment):
//!
//! ```text
//! // lint: hot-path
//! // lint: hot-path, warm-path
//! // lint: warm-path, allow(indexing): slots are sized to the shard count
//! // lint: allow(panic): poisoned lock is already a crash
//! //! lint: hot-path
//! ```
//!
//! A directive with region markers (`hot-path` / `warm-path`) attaches to the next
//! `fn` item and covers its whole body; its `allow(...)` clause, if any, covers the
//! same region. An `//! lint:` inner-doc directive covers the entire file. A
//! directive with only an `allow(...)` clause is line-scoped: trailing on a line of
//! code it covers that line, standalone it covers the next line of code. Every
//! `allow` requires a non-empty justification after the closing `): `.

use std::collections::HashMap;

use crate::diagnostics::{AllowSite, Rule, Violation};
use crate::lexer::{Token, TokenKind};

/// Rule ids accepted inside `allow(...)`.
pub const ALLOW_RULES: &[&str] = &["panic", "indexing", "alloc"];

/// A contiguous marked region (one function body, or the whole file).
#[derive(Debug, Clone)]
pub struct Region {
    pub hot: bool,
    pub warm: bool,
    pub start_line: usize,
    pub end_line: usize,
    pub allows: Vec<String>,
}

/// One `fn` item: its name and body token range.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token indices of the body `{` and `}`; `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    pub start_line: usize,
    pub end_line: usize,
}

/// Everything the rules need to know about one source file.
pub struct FileAnalysis {
    pub path: String,
    pub tokens: Vec<Token>,
    pub fns: Vec<FnSpan>,
    pub regions: Vec<Region>,
    /// Line number → rule ids allowed on that line.
    pub line_allows: HashMap<usize, Vec<String>>,
    pub allow_sites: Vec<AllowSite>,
    /// Directive-syntax violations found while building the analysis.
    pub violations: Vec<Violation>,
}

#[derive(Debug, PartialEq)]
struct ParsedDirective {
    file_level: bool,
    hot: bool,
    warm: bool,
    allows: Vec<String>,
    justification: String,
}

impl FileAnalysis {
    pub fn build(path: &str, tokens: Vec<Token>) -> FileAnalysis {
        let fns = function_spans(&tokens);
        let last_line = tokens.last().map(|t| t.line).unwrap_or(1);
        let mut analysis = FileAnalysis {
            path: path.to_string(),
            tokens,
            fns,
            regions: Vec::new(),
            line_allows: HashMap::new(),
            allow_sites: Vec::new(),
            violations: Vec::new(),
        };
        analysis.attach_directives(last_line);
        analysis
    }

    fn attach_directives(&mut self, last_line: usize) {
        for idx in 0..self.tokens.len() {
            let (text, line) = match &self.tokens[idx].kind {
                TokenKind::LineComment(text) => (text.clone(), self.tokens[idx].line),
                _ => continue,
            };
            let parsed = match parse_directive(&text) {
                None => continue,
                Some(Err(message)) => {
                    self.violation(line, message);
                    continue;
                }
                Some(Ok(parsed)) => parsed,
            };
            if parsed.file_level {
                self.add_region(parsed, 1, last_line, line, true);
            } else if parsed.hot || parsed.warm {
                match self.fns.iter().find(|f| f.fn_idx > idx).cloned() {
                    Some(f) => self.add_region(parsed, f.start_line, f.end_line, line, false),
                    None => self.violation(
                        line,
                        "hot-path/warm-path directive is not followed by a function".to_string(),
                    ),
                }
            } else {
                // Allow-only directive: line-scoped.
                let trailing = self.tokens[..idx]
                    .iter()
                    .rev()
                    .take_while(|t| t.line == line)
                    .any(|t| !t.is_comment());
                let target = if trailing {
                    Some(line)
                } else {
                    self.tokens[idx + 1..]
                        .iter()
                        .find(|t| !t.is_comment())
                        .map(|t| t.line)
                };
                match target {
                    Some(target) => {
                        self.allow_sites.push(AllowSite {
                            path: self.path.clone(),
                            line: target,
                            rules: parsed.allows.clone(),
                            justification: parsed.justification,
                            region: false,
                        });
                        self.line_allows
                            .entry(target)
                            .or_default()
                            .extend(parsed.allows);
                    }
                    None => self.violation(line, "allow directive attaches to no code".to_string()),
                }
            }
        }
    }

    fn add_region(
        &mut self,
        parsed: ParsedDirective,
        start_line: usize,
        end_line: usize,
        directive_line: usize,
        _file_level: bool,
    ) {
        if !parsed.allows.is_empty() {
            self.allow_sites.push(AllowSite {
                path: self.path.clone(),
                line: directive_line,
                rules: parsed.allows.clone(),
                justification: parsed.justification,
                region: true,
            });
        }
        self.regions.push(Region {
            hot: parsed.hot,
            warm: parsed.warm,
            start_line,
            end_line,
            allows: parsed.allows,
        });
    }

    fn violation(&mut self, line: usize, message: String) {
        self.violations.push(Violation {
            rule: Rule::Directive,
            path: self.path.clone(),
            line,
            message,
        });
    }

    pub fn in_hot(&self, line: usize) -> bool {
        self.regions
            .iter()
            .any(|r| r.hot && r.start_line <= line && line <= r.end_line)
    }

    pub fn in_warm(&self, line: usize) -> bool {
        self.regions
            .iter()
            .any(|r| r.warm && r.start_line <= line && line <= r.end_line)
    }

    /// True when `rule` is allowed at `line` by a line-scoped or region-scoped allow.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        if let Some(rules) = self.line_allows.get(&line) {
            if rules.iter().any(|r| r == rule) {
                return true;
            }
        }
        self.regions.iter().any(|r| {
            r.start_line <= line && line <= r.end_line && r.allows.iter().any(|a| a == rule)
        })
    }

    /// Innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((open, close)) if open <= idx && idx <= close))
            .max_by_key(|f| f.fn_idx)
    }
}

fn parse_directive(text: &str) -> Option<Result<ParsedDirective, String>> {
    let mut rest = text.trim_start();
    let file_level = if let Some(after) = rest.strip_prefix('!') {
        rest = after.trim_start();
        true
    } else {
        false
    };
    let body = rest.strip_prefix("lint:")?.trim();
    let mut parsed = ParsedDirective {
        file_level,
        hot: false,
        warm: false,
        allows: Vec::new(),
        justification: String::new(),
    };
    let markers_part = match body.find("allow(") {
        Some(at) => {
            let after = &body[at + "allow(".len()..];
            let close = match after.find(')') {
                Some(c) => c,
                None => return Some(Err("unterminated allow(...) clause".to_string())),
            };
            for rule in after[..close].split(',') {
                let rule = rule.trim();
                if rule.is_empty() {
                    continue;
                }
                if !ALLOW_RULES.contains(&rule) {
                    return Some(Err(format!(
                        "unknown allow rule `{rule}` (expected one of: {})",
                        ALLOW_RULES.join(", ")
                    )));
                }
                parsed.allows.push(rule.to_string());
            }
            if parsed.allows.is_empty() {
                return Some(Err("allow() lists no rules".to_string()));
            }
            let tail = after[close + 1..].trim_start();
            match tail.strip_prefix(':') {
                Some(j) if !j.trim().is_empty() => parsed.justification = j.trim().to_string(),
                _ => {
                    return Some(Err(
                        "allow(...) requires a non-empty `: justification`".to_string()
                    ))
                }
            }
            &body[..at]
        }
        None => body,
    };
    for marker in markers_part.split(',') {
        match marker.trim() {
            "" => continue,
            "hot-path" => parsed.hot = true,
            "warm-path" => parsed.warm = true,
            other => {
                return Some(Err(format!(
                    "unknown marker `{other}` (expected hot-path, warm-path, or allow(...))"
                )))
            }
        }
    }
    if !parsed.hot && !parsed.warm && parsed.allows.is_empty() {
        return Some(Err("empty lint directive".to_string()));
    }
    Some(Ok(parsed))
}

/// Previous non-comment token index before `idx`.
pub fn prev_code(tokens: &[Token], idx: usize) -> Option<usize> {
    tokens[..idx].iter().rposition(|t| !t.is_comment())
}

/// Next non-comment token index after `idx`.
pub fn next_code(tokens: &[Token], idx: usize) -> Option<usize> {
    tokens[idx + 1..]
        .iter()
        .position(|t| !t.is_comment())
        .map(|off| idx + 1 + off)
}

/// Token index of the `}` matching the `{` at `open_idx`.
pub fn matching_close_brace(tokens: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, token) in tokens[open_idx..].iter().enumerate() {
        if token.is_punct('{') {
            depth += 1;
        } else if token.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + off);
            }
        }
    }
    None
}

/// Scans the token stream for `fn` items and brace-matches their bodies.
///
/// A `fn` keyword counts as an item only when followed by an identifier, which
/// excludes `fn(...)` pointer types. Nested functions get their own span.
pub fn function_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for idx in 0..tokens.len() {
        if tokens[idx].ident() != Some("fn") {
            continue;
        }
        let name_idx = match next_code(tokens, idx) {
            Some(n) => n,
            None => continue,
        };
        let name = match tokens[name_idx].ident() {
            Some(name) => name.to_string(),
            None => continue,
        };
        // Find the body `{` (or a `;` for bodyless declarations) at bracket depth 0
        // relative to the signature.
        let mut depth = 0isize;
        let mut cursor = name_idx + 1;
        let mut body = None;
        let mut end_line = tokens[idx].line;
        while cursor < tokens.len() {
            let t = &tokens[cursor];
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    let close = matching_close_brace(tokens, cursor);
                    if let Some(close) = close {
                        end_line = tokens[close].line;
                        body = Some((cursor, close));
                    }
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            cursor += 1;
        }
        spans.push(FnSpan {
            name,
            fn_idx: idx,
            body,
            start_line: tokens[idx].line,
            end_line,
        });
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(src: &str) -> FileAnalysis {
        FileAnalysis::build("test.rs", lex(src))
    }

    #[test]
    fn marker_attaches_to_next_fn_body() {
        let a = analyze(
            "fn before() {}\n\
             // lint: hot-path\n\
             fn target(x: usize) {\n\
                 body();\n\
             }\n\
             fn after() {}\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.regions.len(), 1);
        assert!(a.in_hot(3) && a.in_hot(5));
        assert!(!a.in_hot(1) && !a.in_hot(6));
        assert!(!a.in_warm(4));
    }

    #[test]
    fn file_level_directive_covers_everything() {
        let a = analyze("//! lint: warm-path\nfn f() { g(); }\n");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.in_warm(1) && a.in_warm(2));
    }

    #[test]
    fn region_allow_covers_the_function() {
        let a = analyze(
            "// lint: hot-path, allow(indexing): slots sized at submit\n\
             fn f(v: &[f32]) {\n\
                 touch(v);\n\
             }\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.allowed(3, "indexing"));
        assert!(!a.allowed(3, "panic"));
        assert_eq!(a.allow_sites.len(), 1);
        assert!(a.allow_sites[0].region);
    }

    #[test]
    fn line_allow_trailing_and_standalone() {
        let a = analyze(
            "fn f() {\n\
                 a(); // lint: allow(panic): checked above\n\
                 // lint: allow(alloc): one-time setup\n\
                 b();\n\
             }\n",
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.allowed(2, "panic"));
        assert!(a.allowed(4, "alloc"));
        assert!(!a.allowed(4, "panic"));
    }

    #[test]
    fn malformed_directives_are_violations() {
        for src in [
            "// lint: hot-path, allow(panic):\nfn f() {}\n", // empty justification
            "// lint: allow(frobnicate): x\nfn f() {}\n",    // unknown rule
            "// lint: cold-path\nfn f() {}\n",               // unknown marker
            "// lint:\nfn f() {}\n",                         // empty
            "// lint: hot-path\n",                           // no following fn
        ] {
            let a = analyze(src);
            assert_eq!(a.violations.len(), 1, "expected violation for {src:?}");
            assert_eq!(a.violations[0].rule, Rule::Directive);
        }
    }

    #[test]
    fn function_spans_skip_fn_pointer_types() {
        let spans = function_spans(&lex("type F = fn(usize) -> f32;\nfn real() {}\n"));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "real");
        assert_eq!(spans[0].start_line, 2);
    }

    #[test]
    fn bodyless_trait_fn_ends_at_semicolon() {
        let spans = function_spans(&lex("trait T {\n    fn decl(&self) -> usize;\n}\n"));
        assert_eq!(spans.len(), 1);
        assert!(spans[0].body.is_none());
        assert_eq!(spans[0].end_line, 2);
    }
}

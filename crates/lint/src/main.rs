//! CLI for the workspace invariant checker.
//!
//! ```text
//! tasd-lint --check                 # default: print violations, exit 1 if any
//! tasd-lint --inventory             # print the JSON inventory of unsafe/allow/lock sites
//! tasd-lint --root <dir>            # override repo root (default: walk up to lint.toml)
//! tasd-lint --config <file>         # override config path (default: <root>/lint.toml)
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or configuration error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tasd_lint::config::Config;

#[derive(PartialEq)]
enum Mode {
    Check,
    Inventory,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--inventory" => mode = Mode::Inventory,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config requires a file"),
            },
            "--help" | "-h" => {
                println!(
                    "tasd-lint: workspace invariant checker\n\
                     \n\
                       --check       print violations (default); exit 1 if any\n\
                       --inventory   print the JSON inventory of unsafe/allow/lock sites\n\
                       --root DIR    repo root (default: nearest ancestor with lint.toml)\n\
                       --config FILE config path (default: <root>/lint.toml)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "tasd-lint: no lint.toml found between the current directory and /; \
                 pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tasd-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("tasd-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match tasd_lint::check_workspace(&root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("tasd-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match mode {
        Mode::Inventory => {
            print!("{}", report.inventory_json());
        }
        Mode::Check => {
            for v in &report.violations {
                println!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "tasd-lint: clean — {} files, {} unsafe sites (all documented), \
                     {} allowlist entries, {} lock sites",
                    report.files_scanned,
                    report.unsafe_sites.len(),
                    report.allow_sites.len(),
                    report.lock_sites.len()
                );
            } else {
                println!(
                    "tasd-lint: {} violation(s) in {} files",
                    report.violations.len(),
                    report.files_scanned
                );
            }
        }
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Nearest ancestor of the current directory containing `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("tasd-lint: {message} (try --help)");
    ExitCode::from(2)
}

//! Rule 2: no panicking constructs inside `// lint: hot-path` regions.
//!
//! Flags `.unwrap()` / `.expect(..)`, panicking macros (`panic!`, `unreachable!`,
//! `todo!`, `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!` — the
//! `debug_assert*` family is deliberately permitted), and slice/array indexing.
//! Each finding can be silenced with `allow(panic)` / `allow(indexing)` plus a
//! justification.

use crate::analysis::{next_code, prev_code, FileAnalysis};
use crate::diagnostics::{Rule, Violation};
use crate::lexer::TokenKind;

const PANICKING_METHODS: &[&str] = &["unwrap", "expect"];
const PANICKING_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub fn check(analysis: &FileAnalysis) -> Vec<Violation> {
    let mut violations = Vec::new();
    let tokens = &analysis.tokens;
    for idx in 0..tokens.len() {
        let line = tokens[idx].line;
        if !analysis.in_hot(line) {
            continue;
        }
        match &tokens[idx].kind {
            TokenKind::Ident(word) if PANICKING_METHODS.contains(&word.as_str()) => {
                let after_dot = prev_code(tokens, idx).is_some_and(|p| tokens[p].is_punct('.'));
                if after_dot && !analysis.allowed(line, "panic") {
                    violations.push(violation(
                        analysis,
                        Rule::HotPathPanic,
                        line,
                        format!(".{word}() in hot-path region (allow(panic) or return an error)"),
                    ));
                }
            }
            TokenKind::Ident(word) if PANICKING_MACROS.contains(&word.as_str()) => {
                let is_macro = next_code(tokens, idx).is_some_and(|n| tokens[n].is_punct('!'));
                if is_macro && !analysis.allowed(line, "panic") {
                    violations.push(violation(
                        analysis,
                        Rule::HotPathPanic,
                        line,
                        format!("{word}! in hot-path region (allow(panic) or use debug_assert)"),
                    ));
                }
            }
            TokenKind::Punct('[')
                if is_index_expression(analysis, idx) && !analysis.allowed(line, "indexing") =>
            {
                violations.push(violation(
                    analysis,
                    Rule::HotPathIndexing,
                    line,
                    "slice indexing in hot-path region (allow(indexing) or use get())".to_string(),
                ));
            }
            _ => {}
        }
    }
    violations
}

/// `[` opens an *index expression* (which can panic) only when it follows a value:
/// an identifier, a `)` call/paren result, or a `]` prior index. Array literals,
/// slice patterns (`let [a, b] = ..`), types, `vec![..]` (previous token `!`), and
/// attributes (`#[..]`) all fail that test or are excluded by keyword.
fn is_index_expression(analysis: &FileAnalysis, open_idx: usize) -> bool {
    let tokens = &analysis.tokens;
    let prev = match prev_code(tokens, open_idx) {
        Some(p) => p,
        None => return false,
    };
    match &tokens[prev].kind {
        TokenKind::Ident(word) => !matches!(word.as_str(), "let" | "mut" | "ref"),
        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
        _ => false,
    }
}

fn violation(analysis: &FileAnalysis, rule: Rule, line: usize, message: String) -> Violation {
    Violation {
        rule,
        path: analysis.path.clone(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        check(&FileAnalysis::build("test.rs", lex(src)))
    }

    #[test]
    fn unmarked_code_is_not_scanned() {
        assert!(run("fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }\n").is_empty());
    }

    #[test]
    fn panicking_constructs_are_caught_at_their_lines() {
        let violations = run("// lint: hot-path\n\
             fn f(v: &[f32], o: Option<f32>) -> f32 {\n\
                 let a = o.unwrap();\n\
                 let b = o.expect(\"msg\");\n\
                 if v.is_empty() { panic!(\"empty\"); }\n\
                 a + b + v[0]\n\
             }\n");
        let lines: Vec<usize> = violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6], "{violations:?}");
        assert_eq!(violations[3].rule, Rule::HotPathIndexing);
    }

    #[test]
    fn allows_silence_specific_rules_only() {
        let violations = run(
            "// lint: hot-path, allow(indexing): len checked by caller\n\
             fn f(v: &[f32]) -> f32 {\n\
                 let x = v[0];\n\
                 x + v.first().unwrap() // lint: allow(panic): first checked above\n\
             }\n",
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn debug_assert_and_unwrap_or_are_permitted() {
        let violations = run("// lint: hot-path\n\
             fn f(o: Option<f32>) -> f32 {\n\
                 debug_assert!(o.is_some());\n\
                 o.unwrap_or(0.0)\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn non_index_brackets_are_not_flagged() {
        let violations = run("// lint: hot-path\n\
             fn f() -> Vec<f32> {\n\
                 #[allow(unused_mut)]\n\
                 let mut a = [0.0f32; 4];\n\
                 let [x, y, ..] = a;\n\
                 let v: Vec<f32> = vec![x, y];\n\
                 a[0] = 1.0;\n\
                 v\n\
             }\n");
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].line, 7);
    }
}

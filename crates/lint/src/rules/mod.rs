//! The four rule families. Each takes the shared [`crate::analysis::FileAnalysis`]
//! and reports violations plus inventory records.

pub mod hot_path;
pub mod lock_order;
pub mod unsafe_audit;
pub mod warm_path;

//! Rule 3: no allocating calls inside `// lint: warm-path` regions.
//!
//! Flags allocating method calls (`.to_vec()`, `.to_owned()`, `.to_string()`,
//! `.clone()`, `.collect()`), allocating macros (`vec!`, `format!`), and
//! constructor paths (`Vec::new`, `Box::new`, `String::with_capacity`, ... plus any
//! `Type::method` listed in `lint.toml` `extra_alloc_paths`). Silence with
//! `allow(alloc)` plus a justification.

use crate::analysis::{next_code, prev_code, FileAnalysis};
use crate::config::Config;
use crate::diagnostics::{Rule, Violation};
use crate::lexer::TokenKind;

const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone", "collect"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_TYPE_HEADS: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Arc", "Rc",
];
const ALLOC_CONSTRUCTORS: &[&str] = &["new", "with_capacity", "from"];

pub fn check(analysis: &FileAnalysis, config: &Config) -> Vec<Violation> {
    let mut violations = Vec::new();
    let tokens = &analysis.tokens;
    for idx in 0..tokens.len() {
        let line = tokens[idx].line;
        if !analysis.in_warm(line) || analysis.allowed(line, "alloc") {
            continue;
        }
        let word = match tokens[idx].ident() {
            Some(word) => word,
            None => continue,
        };
        if ALLOC_METHODS.contains(&word)
            && prev_code(tokens, idx).is_some_and(|p| tokens[p].is_punct('.'))
        {
            violations.push(violation(analysis, line, format!(".{word}()")));
            continue;
        }
        if ALLOC_MACROS.contains(&word)
            && next_code(tokens, idx).is_some_and(|n| tokens[n].is_punct('!'))
        {
            violations.push(violation(analysis, line, format!("{word}!")));
            continue;
        }
        if let Some(head) = path_head(analysis, idx) {
            let qualified = format!("{head}::{word}");
            let builtin =
                ALLOC_TYPE_HEADS.contains(&head.as_str()) && ALLOC_CONSTRUCTORS.contains(&word);
            if builtin || config.extra_alloc_paths.contains(&qualified) {
                violations.push(violation(analysis, line, qualified));
            }
        }
    }
    violations
}

/// For an identifier preceded by `::`, returns the path head (`Vec` in `Vec::new`
/// and in the turbofish form `Vec::<f32>::new`).
fn path_head(analysis: &FileAnalysis, idx: usize) -> Option<String> {
    let tokens = &analysis.tokens;
    let mut cursor = expect_double_colon(analysis, idx)?;
    loop {
        match &tokens[cursor].kind {
            TokenKind::Ident(head) => return Some(head.clone()),
            TokenKind::Punct('>') => {
                // Skip a turbofish segment `::<...>` and continue left of it.
                let mut depth = 1isize;
                while depth > 0 {
                    cursor = prev_code(tokens, cursor)?;
                    match &tokens[cursor].kind {
                        TokenKind::Punct('>') => depth += 1,
                        TokenKind::Punct('<') => depth -= 1,
                        _ => {}
                    }
                }
                cursor = expect_double_colon(analysis, cursor)?;
            }
            _ => return None,
        }
    }
}

/// If the two code tokens before `idx` are `::`, returns the index of the token
/// before them.
fn expect_double_colon(analysis: &FileAnalysis, idx: usize) -> Option<usize> {
    let tokens = &analysis.tokens;
    let second = prev_code(tokens, idx)?;
    if !tokens[second].is_punct(':') {
        return None;
    }
    let first = prev_code(tokens, second)?;
    if !tokens[first].is_punct(':') {
        return None;
    }
    prev_code(tokens, first)
}

fn violation(analysis: &FileAnalysis, line: usize, what: String) -> Violation {
    Violation {
        rule: Rule::WarmPathAlloc,
        path: analysis.path.clone(),
        line,
        message: format!(
            "{what} allocates in warm-path region (allow(alloc) or reuse a prepared buffer)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        run_with(src, Config::default())
    }

    fn run_with(src: &str, config: Config) -> Vec<Violation> {
        check(&FileAnalysis::build("test.rs", lex(src)), &config)
    }

    #[test]
    fn unmarked_code_is_not_scanned() {
        assert!(run("fn f(v: &[f32]) -> Vec<f32> { v.to_vec() }\n").is_empty());
    }

    #[test]
    fn allocating_calls_are_caught_at_their_lines() {
        let violations = run("// lint: warm-path\n\
             fn f(v: &[f32]) -> Vec<f32> {\n\
                 let a = v.to_vec();\n\
                 let b: Vec<f32> = Vec::with_capacity(4);\n\
                 let c = vec![0.0f32];\n\
                 let d = Vec::<f32>::new();\n\
                 let s = format!(\"{}\", a.len());\n\
                 drop((b, c, d, s));\n\
                 a\n\
             }\n");
        let lines: Vec<usize> = violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7], "{violations:?}");
    }

    #[test]
    fn extra_alloc_paths_from_config_are_flagged() {
        let config = Config {
            extra_alloc_paths: vec!["Matrix::zeros".to_string()],
            ..Config::default()
        };
        let violations = run("// lint: warm-path\n\
             fn f() {\n\
                 let m = Matrix::zeros(4, 4);\n\
                 let ok = Matrix::view(&m);\n\
                 drop(ok);\n\
             }\n");
        assert!(
            violations.is_empty(),
            "no config, no extra flag: {violations:?}"
        );
        let violations = {
            let src = "// lint: warm-path\n\
                       fn f() {\n\
                           let m = Matrix::zeros(4, 4);\n\
                           drop(m);\n\
                       }\n";
            run_with(src, config)
        };
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn allow_alloc_silences_with_justification() {
        let violations = run("// lint: warm-path\n\
             fn f(v: &[f32]) -> Vec<f32> {\n\
                 v.to_vec() // lint: allow(alloc): fallback densify, cold operands only\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn non_allocating_paths_are_not_flagged() {
        let violations = run("// lint: warm-path\n\
             fn f(v: &[f32]) -> f32 {\n\
                 let n = v.len();\n\
                 let m = f32::from(1u8);\n\
                 v.iter().sum::<f32>() + m + n as f32\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
    }
}

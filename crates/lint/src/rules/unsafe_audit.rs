//! Rule 1: every `unsafe` block/fn/impl/trait must carry an adjacent safety contract
//! (`// SAFETY:` or a `# Safety` doc section) within the few lines above it. All
//! sites are inventoried regardless of outcome.

use crate::analysis::{next_code, FileAnalysis};
use crate::diagnostics::{Rule, UnsafeSite, Violation};
use crate::lexer::TokenKind;

/// How far above the `unsafe` keyword the *nearest* comment block may end and still
/// count as adjacent. A contiguous comment run reaching into this window is searched
/// in full (a thorough contract may be arbitrarily long); the window only bounds the
/// gap, so a stale comment at the top of the function does not satisfy the rule by
/// accident.
const SAFETY_COMMENT_WINDOW: usize = 12;

pub fn check(analysis: &FileAnalysis) -> (Vec<Violation>, Vec<UnsafeSite>) {
    let mut violations = Vec::new();
    let mut sites = Vec::new();
    let tokens = &analysis.tokens;
    for idx in 0..tokens.len() {
        if tokens[idx].ident() != Some("unsafe") {
            continue;
        }
        let line = tokens[idx].line;
        let kind = match next_code(tokens, idx) {
            Some(n) => match &tokens[n].kind {
                TokenKind::Punct('{') => "block",
                TokenKind::Ident(word) => match word.as_str() {
                    "fn" | "impl" | "trait" | "extern" => word.as_str(),
                    _ => "block",
                },
                _ => "block",
            },
            None => "block",
        };
        // Walk back: code tokens are skipped while still inside the window; once a
        // comment is reached, its whole contiguous run counts, however long.
        let mut has_safety_comment = false;
        let mut in_comment_run = false;
        for t in tokens[..idx].iter().rev() {
            match t.comment() {
                Some(text) => {
                    if !in_comment_run && t.line + SAFETY_COMMENT_WINDOW < line {
                        break;
                    }
                    in_comment_run = true;
                    if text.contains("SAFETY:") || text.contains("# Safety") {
                        has_safety_comment = true;
                        break;
                    }
                }
                None => {
                    if in_comment_run || t.line + SAFETY_COMMENT_WINDOW < line {
                        break;
                    }
                }
            }
        }
        if !has_safety_comment {
            violations.push(Violation {
                rule: Rule::UnsafeAudit,
                path: analysis.path.clone(),
                line,
                message: format!(
                    "`unsafe` {kind} has no adjacent `// SAFETY:` contract \
                     (expected within {SAFETY_COMMENT_WINDOW} lines above)"
                ),
            });
        }
        sites.push(UnsafeSite {
            path: analysis.path.clone(),
            line,
            kind: kind.to_string(),
            has_safety_comment,
        });
    }
    (violations, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Violation>, Vec<UnsafeSite>) {
        check(&FileAnalysis::build("test.rs", lex(src)))
    }

    #[test]
    fn undocumented_unsafe_block_is_flagged_at_its_line() {
        let (violations, sites) = run("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 2);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, "block");
        assert!(!sites[0].has_safety_comment);
    }

    #[test]
    fn safety_comment_satisfies_the_rule() {
        let (violations, sites) = run("fn f(p: *const u8) -> u8 {\n\
                 // SAFETY: caller guarantees p is valid for reads.\n\
                 unsafe { *p }\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
        assert!(sites[0].has_safety_comment);
    }

    #[test]
    fn doc_safety_section_satisfies_unsafe_fn() {
        let (violations, sites) = run("/// Reads a byte.\n\
             ///\n\
             /// # Safety\n\
             /// `p` must be valid.\n\
             unsafe fn read(p: *const u8) -> u8 { *p }\n");
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites[0].kind, "fn");
    }

    #[test]
    fn long_contract_block_counts_in_full() {
        // The SAFETY line sits far above the `unsafe` token, but the comment run is
        // contiguous down into the window, so the whole block is searched.
        let body: String = (0..SAFETY_COMMENT_WINDOW + 3)
            .map(|i| format!("// invariant {i} holds.\n"))
            .collect();
        let src = format!(
            "fn f(p: *const u8) -> u8 {{\n// SAFETY: the contract:\n{body}unsafe {{ *p }}\n}}\n"
        );
        let (violations, sites) = run(&src);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(sites[0].has_safety_comment);
    }

    #[test]
    fn comment_run_separated_by_code_does_not_count() {
        // The SAFETY comment documents the setup call, not the unsafe block: the code
        // token between the two comment runs cuts the search off even in-window.
        let (violations, _) = run("fn f(p: *const u8) -> u8 {\n\
                 // SAFETY: documents the call below, not the unsafe block.\n\
                 setup();\n\
                 // an unrelated note right above the block\n\
                 unsafe { *p }\n\
             }\n");
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn far_away_comment_does_not_count() {
        let blanks = "\n".repeat(SAFETY_COMMENT_WINDOW + 2);
        let src =
            format!("// SAFETY: stale.{blanks}fn f(p: *const u8) -> u8 {{ unsafe {{ *p }} }}\n");
        let (violations, _) = run(&src);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn the_word_unsafe_in_comments_and_strings_is_ignored() {
        let (violations, sites) =
            run("// unsafe is mentioned here\nfn f() { let s = \"unsafe\"; drop(s); }\n");
        assert!(violations.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn unsafe_impl_is_classified() {
        let (violations, sites) =
            run("// SAFETY: Latch owns its state behind a mutex.\nunsafe impl Send for L {}\n");
        assert!(violations.is_empty());
        assert_eq!(sites[0].kind, "impl");
    }
}

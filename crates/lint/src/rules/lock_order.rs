//! Rule 4: lock registration and ordering.
//!
//! Catalogs every synchronization acquisition site (`.lock()`, the `lock_or_panic`
//! helper, `.read()`/`.write()` on registered rwlocks, and condvar waits), requires
//! each mutex acquisition to match a `[[lock]]` registration in `lint.toml`, and
//! flags same-function nested acquisitions that contradict the declared order: while
//! holding a lock, only locks that appear *later* in `[lock_order].order` may be
//! taken.
//!
//! The analysis is textual and per-function. Guard liveness is over-approximated:
//! a guard `let`-bound to a simple identifier is considered held until the end of
//! its enclosing brace block (or an explicit `drop(name)`), and any other guard is a
//! temporary held until the next `;` at or below its brace depth — which also covers
//! `if let` scrutinee temporaries. Cross-function nesting (a callee taking a lock
//! while the caller holds one) is out of scope; the declared order documents it.

use crate::analysis::{matching_close_brace, next_code, prev_code, FileAnalysis};
use crate::config::{Config, LockSpec};
use crate::diagnostics::{LockSite, LockSiteKind, Rule, Violation};
use crate::lexer::TokenKind;

struct RawSite {
    /// Token index of the method/helper identifier.
    idx: usize,
    /// Token index where the receiver expression starts (for `let`-binding lookback).
    stmt_start: usize,
    line: usize,
    receiver: Vec<String>,
    kind: LockSiteKind,
}

pub fn check(analysis: &FileAnalysis, config: &Config) -> (Vec<Violation>, Vec<LockSite>) {
    let mut violations = Vec::new();
    let mut catalog = Vec::new();
    let tokens = &analysis.tokens;

    // Phase 1: match raw sites against the registry and catalog them.
    struct Matched<'a> {
        raw: RawSite,
        lock: Option<&'a LockSpec>,
    }
    let mut matched: Vec<Matched<'_>> = Vec::new();
    for raw in find_raw_sites(tokens) {
        let lock = best_registration(config, &analysis.path, &raw.receiver);
        let requires_registration = matches!(raw.kind, LockSiteKind::Lock | LockSiteKind::Helper);
        match (&lock, raw.kind) {
            // `.read()`/`.write()` identifiers are far too common to demand global
            // registration; they participate only when the receiver is a registered
            // rwlock.
            (None, LockSiteKind::Read | LockSiteKind::Write) => continue,
            (Some(spec), LockSiteKind::Read | LockSiteKind::Write) if spec.kind != "rwlock" => {
                continue
            }
            (None, _) if requires_registration => {
                violations.push(Violation {
                    rule: Rule::LockUnregistered,
                    path: analysis.path.clone(),
                    line: raw.line,
                    message: format!(
                        "lock acquisition on `{}` matches no [[lock]] registration in lint.toml",
                        raw.receiver.join(".")
                    ),
                });
            }
            _ => {}
        }
        let function = analysis
            .enclosing_fn(raw.idx)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        catalog.push(LockSite {
            path: analysis.path.clone(),
            line: raw.line,
            lock_name: lock.map(|l| l.name.clone()),
            receiver: raw.receiver.join("."),
            kind: raw.kind,
            function,
        });
        matched.push(Matched { raw, lock });
    }

    // Phase 2: per-function nesting check against the declared order.
    for f in analysis.fns.iter() {
        let (body_open, body_close) = match f.body {
            Some(range) => range,
            None => continue,
        };
        // Held set: (declared order index, lock name, token index where the guard dies).
        let mut held: Vec<(usize, String, usize)> = Vec::new();
        for m in matched.iter().filter(|m| {
            body_open <= m.raw.idx
                && m.raw.idx <= body_close
                && analysis
                    .enclosing_fn(m.raw.idx)
                    .is_some_and(|inner| inner.fn_idx == f.fn_idx)
        }) {
            held.retain(|&(_, _, end)| end >= m.raw.idx);
            let spec = match m.lock {
                Some(spec) if !spec.exempt => spec,
                _ => continue,
            };
            if m.raw.kind == LockSiteKind::CondvarWait {
                continue;
            }
            let order = match config.order_index(&spec.name) {
                Some(order) => order,
                None => continue, // validated at config load; defensive
            };
            for (held_order, held_name, _) in &held {
                if order < *held_order {
                    violations.push(Violation {
                        rule: Rule::LockOrder,
                        path: analysis.path.clone(),
                        line: m.raw.line,
                        message: format!(
                            "acquiring `{}` while holding `{held_name}` violates the declared \
                             lock order (`{}` must be taken first)",
                            spec.name, spec.name
                        ),
                    });
                } else if order == *held_order {
                    violations.push(Violation {
                        rule: Rule::LockOrder,
                        path: analysis.path.clone(),
                        line: m.raw.line,
                        message: format!("re-acquiring `{}` while it is already held", spec.name),
                    });
                }
            }
            let end = guard_end(tokens, &m.raw, body_open, body_close);
            held.push((order, spec.name.clone(), end));
        }
    }

    (violations, catalog)
}

/// Scans for acquisition-shaped token patterns.
fn find_raw_sites(tokens: &[crate::lexer::Token]) -> Vec<RawSite> {
    let mut sites = Vec::new();
    for idx in 0..tokens.len() {
        let word = match tokens[idx].ident() {
            Some(word) => word,
            None => continue,
        };
        let line = tokens[idx].line;
        match word {
            "lock" | "read" | "write" | "wait" => {
                let dot = match prev_code(tokens, idx) {
                    Some(p) if tokens[p].is_punct('.') => p,
                    _ => continue,
                };
                let open = match next_code(tokens, idx) {
                    Some(n) if tokens[n].is_punct('(') => n,
                    _ => continue,
                };
                let kind = match word {
                    "lock" => LockSiteKind::Lock,
                    "read" => LockSiteKind::Read,
                    "write" => LockSiteKind::Write,
                    _ => {
                        // `.wait()` with no argument is a latch/handle join, not a
                        // condvar wait; only `cv.wait(guard)` counts.
                        let has_args =
                            next_code(tokens, open).is_some_and(|n| !tokens[n].is_punct(')'));
                        if !has_args {
                            continue;
                        }
                        LockSiteKind::CondvarWait
                    }
                };
                let (receiver, stmt_start) = receiver_before(tokens, dot);
                if receiver.is_empty() {
                    continue;
                }
                sites.push(RawSite {
                    idx,
                    stmt_start,
                    line,
                    receiver,
                    kind,
                });
            }
            "lock_or_panic" | "wait_or_panic" => {
                let open = match next_code(tokens, idx) {
                    Some(n) if tokens[n].is_punct('(') => n,
                    _ => continue,
                };
                // Skip the definition site (`fn lock_or_panic(...)`).
                if prev_code(tokens, idx).and_then(|p| tokens[p].ident()) == Some("fn") {
                    continue;
                }
                let receiver = first_arg_path(tokens, open);
                if receiver.is_empty() {
                    continue;
                }
                let kind = if word == "lock_or_panic" {
                    LockSiteKind::Helper
                } else {
                    LockSiteKind::CondvarWait
                };
                sites.push(RawSite {
                    idx,
                    stmt_start: idx,
                    line,
                    receiver,
                    kind,
                });
            }
            _ => {}
        }
    }
    sites
}

/// Walks a `ident(.ident)*` chain backwards from the `.` at `dot_idx`. Returns the
/// chain segments in source order plus the token index of the first segment.
fn receiver_before(tokens: &[crate::lexer::Token], dot_idx: usize) -> (Vec<String>, usize) {
    let mut segments = Vec::new();
    let mut cursor = dot_idx;
    let mut start = dot_idx;
    while let Some(seg) = prev_code(tokens, cursor) {
        match &tokens[seg].kind {
            TokenKind::Ident(name) => {
                segments.push(name.clone());
                start = seg;
            }
            _ => break,
        }
        match prev_code(tokens, seg) {
            Some(p) if tokens[p].is_punct('.') => cursor = p,
            _ => break,
        }
    }
    segments.reverse();
    (segments, start)
}

/// Extracts the `&path.to.lock` dot-path from the first argument of a helper call.
fn first_arg_path(tokens: &[crate::lexer::Token], open_idx: usize) -> Vec<String> {
    let mut segments = Vec::new();
    let mut cursor = open_idx;
    let mut expect_ident = true;
    while let Some(n) = next_code(tokens, cursor) {
        match &tokens[n].kind {
            TokenKind::Punct('&') | TokenKind::Punct('*') => {}
            TokenKind::Ident(name) if expect_ident => {
                segments.push(name.clone());
                expect_ident = false;
            }
            TokenKind::Punct('.') if !expect_ident => expect_ident = true,
            _ => break,
        }
        cursor = n;
    }
    segments
}

/// Longest-receiver-suffix registration whose file prefix matches this path.
fn best_registration<'a>(
    config: &'a Config,
    path: &str,
    receiver: &[String],
) -> Option<&'a LockSpec> {
    config
        .locks
        .iter()
        .filter(|lock| {
            // `file` may be an exact path or a directory prefix (with or without a
            // trailing slash).
            let prefix = lock.file.trim_end_matches('/');
            path == prefix || path.starts_with(&format!("{prefix}/"))
        })
        .filter(|lock| {
            let want: Vec<&str> = lock.receiver.split('.').collect();
            want.len() <= receiver.len()
                && receiver[receiver.len() - want.len()..]
                    .iter()
                    .zip(&want)
                    .all(|(a, b)| a == b)
        })
        .max_by_key(|lock| lock.receiver.split('.').count())
}

/// Token index at which a guard acquired at `raw` stops being held.
fn guard_end(
    tokens: &[crate::lexer::Token],
    raw: &RawSite,
    body_open: usize,
    body_close: usize,
) -> usize {
    let binding =
        let_binding_name(tokens, raw.stmt_start).filter(|_| chain_yields_guard(tokens, raw));
    if let Some(name) = binding {
        let block_close = enclosing_block_close(tokens, body_open, raw.idx).unwrap_or(body_close);
        // An explicit `drop(name)` before the block closes ends the guard early.
        let mut cursor = raw.idx;
        while let Some(n) = next_code(tokens, cursor) {
            if n >= block_close {
                break;
            }
            if tokens[n].ident() == Some("drop") {
                if let Some(open) = next_code(tokens, n) {
                    if tokens[open].is_punct('(') {
                        if let Some(arg) = next_code(tokens, open) {
                            if tokens[arg].ident() == Some(name.as_str()) {
                                return n;
                            }
                        }
                    }
                }
            }
            cursor = n;
        }
        return block_close;
    }
    // Temporary: held until the next `;` at or below the site's brace depth.
    let mut depth = 0isize;
    let end = body_close.min(tokens.len().saturating_sub(1));
    for (i, t) in tokens.iter().enumerate().take(end + 1).skip(raw.idx) {
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct(';') if depth <= 0 => return i,
            _ => {}
        }
    }
    body_close
}

/// True when the expression at the acquisition site evaluates to the guard itself:
/// the call chain ends after the acquisition call, optionally followed by
/// `.unwrap()` / `.expect(..)`. A longer chain (`.lock().unwrap().len()`) yields a
/// derived value, so the guard is a statement temporary even if the result is
/// `let`-bound.
fn chain_yields_guard(tokens: &[crate::lexer::Token], raw: &RawSite) -> bool {
    let open = match next_code(tokens, raw.idx) {
        Some(n) if tokens[n].is_punct('(') => n,
        _ => return false,
    };
    let mut close = match matching_close_paren(tokens, open) {
        Some(c) => c,
        None => return false,
    };
    loop {
        let dot = match next_code(tokens, close) {
            Some(n) if tokens[n].is_punct('.') => n,
            _ => return true, // chain ends here: the value is the guard
        };
        let method = match next_code(tokens, dot) {
            Some(m) => m,
            None => return true,
        };
        if !matches!(tokens[method].ident(), Some("unwrap") | Some("expect")) {
            return false;
        }
        let next_open = match next_code(tokens, method) {
            Some(n) if tokens[n].is_punct('(') => n,
            _ => return false,
        };
        close = match matching_close_paren(tokens, next_open) {
            Some(c) => c,
            None => return false,
        };
    }
}

/// Token index of the `)` matching the `(` at `open_idx`.
fn matching_close_paren(tokens: &[crate::lexer::Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, token) in tokens[open_idx..].iter().enumerate() {
        if token.is_punct('(') {
            depth += 1;
        } else if token.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + off);
            }
        }
    }
    None
}

/// If the code tokens immediately before `stmt_start` are `let [mut] name =`,
/// returns `name`.
fn let_binding_name(tokens: &[crate::lexer::Token], stmt_start: usize) -> Option<String> {
    let eq = prev_code(tokens, stmt_start)?;
    if !tokens[eq].is_punct('=') {
        return None;
    }
    let name_idx = prev_code(tokens, eq)?;
    let name = tokens[name_idx].ident()?.to_string();
    if name == "mut" || name == "let" {
        return None;
    }
    let before = prev_code(tokens, name_idx)?;
    match tokens[before].ident()? {
        "let" => Some(name),
        "mut" => {
            let before2 = prev_code(tokens, before)?;
            if tokens[before2].ident()? == "let" {
                Some(name)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Innermost `{` enclosing `site_idx` within the function body, returned as its
/// matching `}` index.
fn enclosing_block_close(
    tokens: &[crate::lexer::Token],
    body_open: usize,
    site_idx: usize,
) -> Option<usize> {
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate().take(site_idx + 1).skip(body_open) {
        match &t.kind {
            TokenKind::Punct('{') => stack.push(i),
            TokenKind::Punct('}') => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack
        .pop()
        .and_then(|open| matching_close_brace(tokens, open))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_config() -> Config {
        Config {
            lock_order: vec!["a.outer".into(), "b.inner".into()],
            locks: vec![
                LockSpec {
                    name: "a.outer".into(),
                    file: "test.rs".into(),
                    receiver: "outer".into(),
                    kind: "mutex".into(),
                    exempt: false,
                },
                LockSpec {
                    name: "b.inner".into(),
                    file: "test.rs".into(),
                    receiver: "shared.inner".into(),
                    kind: "mutex".into(),
                    exempt: false,
                },
            ],
            ..Config::default()
        }
    }

    fn run(src: &str) -> (Vec<Violation>, Vec<LockSite>) {
        check(&FileAnalysis::build("test.rs", lex(src)), &test_config())
    }

    #[test]
    fn declared_order_passes_and_is_cataloged() {
        let (violations, catalog) = run("fn f(&self) {\n\
                 let g = self.outer.lock().unwrap();\n\
                 let h = self.shared.inner.lock().unwrap();\n\
                 drop((g, h));\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog[0].lock_name.as_deref(), Some("a.outer"));
        assert_eq!(catalog[1].lock_name.as_deref(), Some("b.inner"));
        assert_eq!(catalog[1].function, "f");
    }

    #[test]
    fn reversed_nesting_is_flagged_at_the_inner_site() {
        let (violations, _) = run("fn f(&self) {\n\
                 let h = self.shared.inner.lock().unwrap();\n\
                 let g = self.outer.lock().unwrap();\n\
                 drop((g, h));\n\
             }\n");
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, Rule::LockOrder);
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn block_scoped_guard_does_not_leak_into_later_acquisitions() {
        let (violations, _) = run("fn f(&self) {\n\
                 {\n\
                     let h = self.shared.inner.lock().unwrap();\n\
                     h.touch();\n\
                 }\n\
                 let g = self.outer.lock().unwrap();\n\
                 drop(g);\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn explicit_drop_releases_a_let_bound_guard() {
        let (violations, _) = run("fn f(&self) {\n\
                 let h = self.shared.inner.lock().unwrap();\n\
                 drop(h);\n\
                 let g = self.outer.lock().unwrap();\n\
                 drop(g);\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn temporary_guard_dies_at_its_statement() {
        let (violations, _) = run("fn f(&self) {\n\
                 let n = self.shared.inner.lock().unwrap().len();\n\
                 let g = self.outer.lock().unwrap();\n\
                 drop((g, n));\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unregistered_lock_is_flagged() {
        let (violations, catalog) = run("fn f(&self) {\n\
                 let g = self.mystery.lock().unwrap();\n\
                 drop(g);\n\
             }\n");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, Rule::LockUnregistered);
        assert_eq!(violations[0].line, 2);
        assert!(catalog[0].lock_name.is_none());
    }

    #[test]
    fn helper_calls_count_as_acquisitions() {
        let (violations, catalog) = run("fn f(&self) {\n\
                 let h = lock_or_panic(&self.shared.inner, \"inner\");\n\
                 let g = lock_or_panic(&self.outer, \"outer\");\n\
                 drop((g, h));\n\
             }\n");
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].line, 3);
        assert_eq!(catalog[0].kind, LockSiteKind::Helper);
    }

    #[test]
    fn condvar_wait_is_cataloged_but_not_an_order_edge() {
        let (violations, catalog) = run("fn f(&self) {\n\
                 let mut g = self.outer.lock().unwrap();\n\
                 g = self.cv.wait(g).unwrap();\n\
                 drop(g);\n\
                 let l = latch.wait();\n\
                 drop(l);\n\
             }\n");
        assert!(violations.is_empty(), "{violations:?}");
        let kinds: Vec<LockSiteKind> = catalog.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![LockSiteKind::Lock, LockSiteKind::CondvarWait]);
    }

    #[test]
    fn exempt_locks_are_cataloged_without_ordering() {
        let mut config = test_config();
        config.locks.push(LockSpec {
            name: "helper".into(),
            file: "test.rs".into(),
            receiver: "mutex".into(),
            kind: "mutex".into(),
            exempt: true,
        });
        let (violations, catalog) = check(
            &FileAnalysis::build(
                "test.rs",
                lex("fn f(&self) {\n\
                     let h = self.shared.inner.lock().unwrap();\n\
                     let g = mutex.lock().unwrap();\n\
                     drop((g, h));\n\
                 }\n"),
            ),
            &config,
        );
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(catalog.len(), 2);
    }
}

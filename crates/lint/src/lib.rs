//! `tasd-lint`: the workspace invariant checker.
//!
//! A self-contained static-analysis library (no dependencies — this environment has
//! no registry access, so no `syn`; a hand-rolled token scanner is enough for the
//! rules below). Four rule families, driven by `lint.toml` at the repo root:
//!
//! 1. **unsafe-audit** — every `unsafe` must carry an adjacent `// SAFETY:` (or
//!    `# Safety` doc section); all sites are inventoried.
//! 2. **hot-path** — no panicking constructs (`unwrap`/`expect`/`panic!`-family
//!    macros/slice indexing) in `// lint: hot-path` regions without an allow.
//! 3. **warm-path** — no allocating calls in `// lint: warm-path` regions without
//!    an allow.
//! 4. **lock-order** — every mutex acquisition registered in `lint.toml`, nested
//!    acquisitions consistent with the declared order.
//!
//! See `crates/lint/README.md` for the marker syntax and the allowlist workflow.

pub mod analysis;
pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use analysis::FileAnalysis;
use config::Config;
use diagnostics::{AllowSite, LockSite, UnsafeSite, Violation};

/// Everything one run over the workspace produced.
pub struct Report {
    pub violations: Vec<Violation>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub allow_sites: Vec<AllowSite>,
    pub lock_sites: Vec<LockSite>,
    pub files_scanned: usize,
}

/// Lexes and checks every configured source file under `root`.
pub fn check_workspace(root: &Path, config: &Config) -> io::Result<Report> {
    let files = walk::collect_sources(root, config)?;
    let mut report = Report {
        violations: Vec::new(),
        unsafe_sites: Vec::new(),
        allow_sites: Vec::new(),
        lock_sites: Vec::new(),
        files_scanned: files.len(),
    };
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        check_file(rel, &text, config, &mut report);
    }
    // The workspace-wide unsafe budget: the inventory tripwire. A mismatch in either
    // direction is a violation, so the count in `lint.toml` moves only deliberately.
    if let Some(expected) = config.expected_unsafe_sites {
        let found = report.unsafe_sites.len();
        if found != expected {
            report.violations.push(Violation {
                rule: diagnostics::Rule::UnsafeAudit,
                path: "lint.toml".to_string(),
                line: 0,
                message: format!(
                    "workspace has {found} unsafe site(s) but [unsafe_audit].expected_sites \
                     budgets {expected}; update the budget alongside the SAFETY-contracted \
                     change (sites: {})",
                    report
                        .unsafe_sites
                        .iter()
                        .map(|s| format!("{}:{}", s.path, s.line))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Runs all rules over one file's source text, appending results to `report`.
pub fn check_file(path: &str, text: &str, config: &Config, report: &mut Report) {
    let analysis = FileAnalysis::build(path, lexer::lex(text));
    report
        .violations
        .extend(analysis.violations.iter().cloned());
    report
        .allow_sites
        .extend(analysis.allow_sites.iter().cloned());
    let (violations, sites) = rules::unsafe_audit::check(&analysis);
    report.violations.extend(violations);
    report.unsafe_sites.extend(sites);
    report.violations.extend(rules::hot_path::check(&analysis));
    report
        .violations
        .extend(rules::warm_path::check(&analysis, config));
    let (violations, sites) = rules::lock_order::check(&analysis, config);
    report.violations.extend(violations);
    report.lock_sites.extend(sites);
}

impl Report {
    /// Machine-readable inventory, as JSON (hand-rolled: the crate is
    /// dependency-free by design).
    pub fn inventory_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"unsafe_sites\": {},\n    \"allow_sites\": {},\n    \"lock_sites\": {},\n    \"violations\": {}\n",
            self.unsafe_sites.len(),
            self.allow_sites.len(),
            self.lock_sites.len(),
            self.violations.len()
        ));
        out.push_str("  },\n");

        out.push_str("  \"unsafe_sites\": [\n");
        push_list(&mut out, &self.unsafe_sites, |s| {
            format!(
                "    {{\"path\": {}, \"line\": {}, \"kind\": {}, \"has_safety_comment\": {}}}",
                json_str(&s.path),
                s.line,
                json_str(&s.kind),
                s.has_safety_comment
            )
        });
        out.push_str("  ],\n");

        out.push_str("  \"allow_sites\": [\n");
        push_list(&mut out, &self.allow_sites, |s| {
            let rules = s
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{\"path\": {}, \"line\": {}, \"rules\": [{}], \"region\": {}, \"justification\": {}}}",
                json_str(&s.path),
                s.line,
                rules,
                s.region,
                json_str(&s.justification)
            )
        });
        out.push_str("  ],\n");

        out.push_str("  \"lock_sites\": [\n");
        push_list(&mut out, &self.lock_sites, |s| {
            let name = match &s.lock_name {
                Some(name) => json_str(name),
                None => "null".to_string(),
            };
            format!(
                "    {{\"path\": {}, \"line\": {}, \"lock\": {}, \"receiver\": {}, \"kind\": {}, \"function\": {}}}",
                json_str(&s.path),
                s.line,
                name,
                json_str(&s.receiver),
                json_str(s.kind.as_str()),
                json_str(&s.function)
            )
        });
        out.push_str("  ]\n}\n");
        out
    }
}

fn push_list<T>(out: &mut String, items: &[T], render: impl Fn(&T) -> String) {
    for (i, item) in items.iter().enumerate() {
        out.push_str(&render(item));
        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_json_is_well_formed_enough() {
        let mut report = Report {
            violations: Vec::new(),
            unsafe_sites: Vec::new(),
            allow_sites: Vec::new(),
            lock_sites: Vec::new(),
            files_scanned: 0,
        };
        check_file(
            "a.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            &Config::default(),
            &mut report,
        );
        let json = report.inventory_json();
        assert!(json.contains("\"unsafe_sites\": 1"), "{json}");
        assert!(json.contains("\"has_safety_comment\": false"), "{json}");
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

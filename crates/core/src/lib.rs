//! # tasd — Tensor Approximation via Structured Decomposition
//!
//! This crate is the primary contribution of the reproduced paper
//! *"Enabling Unstructured Sparse Acceleration on Structured Sparse Accelerators"*
//! (MLSys 2025): a method that approximates **any** sparse (or even dense) tensor `A` with
//! a series of N:M structured sparse tensors,
//!
//! ```text
//! A  ≃  A₁^{s₁} + A₂^{s₂} + … + Aₙ^{sₙ}
//! ```
//!
//! where each term is extracted greedily — keep the largest-magnitude elements per
//! M-element block — from the running residual. Because matrix algebra distributes over
//! addition, `A·B` can then be executed as a sum of *structured* sparse GEMMs, each of
//! which a structured sparse accelerator (2:4 sparse tensor core, VEGETA-style N:8 engine)
//! supports natively.
//!
//! The crate provides:
//!
//! * [`TasdConfig`] — a decomposition configuration: an ordered list of N:M patterns.
//! * [`decompose`] / [`TasdSeries`] — the greedy structured decomposition and the resulting
//!   series of compressed terms, with reconstruction and error metrics.
//! * [`ExecutionEngine`] — the unified execution layer: plans a
//!   [`GemmBackend`](tasd_tensor::GemmBackend) per term from density, caches
//!   decompositions in an LRU keyed by (matrix fingerprint, config), and executes series
//!   GEMMs term-by-term. [`series_gemm`] is a thin wrapper over the default engine.
//! * [`ServingEngine`] — the async, session-based serving front-end over one shared
//!   engine: enqueue requests, coalesce them into micro-batch windows, collect results
//!   through [`ResponseHandle`]s (see the `tasd::engine` module docs' serving-session
//!   lifecycle).
//! * [`WeightStore`] / [`load_snapshot`] — the deploy lifecycle: named operands with
//!   atomic generation swaps (push new weights under live traffic, re-preparing only
//!   dirty row shards) and prepared-cache persistence (a restarted engine serves its
//!   first request with zero decompositions). See the `tasd::engine` module docs'
//!   "Deploy lifecycle" section.
//! * [`compose`] — the pattern-composition algebra (paper Table 2): which effective N:M
//!   patterns a piece of hardware supports once TASD chaining is allowed.
//! * [`analysis`] — the synthetic-data studies of the paper's Appendix A (drop fractions vs
//!   density, matmul error vs approximated sparsity).
//!
//! # Quickstart
//!
//! Decompose once (cached), execute many times through the engine:
//!
//! ```
//! use tasd::{ExecutionEngine, TasdConfig};
//! use tasd_tensor::{gemm, relative_frobenius_error, MatrixGenerator};
//!
//! let engine = ExecutionEngine::builder()
//!     .cache_capacity(64)   // decompositions memoized by (fingerprint, config)
//!     .parallel(true)       // big matmuls tile row blocks across threads
//!     .build();
//!
//! let mut gen = MatrixGenerator::seeded(0);
//! let a = gen.sparse_normal(64, 64, 0.7);             // unstructured 70% sparse
//! let b = gen.normal(64, 32, 0.0, 1.0);
//! let config = TasdConfig::parse("2:4+2:8").unwrap(); // two structured terms
//!
//! // Decompose + execute; the second call to decompose() is a cache hit.
//! let series = engine.decompose(&a, &config);
//! let c = engine.series_gemm(&series, &b).unwrap();
//! assert!(engine.decompose(&a, &config).nnz() == series.nnz());
//! assert_eq!(engine.cache_stats().hits, 1);
//!
//! // The plan explains how each structured term will execute.
//! let plan = engine.plan_series(&series, b.cols());
//! assert!(plan.num_terms() <= config.order());
//!
//! let exact = gemm(&a, &b).unwrap();
//! assert!(relative_frobenius_error(&exact, &c) < 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod compose;
pub mod config;
pub mod decompose;
pub mod engine;
pub mod series;

pub use compose::{compose_pattern_table, ComposedPattern, PatternMenu};
pub use config::TasdConfig;
pub use decompose::{decompose, decompose_with_residual};
pub use engine::{
    load_snapshot, save_snapshot, BackendKind, BackendTable, BatchRequest, BatchResponse,
    BatchTelemetry, CacheEntryStats, CacheStats, Clock, DecompositionCache, DeployError,
    DeployReport, EngineBuilder, ExecutionEngine, FaultKind, FaultPlan, FaultRecord, FaultSite,
    FaultyBackend, Generation, GroupTelemetry, LoadOutcome, MatmulPlan, MockClock, MonotonicClock,
    OverloadPolicy, PrepStats, PreparedSeries, PreparedShard, PreparedTerm, ResponseHandle,
    ServingEngine, ServingError, ServingStats, ShardPolicy, ShardTelemetry, ShardedEngine,
    ShardedSeries, ShardedTelemetry, SnapshotStats, TermPlan, TickerHandle, WeightStore,
};
pub use series::{series_gemm, series_gemm_into, DecompositionReport, TasdSeries};

/// Result alias re-exported from the tensor substrate.
pub type Result<T> = tasd_tensor::Result<T>;

//! Pattern-composition algebra: which effective N:M patterns a structured-sparse
//! accelerator can serve once TASD chaining is allowed (paper Table 2).
//!
//! A VEGETA-style engine natively supports {1:8, 2:8, 4:8}. With TASD and up to two terms,
//! any density expressible as the sum of two supported N values becomes available (e.g.
//! 5:8 = 4:8 + 1:8), which is how the paper reaches 7 of the 8 possible N:8 patterns.

use crate::config::TasdConfig;
use serde::{Deserialize, Serialize};
use tasd_tensor::NmPattern;

/// The set of N:M patterns a hardware design supports natively, all sharing one block size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternMenu {
    m: usize,
    /// Natively supported N values, sorted ascending, deduplicated.
    supported_n: Vec<usize>,
    /// Whether the design can also run the operand densely (all designs in the paper can).
    supports_dense: bool,
}

impl PatternMenu {
    /// Creates a menu from the native N values for block size `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or any `n` is zero or exceeds `m`.
    pub fn new(m: usize, native_n: &[usize], supports_dense: bool) -> Self {
        assert!(m > 0, "block size must be positive");
        let mut supported_n: Vec<usize> = native_n.to_vec();
        for &n in &supported_n {
            assert!(n > 0 && n <= m, "native pattern {n}:{m} is invalid");
        }
        supported_n.sort_unstable();
        supported_n.dedup();
        PatternMenu {
            m,
            supported_n,
            supports_dense,
        }
    }

    /// The menu of an NVIDIA-STC-like design: 2:4 plus dense.
    pub fn stc_m4() -> Self {
        PatternMenu::new(4, &[2], true)
    }

    /// An STC-style design widened to M=8: 4:8 plus dense.
    pub fn stc_m8() -> Self {
        PatternMenu::new(8, &[4], true)
    }

    /// The menu of a VEGETA-like design with M=4: 1:4 and 2:4 plus dense.
    pub fn vegeta_m4() -> Self {
        PatternMenu::new(4, &[1, 2], true)
    }

    /// The menu of a VEGETA-like design with M=8: 1:8, 2:8 and 4:8 plus dense (paper Table 2).
    pub fn vegeta_m8() -> Self {
        PatternMenu::new(8, &[1, 2, 4], true)
    }

    /// Block size M shared by all patterns of this menu.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The natively supported N values (ascending).
    pub fn native_n(&self) -> &[usize] {
        &self.supported_n
    }

    /// Whether dense execution is available.
    pub fn supports_dense(&self) -> bool {
        self.supports_dense
    }

    /// Native patterns as [`NmPattern`]s (excluding dense).
    pub fn native_patterns(&self) -> Vec<NmPattern> {
        self.supported_n
            .iter()
            .map(|&n| NmPattern::new(n, self.m).expect("validated at construction"))
            .collect()
    }

    /// All TASD configurations of at most `max_terms` native terms (order matters for
    /// execution but not for coverage, so terms are emitted in descending N — the greedy
    /// order the decomposition uses).
    pub fn configurations(&self, max_terms: usize) -> Vec<TasdConfig> {
        let mut configs = Vec::new();
        if self.supports_dense {
            configs.push(TasdConfig::dense(self.m));
        }
        let native = self.native_patterns();
        // Multisets of native patterns of size 1..=max_terms, descending N order.
        let mut stack: Vec<Vec<NmPattern>> = vec![Vec::new()];
        for _ in 0..max_terms {
            let mut next = Vec::new();
            for prefix in &stack {
                let start_n = prefix.last().map_or(usize::MAX, |p| p.n());
                for &pat in native.iter().rev() {
                    if pat.n() <= start_n {
                        let mut ext = prefix.clone();
                        ext.push(pat);
                        next.push(ext);
                    }
                }
            }
            for combo in &next {
                let total_n: usize = combo.iter().map(NmPattern::n).sum();
                if total_n <= self.m {
                    configs.push(TasdConfig::new(combo.clone()));
                }
            }
            stack = next;
        }
        configs.sort();
        configs.dedup();
        // Two configurations with the same effective density behave identically on the
        // PE array (e.g. 1:8+1:8 vs 2:8), but the longer series costs an extra
        // decomposition pass and extra output-tile traffic — and a single native term can
        // be honoured even by hardware without TASD units. Keep only the shortest series
        // per effective density.
        configs.sort_by(|a, b| {
            a.kept_density()
                .partial_cmp(&b.kept_density())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.order().cmp(&b.order()))
        });
        configs.dedup_by(|a, b| (a.kept_density() - b.kept_density()).abs() < 1e-12);
        configs
    }

    /// For each target pattern `n:m` (n in `1..=m`), the cheapest TASD series (fewest
    /// terms) of native patterns whose N values sum to exactly `n`, using at most
    /// `max_terms` terms. This reproduces the paper's Table 2.
    pub fn compose_table(&self, max_terms: usize) -> Vec<ComposedPattern> {
        compose_pattern_table(self, max_terms)
    }

    /// The best (largest effective N) configuration with at most `max_terms` terms whose
    /// effective density does not exceed `max_density`. Returns `None` when even the
    /// sparsest native pattern exceeds the bound.
    pub fn densest_config_within(&self, max_density: f64, max_terms: usize) -> Option<TasdConfig> {
        let mut best: Option<TasdConfig> = None;
        for cfg in self.configurations(max_terms) {
            if cfg.is_dense() {
                if max_density >= 1.0 {
                    return Some(cfg);
                }
                continue;
            }
            if cfg.kept_density() <= max_density + 1e-12 {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        cfg.kept_density() > b.kept_density()
                            || (cfg.kept_density() == b.kept_density() && cfg.order() < b.order())
                    }
                };
                if better {
                    best = Some(cfg);
                }
            }
        }
        best
    }
}

/// One row of the pattern-composition table: a target N:M pattern and how (or whether) it
/// can be served by a TASD series over the menu's native patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComposedPattern {
    /// The target effective pattern.
    pub target: NmPattern,
    /// The series achieving it, or `None` if it cannot be composed within the term limit.
    pub series: Option<TasdConfig>,
}

impl ComposedPattern {
    /// Whether the target can be served.
    pub fn is_supported(&self) -> bool {
        self.series.is_some()
    }
}

/// Computes the composition table for every target `n:m`, `n = 1..=m` (paper Table 2).
///
/// The dense target `m:m` is reported as supported via dense execution when the menu
/// allows it.
pub fn compose_pattern_table(menu: &PatternMenu, max_terms: usize) -> Vec<ComposedPattern> {
    let m = menu.m();
    (1..=m)
        .map(|target_n| {
            let target = NmPattern::new(target_n, m).expect("1..=m is valid");
            let series = if target_n == m && menu.supports_dense() {
                Some(TasdConfig::dense(m))
            } else {
                cheapest_sum(menu.native_n(), target_n, max_terms).map(|ns| {
                    TasdConfig::new(
                        ns.iter()
                            .map(|&n| NmPattern::new(n, m).expect("native n validated"))
                            .collect(),
                    )
                })
            };
            ComposedPattern { target, series }
        })
        .collect()
}

/// Finds the shortest multiset of values from `candidates` summing exactly to `target`,
/// using at most `max_terms` values. Larger values are preferred first so the returned
/// series matches the greedy decomposition order (e.g. 6 = 4 + 2, not 2 + 2 + 2).
fn cheapest_sum(candidates: &[usize], target: usize, max_terms: usize) -> Option<Vec<usize>> {
    fn rec(
        candidates: &[usize],
        target: usize,
        remaining_terms: usize,
        max_value: usize,
    ) -> Option<Vec<usize>> {
        if target == 0 {
            return Some(Vec::new());
        }
        if remaining_terms == 0 {
            return None;
        }
        for &c in candidates.iter().rev() {
            if c <= target && c <= max_value {
                if let Some(mut rest) = rec(candidates, target - c, remaining_terms - 1, c) {
                    rest.insert(0, c);
                    return Some(rest);
                }
            }
        }
        None
    }
    // Try shorter series first so the result uses the fewest terms.
    for terms in 1..=max_terms {
        if let Some(r) = rec(candidates, target, terms, usize::MAX) {
            if r.len() == terms {
                return Some(r);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_vegeta_m8_with_two_terms() {
        // Paper Table 2: with {1:8, 2:8, 4:8} and <=2 TASD terms, every N:8 except 7:8 is
        // supported; 8:8 is dense.
        let menu = PatternMenu::vegeta_m8();
        let table = menu.compose_table(2);
        let expect: &[(usize, Option<&str>)] = &[
            (1, Some("1:8")),
            (2, Some("2:8")),
            (3, Some("2:8+1:8")),
            (4, Some("4:8")),
            (5, Some("4:8+1:8")),
            (6, Some("4:8+2:8")),
            (7, None),
            (8, Some("8:8")),
        ];
        for (row, &(n, series)) in table.iter().zip(expect) {
            assert_eq!(row.target.n(), n);
            match series {
                Some(s) => {
                    assert_eq!(
                        row.series.as_ref().map(|c| c.to_string()),
                        Some(s.to_string()),
                        "target {n}:8"
                    );
                }
                None => assert!(!row.is_supported(), "target {n}:8 should be unsupported"),
            }
        }
        assert_eq!(table.iter().filter(|r| r.is_supported()).count(), 7);
    }

    #[test]
    fn table2_with_three_terms_covers_7_of_8() {
        let menu = PatternMenu::vegeta_m8();
        let table = menu.compose_table(3);
        let seven = table.iter().find(|r| r.target.n() == 7).unwrap();
        assert_eq!(
            seven.series.as_ref().map(|c| c.to_string()),
            Some("4:8+2:8+1:8".to_string())
        );
        assert!(table.iter().all(ComposedPattern::is_supported));
    }

    #[test]
    fn stc_m4_limited_menu() {
        let menu = PatternMenu::stc_m4();
        let table = menu.compose_table(2);
        // Only 2:4 (native), 4:4 (dense via 2+2 or dense) are reachable; 1:4 and 3:4 are not.
        assert!(!table[0].is_supported()); // 1:4
        assert!(table[1].is_supported()); // 2:4
        assert!(!table[2].is_supported()); // 3:4
        assert!(table[3].is_supported()); // 4:4
    }

    #[test]
    fn vegeta_m4_reaches_three_quarters() {
        let menu = PatternMenu::vegeta_m4();
        let table = menu.compose_table(2);
        let three = table.iter().find(|r| r.target.n() == 3).unwrap();
        assert_eq!(
            three.series.as_ref().map(|c| c.to_string()),
            Some("2:4+1:4".to_string())
        );
    }

    #[test]
    fn configurations_respect_term_and_density_limits() {
        let menu = PatternMenu::vegeta_m8();
        let cfgs = menu.configurations(2);
        assert!(cfgs.iter().all(|c| c.order() <= 2 || c.is_dense()));
        // No configuration keeps more than the full block.
        assert!(cfgs
            .iter()
            .all(|c| c.terms().iter().map(NmPattern::n).sum::<usize>() <= 8));
        // The dense configuration is present exactly once.
        assert_eq!(cfgs.iter().filter(|c| c.is_dense()).count(), 1);
        // 4:8+1:8 must be among them.
        assert!(cfgs.iter().any(|c| c.to_string() == "4:8+1:8"));
    }

    #[test]
    fn densest_config_within_budget() {
        let menu = PatternMenu::vegeta_m8();
        // Budget 70% density: best is 5/8 = 62.5% via 4:8+1:8.
        let best = menu.densest_config_within(0.70, 2).unwrap();
        assert_eq!(best.to_string(), "4:8+1:8");
        // Budget 100%: dense.
        assert!(menu.densest_config_within(1.0, 2).unwrap().is_dense());
        // Budget 10%: even 1:8 (12.5%) is too dense.
        assert!(menu.densest_config_within(0.10, 2).is_none());
        // Budget 12.5% exactly admits 1:8.
        assert_eq!(
            menu.densest_config_within(0.125, 2).unwrap().to_string(),
            "1:8"
        );
    }

    #[test]
    fn cheapest_sum_prefers_fewest_then_largest_terms() {
        assert_eq!(cheapest_sum(&[1, 2, 4], 6, 2), Some(vec![4, 2]));
        assert_eq!(cheapest_sum(&[1, 2, 4], 4, 2), Some(vec![4]));
        assert_eq!(cheapest_sum(&[1, 2, 4], 7, 2), None);
        assert_eq!(cheapest_sum(&[1, 2, 4], 7, 3), Some(vec![4, 2, 1]));
        assert_eq!(cheapest_sum(&[2], 3, 4), None);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn menu_rejects_invalid_native_pattern() {
        let _ = PatternMenu::new(4, &[5], true);
    }
}

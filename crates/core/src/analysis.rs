//! Synthetic-data analyses of TASD quality (paper Appendix A, Figures 17 and 18).
//!
//! These routines generate the same kinds of synthetic matrices the paper uses (128×128
//! normal-distributed with varying density; 256×256 uniform for the matmul study) and
//! report dropped-non-zero / dropped-magnitude fractions and matrix-multiplication error as
//! a function of the TASD configuration.

use crate::config::TasdConfig;
use crate::decompose::decompose;
use crate::series::series_gemm;
use serde::{Deserialize, Serialize};
use tasd_tensor::{gemm, relative_frobenius_error, MatrixGenerator, NmPattern};

/// Value distribution used to synthesize test matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueDistribution {
    /// Non-zeros drawn uniformly from `[0, 1)`.
    Uniform,
    /// Non-zeros drawn from a normal distribution with mean 0 and standard deviation 1/3
    /// (the distribution used for the paper's Figure 17).
    Normal,
}

/// One data point of the drop-fraction study (paper Fig. 17).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropAnalysisPoint {
    /// Density of the original synthetic matrix (1 - sparsity).
    pub original_density: f64,
    /// Configuration evaluated.
    pub config: TasdConfig,
    /// Percentage (0–100) of original non-zeros dropped by the series.
    pub dropped_nonzeros_pct: f64,
    /// Percentage (0–100) of original total magnitude dropped by the series.
    pub dropped_magnitude_pct: f64,
    /// Mean squared error between the original and reconstructed matrices.
    pub mse: f64,
}

/// Runs the drop-fraction study: for each density and each TASD configuration, decompose a
/// synthetic `size × size` matrix and measure what was lost.
///
/// The paper uses `size = 128`, densities 0.1–0.75, and the three series
/// `2:4`, `2:4+2:8`, `2:4+2:8+2:16`.
pub fn drop_analysis(
    size: usize,
    densities: &[f64],
    configs: &[TasdConfig],
    distribution: ValueDistribution,
    seed: u64,
) -> Vec<DropAnalysisPoint> {
    let mut points = Vec::with_capacity(densities.len() * configs.len());
    for (di, &density) in densities.iter().enumerate() {
        let sparsity = 1.0 - density.clamp(0.0, 1.0);
        let mut gen = MatrixGenerator::seeded(seed.wrapping_add(di as u64));
        let a = match distribution {
            ValueDistribution::Uniform => gen.sparse_uniform(size, size, sparsity),
            ValueDistribution::Normal => gen.sparse_normal(size, size, sparsity),
        };
        for config in configs {
            let series = decompose(&a, config);
            let report = series.report(&a);
            let approx = series.reconstruct();
            points.push(DropAnalysisPoint {
                original_density: density,
                config: config.clone(),
                dropped_nonzeros_pct: report.dropped_nonzero_fraction * 100.0,
                dropped_magnitude_pct: report.dropped_magnitude_fraction * 100.0,
                mse: tasd_tensor::mean_squared_error(&a, &approx),
            });
        }
    }
    points
}

/// One data point of the matrix-multiplication error study (paper Fig. 18).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatmulErrorPoint {
    /// Unstructured sparsity degree of the original operand `A`.
    pub a_sparsity: f64,
    /// Block size M of the single-term configuration swept.
    pub block_m: usize,
    /// N of the configuration (1..=M).
    pub n: usize,
    /// Approximated sparsity of the configuration, `1 - n/m`.
    pub approximated_sparsity: f64,
    /// Relative Frobenius error `||(A - A*)B|| / ||AB||`.
    pub error: f64,
}

/// Runs the matrix-multiplication error study: `A` (size×size, uniform values, given
/// unstructured sparsity) is approximated with every single-term `n:m` configuration for
/// `n = 1..=m`, multiplied with a dense `B`, and the relative Frobenius error of the
/// product is reported.
///
/// The paper uses `size = 256`, sparsities {0.2, 0.8} and `m ∈ {4, 8}`.
pub fn matmul_error_analysis(
    size: usize,
    a_sparsities: &[f64],
    block_ms: &[usize],
    seed: u64,
) -> Vec<MatmulErrorPoint> {
    let mut points = Vec::new();
    for (si, &a_sparsity) in a_sparsities.iter().enumerate() {
        let mut gen = MatrixGenerator::seeded(seed.wrapping_add(1000 * si as u64));
        let a = gen.sparse_uniform(size, size, a_sparsity);
        let b = gen.uniform(size, size, 0.0, 1.0);
        let exact = gemm(&a, &b).expect("square operands");
        for &m in block_ms {
            for n in 1..=m {
                let pattern = NmPattern::new(n, m).expect("n <= m");
                let config = TasdConfig::single(pattern);
                let series = decompose(&a, &config);
                let approx = series_gemm(&series, &b).expect("square operands");
                points.push(MatmulErrorPoint {
                    a_sparsity,
                    block_m: m,
                    n,
                    approximated_sparsity: pattern.approximated_sparsity(),
                    error: relative_frobenius_error(&exact, &approx),
                });
            }
        }
    }
    points
}

/// Convenience: the three TASD series used throughout the paper's Appendix A
/// (`2:4`, `2:4+2:8`, `2:4+2:8+2:16`).
pub fn appendix_a_configs() -> Vec<TasdConfig> {
    vec![
        TasdConfig::parse("2:4").expect("valid"),
        TasdConfig::parse("2:4+2:8").expect("valid"),
        TasdConfig::parse("2:4+2:8+2:16").expect("valid"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_analysis_trends_match_paper() {
        let configs = appendix_a_configs();
        let densities = [0.1, 0.3, 0.5, 0.75];
        let points = drop_analysis(128, &densities, &configs, ValueDistribution::Normal, 7);
        assert_eq!(points.len(), densities.len() * configs.len());

        // Takeaway 1: at low density, even two terms drop < 1% of non-zeros.
        let low_density_two_terms = points
            .iter()
            .find(|p| p.original_density == 0.1 && p.config == configs[1])
            .unwrap();
        assert!(
            low_density_two_terms.dropped_nonzeros_pct < 1.0,
            "dropped {}%",
            low_density_two_terms.dropped_nonzeros_pct
        );

        // Takeaway 2: dropped magnitude <= dropped non-zeros (greedy keeps the largest).
        for p in &points {
            assert!(p.dropped_magnitude_pct <= p.dropped_nonzeros_pct + 1e-9);
        }

        // More terms always drop (weakly) less at any given density.
        for &d in &densities {
            let by_cfg: Vec<f64> = configs
                .iter()
                .map(|c| {
                    points
                        .iter()
                        .find(|p| p.original_density == d && &p.config == c)
                        .unwrap()
                        .dropped_nonzeros_pct
                })
                .collect();
            assert!(by_cfg[0] >= by_cfg[1] - 1e-9 && by_cfg[1] >= by_cfg[2] - 1e-9);
        }

        // Drops grow with density for a fixed configuration.
        let one_term: Vec<f64> = densities
            .iter()
            .map(|&d| {
                points
                    .iter()
                    .find(|p| p.original_density == d && p.config == configs[0])
                    .unwrap()
                    .dropped_nonzeros_pct
            })
            .collect();
        assert!(one_term.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    fn matmul_error_trends_match_paper() {
        let points = matmul_error_analysis(128, &[0.2, 0.8], &[4, 8], 11);
        // Error shrinks as approximated sparsity shrinks (denser approximations).
        for &(s, m) in &[(0.2, 4usize), (0.8, 8usize)] {
            let mut errs: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.a_sparsity == s && p.block_m == m)
                .map(|p| (p.approximated_sparsity, p.error))
                .collect();
            errs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            assert!(
                errs.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-6),
                "error should grow with approximated sparsity for s={s} m={m}"
            );
        }
        // Sparser A yields smaller error at equal approximated sparsity and block size.
        for n in 1..=4usize {
            let e20 = points
                .iter()
                .find(|p| p.a_sparsity == 0.2 && p.block_m == 4 && p.n == n)
                .unwrap()
                .error;
            let e80 = points
                .iter()
                .find(|p| p.a_sparsity == 0.8 && p.block_m == 4 && p.n == n)
                .unwrap()
                .error;
            assert!(
                e80 <= e20 + 1e-6,
                "n={n}: sparse-A error {e80} vs dense-A {e20}"
            );
        }
        // N:8 is more expressive than N:4 at the same approximated sparsity (e.g. 2:8 vs 1:4).
        let e_1_4 = points
            .iter()
            .find(|p| p.a_sparsity == 0.8 && p.block_m == 4 && p.n == 1)
            .unwrap()
            .error;
        let e_2_8 = points
            .iter()
            .find(|p| p.a_sparsity == 0.8 && p.block_m == 8 && p.n == 2)
            .unwrap()
            .error;
        assert!(
            e_2_8 <= e_1_4 + 1e-6,
            "2:8 ({e_2_8}) should beat 1:4 ({e_1_4})"
        );
        // A full-density view (n == m) is lossless.
        assert!(points
            .iter()
            .filter(|p| p.n == p.block_m)
            .all(|p| p.error < 1e-6));
    }

    #[test]
    fn appendix_a_config_list() {
        let cfgs = appendix_a_configs();
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[2].order(), 3);
    }
}

//! The TASD series: a sum of compressed structured terms, and GEMM over it.

use crate::config::TasdConfig;
use serde::{Deserialize, Serialize};
use tasd_tensor::{
    dropped_magnitude_fraction, dropped_nonzero_fraction, relative_frobenius_error, Matrix,
    NmCompressed, Result,
};

/// A decomposed tensor: an ordered list of N:M compressed terms whose sum approximates the
/// original matrix.
///
/// Produced by [`crate::decompose`]; consumed by [`series_gemm`] (software execution) and by
/// the accelerator model (which costs each structured term separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TasdSeries {
    shape: (usize, usize),
    config: TasdConfig,
    terms: Vec<NmCompressed>,
}

impl TasdSeries {
    /// Assembles a series from its parts. Normally you want [`crate::decompose`] instead.
    pub fn new(shape: (usize, usize), config: TasdConfig, terms: Vec<NmCompressed>) -> Self {
        TasdSeries {
            shape,
            config,
            terms,
        }
    }

    /// Shape of the original (and reconstructed) matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// The configuration this series was produced with.
    pub fn config(&self) -> &TasdConfig {
        &self.config
    }

    /// The compressed structured terms, in order.
    pub fn terms(&self) -> &[NmCompressed] {
        &self.terms
    }

    /// Number of terms actually materialized (may be fewer than the configuration's order
    /// when the residual emptied early).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total non-zeros stored across all terms.
    pub fn nnz(&self) -> usize {
        self.terms.iter().map(NmCompressed::nnz).sum()
    }

    /// Reconstructs the (approximate) dense matrix `Σᵢ Aᵢ`.
    pub fn reconstruct(&self) -> Matrix {
        let mut out = Matrix::zeros(self.shape.0, self.shape.1);
        for term in &self.terms {
            let dense = term.to_dense();
            out = out.try_add(&dense).expect("terms share the series shape");
        }
        out
    }

    /// Total effectual MACs of `self * B` where `B` has `n_cols` columns: one MAC per
    /// stored value per output column, summed over terms.
    pub fn effectual_macs(&self, n_cols: usize) -> u64 {
        self.terms.iter().map(|t| t.effectual_macs(n_cols)).sum()
    }

    /// Compressed storage footprint in bytes across all terms.
    pub fn storage_bytes(&self) -> usize {
        self.terms.iter().map(NmCompressed::storage_bytes).sum()
    }

    /// Builds the quality report of this series against the original matrix it was
    /// decomposed from.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different shape from the series.
    pub fn report(&self, original: &Matrix) -> DecompositionReport {
        assert_eq!(
            original.shape(),
            self.shape,
            "report requires the original matrix"
        );
        let approx = self.reconstruct();
        DecompositionReport {
            config: self.config.clone(),
            original_nonzeros: original.count_nonzeros(),
            kept_nonzeros: self.nnz(),
            dropped_nonzero_fraction: dropped_nonzero_fraction(original, &approx),
            dropped_magnitude_fraction: dropped_magnitude_fraction(original, &approx),
            relative_frobenius_error: relative_frobenius_error(original, &approx),
        }
    }
}

/// Quality metrics of a decomposition relative to the original matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecompositionReport {
    /// Configuration used.
    pub config: TasdConfig,
    /// Non-zeros in the original matrix.
    pub original_nonzeros: usize,
    /// Non-zeros kept across all series terms.
    pub kept_nonzeros: usize,
    /// Fraction of original non-zeros that were dropped (paper Fig. 17 left axis).
    pub dropped_nonzero_fraction: f64,
    /// Fraction of original total magnitude that was dropped (paper Fig. 17 right axis).
    pub dropped_magnitude_fraction: f64,
    /// `||A - Â||_F / ||A||_F`.
    pub relative_frobenius_error: f64,
}

/// Approximated matrix multiplication `C ≈ A·B` executed term-by-term over a decomposed
/// `A` (paper §3.2): `C = Σᵢ Aᵢ·B`, each term a structured sparse GEMM.
///
/// This is a thin back-compat wrapper over the process-wide
/// [`ExecutionEngine`](crate::ExecutionEngine): each term dispatches through the planned
/// [`GemmBackend`](tasd_tensor::GemmBackend), never to a format-specific kernel directly.
/// Build your own engine for control over backend choice, caching, and parallelism.
///
/// # Errors
///
/// Returns [`tasd_tensor::TensorError::ShapeMismatch`] if `B`'s row count does not match
/// the series' column count.
///
/// # Example
///
/// ```
/// use tasd::{decompose, series_gemm, TasdConfig};
/// use tasd_tensor::{gemm, relative_frobenius_error, Matrix, MatrixGenerator};
///
/// let mut gen = MatrixGenerator::seeded(1);
/// let a = gen.sparse_normal(32, 32, 0.8);
/// let b = gen.normal(32, 16, 0.0, 1.0);
/// let series = decompose(&a, &TasdConfig::parse("2:4+2:8").unwrap());
/// let c_approx = series_gemm(&series, &b).unwrap();
/// let c_exact = gemm(&a, &b).unwrap();
/// assert!(relative_frobenius_error(&c_exact, &c_approx) < 0.25);
/// ```
pub fn series_gemm(series: &TasdSeries, b: &Matrix) -> Result<Matrix> {
    crate::engine::ExecutionEngine::global().series_gemm(series, b)
}

/// Accumulating variant of [`series_gemm`]: `C += Σᵢ Aᵢ·B`, dispatched through the
/// process-wide [`ExecutionEngine`](crate::ExecutionEngine).
///
/// This mirrors the hardware dataflow: the C tile stays stationary while successive
/// decomposed A tiles stream through (paper Fig. 11).
///
/// # Errors
///
/// Returns [`tasd_tensor::TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn series_gemm_into(series: &TasdSeries, b: &Matrix, c: &mut Matrix) -> Result<()> {
    crate::engine::ExecutionEngine::global().series_gemm_into(series, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, decompose_with_residual};
    use tasd_tensor::{gemm, MatrixGenerator};

    #[test]
    fn series_gemm_equals_gemm_of_reconstruction() {
        let mut gen = MatrixGenerator::seeded(2);
        let a = gen.sparse_normal(24, 40, 0.6);
        let b = gen.normal(40, 8, 0.0, 1.0);
        let series = decompose(&a, &TasdConfig::parse("2:4+2:8").unwrap());
        let via_series = series_gemm(&series, &b).unwrap();
        let via_dense = gemm(&series.reconstruct(), &b).unwrap();
        assert!(via_series.approx_eq(&via_dense, 1e-3));
    }

    #[test]
    fn lossless_series_gemm_is_exact() {
        let mut gen = MatrixGenerator::seeded(4);
        // 87.5%+ sparse: 1:8 + 1:8 + ... may still drop; use a config that saturates blocks.
        let a = gen.sparse_normal(16, 32, 0.9);
        let b = gen.normal(32, 8, 0.0, 1.0);
        let cfg = TasdConfig::parse("4:8+4:8").unwrap();
        let (series, residual) = decompose_with_residual(&a, &cfg);
        if residual.count_nonzeros() == 0 {
            let exact = gemm(&a, &b).unwrap();
            let approx = series_gemm(&series, &b).unwrap();
            assert!(approx.approx_eq(&exact, 1e-3));
        }
    }

    #[test]
    fn gemm_error_decreases_with_more_terms() {
        let mut gen = MatrixGenerator::seeded(8);
        let a = gen.sparse_uniform(64, 64, 0.5);
        let b = gen.uniform(64, 32, 0.0, 1.0);
        let exact = gemm(&a, &b).unwrap();
        let mut last_err = f64::INFINITY;
        for cfg in ["2:4", "2:4+2:8", "2:4+2:8+2:16"] {
            let series = decompose(&a, &TasdConfig::parse(cfg).unwrap());
            let err = relative_frobenius_error(&exact, &series_gemm(&series, &b).unwrap());
            assert!(err <= last_err + 1e-9, "error grew at {cfg}");
            last_err = err;
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(4, 8);
        let series = decompose(&a, &TasdConfig::parse("2:4").unwrap());
        assert!(series_gemm(&series, &Matrix::zeros(4, 4)).is_err());
        let b = Matrix::zeros(8, 4);
        let mut bad = Matrix::zeros(3, 4);
        assert!(series_gemm_into(&series, &b, &mut bad).is_err());
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut gen = MatrixGenerator::seeded(12);
        let a = gen.sparse_normal(32, 64, 0.7);
        let cfg = TasdConfig::parse("2:8").unwrap();
        let series = decompose(&a, &cfg);
        let report = series.report(&a);
        assert_eq!(report.config, cfg);
        assert_eq!(report.original_nonzeros, a.count_nonzeros());
        assert_eq!(report.kept_nonzeros, series.nnz());
        let expected_drop = 1.0 - report.kept_nonzeros as f64 / report.original_nonzeros as f64;
        assert!((report.dropped_nonzero_fraction - expected_drop).abs() < 1e-9);
        // Greedy extraction: magnitude loss never exceeds count loss.
        assert!(report.dropped_magnitude_fraction <= report.dropped_nonzero_fraction + 1e-12);
        assert!(report.relative_frobenius_error >= 0.0);
    }

    #[test]
    fn effectual_macs_and_storage_sum_over_terms() {
        let mut gen = MatrixGenerator::seeded(14);
        let a = gen.sparse_normal(16, 32, 0.3);
        let series = decompose(&a, &TasdConfig::parse("2:8+1:8").unwrap());
        let nnz: usize = series.terms().iter().map(|t| t.nnz()).sum();
        assert_eq!(series.nnz(), nnz);
        assert_eq!(series.effectual_macs(10), nnz as u64 * 10);
        assert!(series.storage_bytes() >= nnz * 4);
    }

    #[test]
    fn empty_series_gemm_is_zero() {
        let a = Matrix::filled(4, 8, 1.0);
        let series = decompose(&a, &TasdConfig::new(Vec::new()));
        let b = Matrix::filled(8, 2, 1.0);
        let c = series_gemm(&series, &b).unwrap();
        assert_eq!(c, Matrix::zeros(4, 2));
    }
}

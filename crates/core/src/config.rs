//! TASD series configurations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use tasd_tensor::{NmPattern, TensorError};

/// A TASD series configuration: the ordered list of N:M patterns applied to successive
/// residuals (paper §3.1).
///
/// The first pattern is applied to the original tensor, the second to the first residual,
/// and so on. The paper calls the number of terms the *order* of the series.
///
/// # Example
///
/// ```
/// use tasd::TasdConfig;
///
/// let cfg = TasdConfig::parse("2:4+2:8").unwrap();
/// assert_eq!(cfg.order(), 2);
/// assert_eq!(cfg.to_string(), "2:4+2:8");
/// // A 2:4 term keeps 50% and the 2:8 term keeps another 25%.
/// assert_eq!(cfg.kept_density(), 0.75);
/// assert_eq!(cfg.approximated_sparsity(), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct TasdConfig {
    terms: Vec<NmPattern>,
}

impl TasdConfig {
    /// Creates a configuration from an ordered list of patterns.
    ///
    /// An empty list is allowed and denotes "drop the whole tensor" (order 0); it is useful
    /// as a degenerate baseline but rarely what you want.
    pub fn new(terms: Vec<NmPattern>) -> Self {
        TasdConfig { terms }
    }

    /// Creates a single-term configuration.
    pub fn single(pattern: NmPattern) -> Self {
        TasdConfig {
            terms: vec![pattern],
        }
    }

    /// The identity configuration for block size `m`: a dense `m:m` "pattern" that keeps
    /// everything (used to represent running a layer densely).
    pub fn dense(m: usize) -> Self {
        TasdConfig {
            terms: vec![NmPattern::new(m, m).expect("m:m is always valid")],
        }
    }

    /// Parses a configuration from a string such as `"2:4"`, `"2:4+2:8"` or
    /// `"4:8+2:8+1:8"`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPattern`] if any term is malformed.
    pub fn parse(s: &str) -> Result<Self, TensorError> {
        s.parse()
    }

    /// The patterns of the series, in application order.
    pub fn terms(&self) -> &[NmPattern] {
        &self.terms
    }

    /// Number of terms (the order of the series).
    pub fn order(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the configuration has no terms (approximates everything to zero).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the first term already keeps every element (dense execution).
    pub fn is_dense(&self) -> bool {
        self.terms.first().is_some_and(|p| p.is_dense())
    }

    /// Upper bound on the fraction of elements the whole series can keep: `Σ nᵢ/mᵢ`,
    /// clamped to 1. For a tensor dense enough to saturate every term this is exact.
    pub fn kept_density(&self) -> f64 {
        self.terms
            .iter()
            .map(NmPattern::density)
            .sum::<f64>()
            .min(1.0)
    }

    /// The *approximated sparsity* of the configuration (paper §5.3 / Fig. 14 x-axis):
    /// `1 - kept_density`. Both `1:4` and `2:8` have approximated sparsity 0.75; the
    /// series `4:8+1:8` has 0.375.
    pub fn approximated_sparsity(&self) -> f64 {
        1.0 - self.kept_density()
    }

    /// The fraction of MACs a structured accelerator would execute for an operand
    /// saturating this configuration, relative to dense execution. Identical to
    /// [`TasdConfig::kept_density`], provided for readability at call sites that reason
    /// about compute.
    pub fn compute_fraction(&self) -> f64 {
        self.kept_density()
    }

    /// Appends another term to the series, returning the extended configuration.
    #[must_use]
    pub fn with_term(&self, pattern: NmPattern) -> Self {
        let mut terms = self.terms.clone();
        terms.push(pattern);
        TasdConfig { terms }
    }

    /// The sum of N across terms that share the same block size M, if all terms use the
    /// same M. This is the "effective N:M" of the series (e.g. `4:8+1:8` behaves like 5:8);
    /// returns `None` when terms mix block sizes.
    pub fn effective_pattern(&self) -> Option<NmPattern> {
        let m = self.terms.first()?.m();
        if self.terms.iter().any(|p| p.m() != m) {
            return None;
        }
        let n: usize = self.terms.iter().map(NmPattern::n).sum();
        NmPattern::new(n.min(m), m).ok()
    }
}

impl fmt::Display for TasdConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "none");
        }
        let parts: Vec<String> = self.terms.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join("+"))
    }
}

impl FromStr for TasdConfig {
    type Err = TensorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(TasdConfig::new(Vec::new()));
        }
        let mut terms = Vec::new();
        for part in s.split('+') {
            let part = part.trim();
            let (n_str, m_str) = part
                .split_once(':')
                .ok_or(TensorError::InvalidPattern { n: 0, m: 0 })?;
            let n: usize = n_str
                .trim()
                .parse()
                .map_err(|_| TensorError::InvalidPattern { n: 0, m: 0 })?;
            let m: usize = m_str
                .trim()
                .parse()
                .map_err(|_| TensorError::InvalidPattern { n: 0, m: 0 })?;
            terms.push(NmPattern::new(n, m)?);
        }
        Ok(TasdConfig::new(terms))
    }
}

impl From<NmPattern> for TasdConfig {
    fn from(p: NmPattern) -> Self {
        TasdConfig::single(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["2:4", "2:4+2:8", "4:8+2:8+1:8", "1:16"] {
            let cfg = TasdConfig::parse(s).unwrap();
            assert_eq!(cfg.to_string(), s);
        }
        assert_eq!(TasdConfig::parse("none").unwrap().order(), 0);
        assert_eq!(TasdConfig::parse("").unwrap().to_string(), "none");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(TasdConfig::parse("2-4").is_err());
        assert!(TasdConfig::parse("a:4").is_err());
        assert!(TasdConfig::parse("5:4").is_err());
        assert!(TasdConfig::parse("2:4+").is_err());
    }

    #[test]
    fn densities_accumulate_across_terms() {
        let cfg = TasdConfig::parse("2:4+2:8").unwrap();
        assert!((cfg.kept_density() - 0.75).abs() < 1e-12);
        assert!((cfg.approximated_sparsity() - 0.25).abs() < 1e-12);
        let cfg3 = TasdConfig::parse("2:4+2:8+2:16").unwrap();
        assert!((cfg3.kept_density() - 0.875).abs() < 1e-12);
        // Saturating configurations clamp to 1.
        let all = TasdConfig::parse("4:4+4:4").unwrap();
        assert_eq!(all.kept_density(), 1.0);
    }

    #[test]
    fn dense_and_empty_configs() {
        let dense = TasdConfig::dense(8);
        assert!(dense.is_dense());
        assert_eq!(dense.approximated_sparsity(), 0.0);
        let none = TasdConfig::new(Vec::new());
        assert!(none.is_empty());
        assert_eq!(none.approximated_sparsity(), 1.0);
    }

    #[test]
    fn effective_pattern_for_uniform_block_sizes() {
        let cfg = TasdConfig::parse("4:8+1:8").unwrap();
        assert_eq!(cfg.effective_pattern(), Some(NmPattern::new(5, 8).unwrap()));
        let mixed = TasdConfig::parse("2:4+2:8").unwrap();
        assert_eq!(mixed.effective_pattern(), None);
        let over = TasdConfig::parse("4:8+4:8+4:8").unwrap();
        assert_eq!(
            over.effective_pattern(),
            Some(NmPattern::new(8, 8).unwrap())
        );
    }

    #[test]
    fn with_term_extends() {
        let cfg = TasdConfig::single(NmPattern::new(2, 4).unwrap());
        let ext = cfg.with_term(NmPattern::new(2, 8).unwrap());
        assert_eq!(ext.order(), 2);
        assert_eq!(cfg.order(), 1, "original untouched");
    }

    #[test]
    fn from_pattern_conversion() {
        let cfg: TasdConfig = NmPattern::new(2, 4).unwrap().into();
        assert_eq!(cfg.to_string(), "2:4");
    }
}

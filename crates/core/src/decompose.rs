//! Greedy structured decomposition of a matrix into a TASD series.

use crate::config::TasdConfig;
use crate::series::TasdSeries;
use tasd_tensor::{Matrix, NmCompressed};

/// Decomposes `matrix` into a TASD series according to `config`.
///
/// Term `i` is produced by taking the N:M view (largest-magnitude elements per block) of
/// the running residual under `config.terms()[i]`, then subtracting it to form the next
/// residual (paper Eq. 1–4 and Fig. 4). The final residual is discarded — that is exactly
/// the approximation error of the series.
///
/// # Example
///
/// ```
/// use tasd::{decompose, TasdConfig};
/// use tasd_tensor::Matrix;
///
/// // The 2x8 matrix from the paper's Figure 4.
/// let a = Matrix::from_rows(&[
///     vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 4.0, 1.0],
///     vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 1.0, 4.0],
/// ]);
/// let series = decompose(&a, &TasdConfig::parse("2:4+2:8").unwrap());
/// // With these two terms the decomposition of A happens to be lossless.
/// assert_eq!(series.reconstruct(), a);
/// ```
pub fn decompose(matrix: &Matrix, config: &TasdConfig) -> TasdSeries {
    decompose_with_residual(matrix, config).0
}

/// Like [`decompose`], but also returns the final residual (the part of `matrix` not
/// covered by any term). `matrix ==` reconstruction `+` residual always holds exactly.
pub fn decompose_with_residual(matrix: &Matrix, config: &TasdConfig) -> (TasdSeries, Matrix) {
    let mut residual = matrix.clone();
    let mut terms = Vec::with_capacity(config.order());
    for &pattern in config.terms() {
        let view = pattern.view(&residual);
        residual = residual
            .try_sub(&view)
            .expect("view has the same shape as the residual");
        let compressed = NmCompressed::from_dense_strict(&view, pattern)
            .expect("view satisfies its own pattern by construction");
        terms.push(compressed);
        if residual.count_nonzeros() == 0 {
            // Remaining terms would be all-zero; still record them? The paper treats the
            // series as fixed-length, but empty terms carry no information and no cost, so
            // we stop early. The config is preserved in the series for reporting.
            break;
        }
    }
    (
        TasdSeries::new(matrix.shape(), config.clone(), terms),
        residual,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_tensor::{
        dropped_magnitude_fraction, dropped_nonzero_fraction, sparsity_degree, MatrixGenerator,
        NmPattern,
    };

    fn paper_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 4.0, 1.0],
            vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 1.0, 4.0],
        ])
    }

    #[test]
    fn figure4_two_term_decomposition_is_lossless() {
        let a = paper_matrix();
        let cfg = TasdConfig::parse("2:4+2:8").unwrap();
        let (series, residual) = decompose_with_residual(&a, &cfg);
        assert_eq!(residual.count_nonzeros(), 0);
        assert_eq!(series.reconstruct(), a);
        assert_eq!(series.num_terms(), 2);
        // First term holds 7 non-zeros (sum 21), second the remaining 3 (sum 4).
        assert_eq!(series.terms()[0].nnz(), 7);
        assert_eq!(series.terms()[1].nnz(), 3);
        assert_eq!(series.terms()[0].to_dense().sum(), 21.0);
        assert_eq!(series.terms()[1].to_dense().sum(), 4.0);
    }

    #[test]
    fn figure4_single_term_drop_statistics() {
        let a = paper_matrix();
        let series = decompose(&a, &TasdConfig::parse("2:4").unwrap());
        let approx = series.reconstruct();
        // 2:4 view keeps 70% of the non-zeros and 84% of the magnitude (paper §3.1).
        assert!((dropped_nonzero_fraction(&a, &approx) - 0.3).abs() < 1e-9);
        assert!((dropped_magnitude_fraction(&a, &approx) - 0.16).abs() < 1e-9);
    }

    #[test]
    fn three_four_view_drops_single_nonzero() {
        let a = paper_matrix();
        let series = decompose(&a, &TasdConfig::parse("3:4").unwrap());
        let approx = series.reconstruct();
        // Paper: 3:4 drops only one non-zero, covering 90% of non-zeros and 96% of magnitude.
        assert!((dropped_nonzero_fraction(&a, &approx) - 0.1).abs() < 1e-9);
        assert!((dropped_magnitude_fraction(&a, &approx) - 0.04).abs() < 1e-9);
    }

    #[test]
    fn terms_satisfy_their_patterns_and_supports_are_disjoint() {
        let mut gen = MatrixGenerator::seeded(21);
        let a = gen.sparse_normal(32, 64, 0.4);
        let cfg = TasdConfig::parse("2:4+2:8+2:16").unwrap();
        let series = decompose(&a, &cfg);
        for (term, &pattern) in series.terms().iter().zip(cfg.terms()) {
            assert_eq!(term.pattern(), pattern);
            assert!(pattern.is_satisfied_by(&term.to_dense()));
            term.validate().unwrap();
        }
        // Supports are disjoint: element-wise at most one term is non-zero.
        let denses: Vec<Matrix> = series.terms().iter().map(|t| t.to_dense()).collect();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let nz = denses.iter().filter(|d| d[(i, j)] != 0.0).count();
                assert!(nz <= 1, "element ({i},{j}) covered by {nz} terms");
            }
        }
    }

    #[test]
    fn reconstruction_plus_residual_is_exact() {
        let mut gen = MatrixGenerator::seeded(3);
        for sparsity in [0.0, 0.3, 0.8, 0.95] {
            let a = gen.sparse_normal(24, 48, sparsity);
            let cfg = TasdConfig::parse("4:8+1:8").unwrap();
            let (series, residual) = decompose_with_residual(&a, &cfg);
            let sum = series.reconstruct().try_add(&residual).unwrap();
            assert!(sum.approx_eq(&a, 1e-6));
        }
    }

    #[test]
    fn very_sparse_matrix_decomposes_losslessly_with_one_term() {
        let mut gen = MatrixGenerator::seeded(5);
        // ~97% sparse: almost every 8-block has <= 1 nonzero, so 2:8 is (near) lossless.
        let a = gen.sparse_normal(64, 64, 0.97);
        let series = decompose(&a, &TasdConfig::parse("2:8").unwrap());
        let err = dropped_nonzero_fraction(&a, &series.reconstruct());
        assert!(err < 0.05, "dropped fraction {err}");
    }

    #[test]
    fn dense_pattern_term_is_lossless() {
        let mut gen = MatrixGenerator::seeded(6);
        let a = gen.normal(16, 16, 0.0, 1.0);
        let series = decompose(&a, &TasdConfig::dense(8));
        assert_eq!(series.reconstruct(), a);
        assert_eq!(series.num_terms(), 1);
    }

    #[test]
    fn empty_config_approximates_to_zero() {
        let a = Matrix::filled(4, 8, 1.0);
        let (series, residual) = decompose_with_residual(&a, &TasdConfig::new(Vec::new()));
        assert_eq!(series.num_terms(), 0);
        assert_eq!(series.reconstruct(), Matrix::zeros(4, 8));
        assert_eq!(residual, a);
    }

    #[test]
    fn early_stop_when_residual_empties() {
        // A matrix that the first term captures entirely: later terms are skipped.
        let p = NmPattern::new(2, 4).unwrap();
        let a = MatrixGenerator::seeded(9).structured_nm(8, 16, p);
        let cfg = TasdConfig::parse("2:4+2:8+1:8").unwrap();
        let series = decompose(&a, &cfg);
        assert_eq!(series.num_terms(), 1);
        assert_eq!(series.reconstruct(), a);
        assert_eq!(series.config(), &cfg);
    }

    #[test]
    fn more_terms_never_increase_error() {
        let mut gen = MatrixGenerator::seeded(13);
        let a = gen.sparse_normal(64, 64, 0.5);
        let configs = ["2:4", "2:4+2:8", "2:4+2:8+2:16"];
        let mut last_dropped = f64::INFINITY;
        for c in configs {
            let series = decompose(&a, &TasdConfig::parse(c).unwrap());
            let dropped = dropped_nonzero_fraction(&a, &series.reconstruct());
            assert!(
                dropped <= last_dropped + 1e-12,
                "error increased at {c}: {dropped} > {last_dropped}"
            );
            last_dropped = dropped;
        }
    }

    #[test]
    fn approximated_sparsity_bounds_actual_kept_fraction() {
        let mut gen = MatrixGenerator::seeded(17);
        let a = gen.normal(32, 64, 0.0, 1.0); // dense input saturates every term
        let cfg = TasdConfig::parse("4:8+1:8").unwrap();
        let series = decompose(&a, &cfg);
        let kept = series.reconstruct().count_nonzeros() as f64 / a.len() as f64;
        assert!((kept - cfg.kept_density()).abs() < 1e-9);
        assert!(
            (sparsity_degree(&series.reconstruct()) - cfg.approximated_sparsity()).abs() < 1e-9
        );
    }
}

//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] scripts failures — panics, latency spikes, transient errors — at
//! chosen *call indices* of named [`FaultSite`]s, so a test can make exactly the k-th
//! kernel call of a run explode and prove the blast radius: the failed request resolves
//! to [`ServingError::KernelPanicked`](super::ServingError::KernelPanicked), every
//! other request in the window completes bitwise-identically, and no handle is ever
//! lost. Plans are deterministic by construction: triggers are either placed explicitly
//! ([`fail_at`](FaultPlan::fail_at)) or drawn from a seeded generator
//! ([`seeded_faults`](FaultPlan::seeded_faults)), and call indices advance in program
//! order, so the same plan over the same workload injects the same faults every run.
//!
//! Two injection surfaces share one plan:
//!
//! * [`FaultyBackend`] wraps any [`GemmBackend`] and trips [`FaultSite::Gemm`] once per
//!   whole-operand kernel entry (`gemm_into` / `gemm_multi_into`). Install it with
//!   [`EngineBuilder::backend`](super::EngineBuilder::backend); wrap the *same* inner
//!   backend with an empty plan to build the fault-free bitwise reference.
//! * Engine **failpoints**: [`EngineBuilder::fault_plan`](super::EngineBuilder::fault_plan)
//!   attaches a plan the engine consults at [`FaultSite::Decompose`] (entering an
//!   uncached decomposition) and the serving dispatcher at [`FaultSite::WindowDispatch`]
//!   (a window handed to the batch executor). At these infallible sites a
//!   [`FaultKind::TransientError`] escalates to a panic, which the same per-request
//!   isolation path contains.
//!
//! Production builds carry only an `Option` check per site when no plan is attached.

use super::sync::lock_or_panic;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use tasd_tensor::backend::{GemmBackend, GemmOperand};
use tasd_tensor::{Matrix, Result, TensorError};

/// What an armed trigger does when its call index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (the payload names the site and index).
    Panic,
    /// Sleep for the given duration, then proceed normally — a latency spike.
    Delay(Duration),
    /// Return a transient error from the site. At infallible failpoints this
    /// escalates to a panic (see the [module docs](self)).
    TransientError,
}

/// A named injection point. Call indices count per site, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One whole-operand kernel entry of a [`FaultyBackend`] (`gemm_into` or
    /// `gemm_multi_into`).
    Gemm,
    /// The engine entering an uncached decomposition (`prepare_uncached`).
    Decompose,
    /// The serving dispatcher handing a closed window to the batch executor.
    WindowDispatch,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Gemm => write!(f, "gemm"),
            FaultSite::Decompose => write!(f, "decompose"),
            FaultSite::WindowDispatch => write!(f, "window-dispatch"),
        }
    }
}

/// One fault the plan actually injected, from [`FaultPlan::injected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Where it fired.
    pub site: FaultSite,
    /// The per-site call index it fired at.
    pub index: u64,
    /// What it did.
    pub kind: FaultKind,
}

#[derive(Default)]
struct FaultState {
    /// Calls observed so far, per site (the next call at a site gets this index).
    counts: HashMap<FaultSite, u64>,
    /// Armed triggers by (site, call index).
    triggers: HashMap<(FaultSite, u64), FaultKind>,
    /// Every trigger that has fired, in firing order.
    injected: Vec<FaultRecord>,
}

/// A seeded, deterministic fault script shared by every injection surface of a run.
///
/// Build one (empty = injects nothing), arm triggers with [`fail_at`](Self::fail_at) /
/// [`seeded_faults`](Self::seeded_faults), and hand clones of one `Arc` to a
/// [`FaultyBackend`] and/or [`EngineBuilder::fault_plan`](super::EngineBuilder::fault_plan).
/// After the run, [`injected`](Self::injected) reports exactly what fired.
#[derive(Default)]
pub struct FaultPlan {
    state: Mutex<FaultState>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock_or_panic(&self.state, "fault plan");
        f.debug_struct("FaultPlan")
            .field("triggers", &state.triggers.len())
            .field("injected", &state.injected.len())
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan: every site passes through untouched. This is the fault-free
    /// reference configuration — same wrapper overhead, no triggers.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `kind` at the `index`-th call of `site` (builder-style).
    #[must_use]
    pub fn fail_at(self, site: FaultSite, index: u64, kind: FaultKind) -> Self {
        {
            let mut state = lock_or_panic(&self.state, "fault plan");
            state.triggers.insert((site, index), kind);
        }
        self
    }

    /// Arms `kind` at `count` distinct call indices of `site`, drawn deterministically
    /// from `seed` out of `0..universe` (builder-style). The same seed always picks the
    /// same indices; [`chosen`](Self::chosen) reports them.
    #[must_use]
    pub fn seeded_faults(
        self,
        site: FaultSite,
        kind: FaultKind,
        count: usize,
        universe: u64,
        seed: u64,
    ) -> Self {
        let picks = pick_distinct(seed, count.min(universe as usize), universe);
        {
            let mut state = lock_or_panic(&self.state, "fault plan");
            for index in picks {
                state.triggers.insert((site, index), kind);
            }
        }
        self
    }

    /// The call indices armed at `site`, sorted ascending.
    pub fn chosen(&self, site: FaultSite) -> Vec<u64> {
        let state = lock_or_panic(&self.state, "fault plan");
        let mut picks: Vec<u64> = state
            .triggers
            .keys()
            .filter(|(s, _)| *s == site)
            .map(|&(_, i)| i)
            .collect();
        picks.sort_unstable();
        picks
    }

    /// Calls observed at `site` so far.
    pub fn calls(&self, site: FaultSite) -> u64 {
        lock_or_panic(&self.state, "fault plan")
            .counts
            .get(&site)
            .copied()
            .unwrap_or(0)
    }

    /// Every fault that has fired, in firing order.
    pub fn injected(&self) -> Vec<FaultRecord> {
        lock_or_panic(&self.state, "fault plan").injected.clone()
    }

    /// Registers one call at `site` and executes its trigger, if armed: panics for
    /// [`FaultKind::Panic`], sleeps for [`FaultKind::Delay`], returns `Err` for
    /// [`FaultKind::TransientError`]. The plan's lock is released before the action, so
    /// an injected panic never poisons the plan.
    // lint: hot-path
    pub fn trip(&self, site: FaultSite) -> Result<()> {
        let fired: Option<FaultRecord> = {
            let mut state = lock_or_panic(&self.state, "fault plan");
            let counter = state.counts.entry(site).or_insert(0);
            let index = *counter;
            *counter += 1;
            let kind = state.triggers.get(&(site, index)).copied();
            kind.map(|kind| {
                let record = FaultRecord { site, index, kind };
                state.injected.push(record);
                record
            })
        };
        match fired {
            None => Ok(()),
            Some(FaultRecord { index, kind, .. }) => match kind {
                // lint: allow(panic): firing is the injected fault itself — the
                // serving layer's isolation converts it into KernelPanicked
                FaultKind::Panic => panic!("injected fault: panic at {site}[{index}]"),
                FaultKind::Delay(d) => {
                    std::thread::sleep(d);
                    Ok(())
                }
                FaultKind::TransientError => Err(TensorError::CorruptCompressed(format!(
                    "injected fault: transient error at {site}[{index}]"
                ))),
            },
        }
    }
}

/// `count` distinct values in `0..universe`, deterministic in `seed` (splitmix64 over a
/// partial Fisher–Yates of the index range).
fn pick_distinct(seed: u64, count: usize, universe: u64) -> Vec<u64> {
    let mut pool: Vec<u64> = (0..universe).collect();
    let mut rng = seed;
    let mut picks = Vec::with_capacity(count);
    for _ in 0..count {
        if pool.is_empty() {
            break;
        }
        rng = splitmix64(rng);
        let at = (rng % pool.len() as u64) as usize;
        picks.push(pool.swap_remove(at));
    }
    picks
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`GemmBackend`] decorator that trips [`FaultSite::Gemm`] once per whole-operand
/// kernel entry, then delegates to the wrapped backend. Row-block sub-calls
/// (`gemm_rows_into`) delegate without tripping — faults inject at whole-call
/// granularity so call indices are placement-independent.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: std::sync::Arc<dyn GemmBackend>,
    plan: std::sync::Arc<FaultPlan>,
}

impl FaultyBackend {
    /// Wraps `inner`, tripping `plan` at every kernel entry.
    pub fn wrap(inner: std::sync::Arc<dyn GemmBackend>, plan: std::sync::Arc<FaultPlan>) -> Self {
        FaultyBackend { inner, plan }
    }
}

impl GemmBackend for FaultyBackend {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn gemm_into(&self, lhs: &dyn GemmOperand, b: &Matrix, c: &mut Matrix) -> Result<()> {
        self.plan.trip(FaultSite::Gemm)?;
        self.inner.gemm_into(lhs, b, c)
    }

    fn gemm_rows_into(
        &self,
        lhs: &dyn GemmOperand,
        b: &Matrix,
        r0: usize,
        r1: usize,
        c_rows: &mut [f32],
        n_cols: usize,
    ) {
        self.inner.gemm_rows_into(lhs, b, r0, r1, c_rows, n_cols);
    }

    fn gemm_multi_into(
        &self,
        lhs: &dyn GemmOperand,
        panels: &[&Matrix],
        outs: &mut [Matrix],
    ) -> Result<()> {
        self.plan.trip(FaultSite::Gemm)?;
        self.inner.gemm_multi_into(lhs, panels, outs)
    }

    fn cost_hint(&self, lhs: &dyn GemmOperand, n_cols: usize) -> tasd_tensor::backend::CostHint {
        self.inner.cost_hint(lhs, n_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use tasd_tensor::backend::DenseBackend;
    use tasd_tensor::MatrixGenerator;

    #[test]
    fn empty_plan_passes_every_call_through() {
        let plan = FaultPlan::new();
        for _ in 0..10 {
            plan.trip(FaultSite::Gemm).unwrap();
        }
        assert_eq!(plan.calls(FaultSite::Gemm), 10);
        assert!(plan.injected().is_empty());
    }

    #[test]
    fn explicit_trigger_fires_at_its_index_only() {
        let plan = FaultPlan::new().fail_at(FaultSite::Gemm, 2, FaultKind::TransientError);
        assert!(plan.trip(FaultSite::Gemm).is_ok());
        assert!(plan.trip(FaultSite::Gemm).is_ok());
        assert!(plan.trip(FaultSite::Gemm).is_err());
        assert!(plan.trip(FaultSite::Gemm).is_ok());
        assert_eq!(plan.injected().len(), 1);
        assert_eq!(plan.injected()[0].index, 2);
    }

    #[test]
    fn panic_trigger_panics_and_does_not_poison_the_plan() {
        let plan = FaultPlan::new().fail_at(FaultSite::Decompose, 0, FaultKind::Panic);
        let result = catch_unwind(AssertUnwindSafe(|| plan.trip(FaultSite::Decompose)));
        assert!(result.is_err());
        // The plan survives its own panic: counting continues past the trigger.
        assert!(plan.trip(FaultSite::Decompose).is_ok());
        assert_eq!(plan.calls(FaultSite::Decompose), 2);
    }

    #[test]
    fn seeded_picks_are_deterministic_and_distinct() {
        let a = FaultPlan::new().seeded_faults(FaultSite::Gemm, FaultKind::Panic, 3, 16, 42);
        let b = FaultPlan::new().seeded_faults(FaultSite::Gemm, FaultKind::Panic, 3, 16, 42);
        let picks = a.chosen(FaultSite::Gemm);
        assert_eq!(picks, b.chosen(FaultSite::Gemm), "same seed, same picks");
        assert_eq!(picks.len(), 3);
        assert!(picks.windows(2).all(|w| w[0] < w[1]), "distinct + sorted");
        assert!(picks.iter().all(|&i| i < 16));
        let c = FaultPlan::new().seeded_faults(FaultSite::Gemm, FaultKind::Panic, 3, 16, 43);
        assert_ne!(picks, c.chosen(FaultSite::Gemm), "different seed differs");
    }

    #[test]
    fn faulty_backend_delegates_bitwise_when_unarmed() {
        let mut gen = MatrixGenerator::seeded(7);
        let a = gen.sparse_normal(16, 16, 0.5);
        let b = gen.normal(16, 4, 0.0, 1.0);
        let inner: Arc<dyn GemmBackend> = Arc::new(DenseBackend::default());
        let faulty = FaultyBackend::wrap(Arc::clone(&inner), Arc::new(FaultPlan::new()));
        let mut c_ref = Matrix::zeros(16, 4);
        inner.gemm_into(&a, &b, &mut c_ref).unwrap();
        let mut c = Matrix::zeros(16, 4);
        faulty.gemm_into(&a, &b, &mut c).unwrap();
        assert_eq!(c, c_ref);
    }
}

//! LRU cache of decomposition results.

use crate::config::TasdConfig;
use crate::series::TasdSeries;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: a 64-bit content fingerprint of the matrix
/// ([`Matrix::fingerprint`](tasd_tensor::Matrix::fingerprint)), its shape, and the
/// decomposition configuration. Two requests with the same key get the same series.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub fingerprint: u64,
    pub shape: (usize, usize),
    pub config: TasdConfig,
}

#[derive(Debug)]
struct CacheEntry {
    series: Arc<TasdSeries>,
    last_used: u64,
}

/// An LRU cache of decomposition results, keyed by (matrix fingerprint, configuration).
///
/// Decomposition is the expensive step of serving a TASD workload — every term walks the
/// full residual — while repeated requests against the same weights are the common case
/// (every forward pass of a deployed model re-multiplies the same decomposed tensors).
/// The cache makes the second request free: it returns the previously materialized
/// [`TasdSeries`] behind an [`Arc`], so hits share storage instead of copying.
///
/// Eviction is least-recently-used with a logical clock; lookups bump recency. Capacity 0
/// disables caching entirely (every lookup misses).
#[derive(Debug)]
pub struct DecompositionCache {
    capacity: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl DecompositionCache {
    /// A cache holding at most `capacity` series.
    pub fn new(capacity: usize) -> Self {
        DecompositionCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<Arc<TasdSeries>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&entry.series))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, series: Arc<TasdSeries>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan: capacities here are small
            // (tens to hundreds of layers), so an ordered index is not worth its bookkeeping.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                series,
                last_used: self.clock,
            },
        );
    }

    /// Point-in-time counters of this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every cached series (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Counters describing cache behaviour, from
/// [`ExecutionEngine::cache_stats`](super::ExecutionEngine::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that returned a cached series.
    pub hits: u64,
    /// Lookups that had to decompose.
    pub misses: u64,
    /// Series currently resident.
    pub entries: usize,
    /// Maximum resident series.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_tensor::Matrix;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            shape: (4, 8),
            config: TasdConfig::parse("2:4").unwrap(),
        }
    }

    fn series() -> Arc<TasdSeries> {
        Arc::new(crate::decompose(
            &Matrix::filled(4, 8, 1.0),
            &TasdConfig::parse("2:4").unwrap(),
        ))
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut cache = DecompositionCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), series());
        assert!(cache.get(&key(1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut cache = DecompositionCache::new(2);
        cache.insert(key(1), series());
        cache.insert(key(2), series());
        // Touch 1 so that 2 is the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), series());
        assert!(cache.get(&key(1)).is_some(), "recently used entry kept");
        assert!(cache.get(&key(2)).is_none(), "stale entry evicted");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = DecompositionCache::new(0);
        cache.insert(key(1), series());
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn distinct_configs_are_distinct_keys() {
        let mut cache = DecompositionCache::new(4);
        cache.insert(key(1), series());
        let other = CacheKey {
            config: TasdConfig::parse("1:4").unwrap(),
            ..key(1)
        };
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn clear_preserves_counters() {
        let mut cache = DecompositionCache::new(4);
        cache.insert(key(1), series());
        assert!(cache.get(&key(1)).is_some());
        cache.clear();
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 0);
    }
}

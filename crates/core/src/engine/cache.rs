//! LRU cache of decomposition results, with the telemetry serving deployments size it by.

use super::prepared::PreparedSeries;
use crate::config::TasdConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: a 64-bit content fingerprint of the matrix
/// ([`Matrix::fingerprint`](tasd_tensor::Matrix::fingerprint)), its shape, and the
/// decomposition configuration. Two requests with the same key get the same series.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub fingerprint: u64,
    pub shape: (usize, usize),
    pub config: TasdConfig,
}

#[derive(Debug)]
struct CacheEntry {
    prepared: Arc<PreparedSeries>,
    last_used: u64,
    hits: u64,
    bytes: usize,
    packed_bytes: usize,
}

/// An LRU cache of *prepared* decomposition results, keyed by (matrix fingerprint,
/// configuration).
///
/// Decomposition is the expensive step of serving a TASD workload — every term walks the
/// full residual — while repeated requests against the same weights are the common case
/// (every forward pass of a deployed model re-multiplies the same decomposed tensors).
/// The cache makes the second request free: it returns the previously materialized
/// [`PreparedSeries`] behind an [`Arc`] — the decomposition *plus* every term already
/// packed in its planned backend's native format — so hits share storage instead of
/// copying and perform zero format conversions.
///
/// Eviction is least-recently-used with a logical clock; lookups bump recency.
///
/// # Zero capacity
///
/// A capacity of 0 is an explicit, supported configuration that disables caching: every
/// lookup misses, and [`insert`](Self::insert) is a documented pass-through — the series
/// is dropped on the floor, nothing is stored, no counter besides the miss count moves,
/// and no operation panics. Engines built with `cache_capacity(0)` therefore decompose on
/// every request, which is the right mode for operands that never repeat (e.g. per-batch
/// activations).
///
/// # Telemetry
///
/// The cache keeps the counters a serving deployment needs to size `cache_capacity` from
/// data: global hit/miss/insertion/eviction counts and resident bytes ([`stats`]
/// (Self::stats)), plus per-entry hit counts and byte sizes
/// ([`entry_stats`](Self::entry_stats)). Resident bytes include the packed execution
/// formats, not just the compressed series — a CSR- or dense-packed term costs real
/// memory and the sizing recipe in the `tasd::engine` module docs budgets for it.
#[derive(Debug)]
pub struct DecompositionCache {
    capacity: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    bytes_resident: usize,
    /// Reference counts of resident prepared-series *allocations*, keyed by `Arc`
    /// pointer. `bytes_resident` charges each allocation once however many keys alias
    /// it — a shard entry and a parent entry resolving to the same prepared series (a
    /// single-shard split has the parent's exact content) share storage, so counting
    /// both would overstate the footprint.
    resident_allocs: HashMap<usize, ResidentAlloc>,
}

#[derive(Debug)]
struct ResidentAlloc {
    refs: usize,
    bytes: usize,
}

impl DecompositionCache {
    /// A cache holding at most `capacity` series. A `capacity` of 0 disables caching
    /// entirely (see the type docs): the cache stays valid and panic-free, it just never
    /// retains anything.
    pub fn new(capacity: usize) -> Self {
        DecompositionCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            bytes_resident: 0,
            resident_allocs: HashMap::new(),
        }
    }

    /// Charges `prepared`'s bytes to `bytes_resident` iff its allocation is not already
    /// resident under another key.
    fn acquire_bytes(&mut self, prepared: &Arc<PreparedSeries>) {
        let alloc = self
            .resident_allocs
            .entry(Arc::as_ptr(prepared) as usize)
            .or_insert_with(|| ResidentAlloc {
                refs: 0,
                bytes: prepared.storage_bytes(),
            });
        alloc.refs += 1;
        if alloc.refs == 1 {
            self.bytes_resident += alloc.bytes;
        }
    }

    /// Releases one key's claim on `prepared`'s allocation, un-charging the bytes when
    /// the last aliasing key is gone.
    fn release_bytes(&mut self, prepared: &Arc<PreparedSeries>) {
        let key = Arc::as_ptr(prepared) as usize;
        let alloc = self
            .resident_allocs
            .get_mut(&key)
            .expect("released allocation must be resident");
        alloc.refs -= 1;
        if alloc.refs == 0 {
            self.bytes_resident -= alloc.bytes;
            self.resident_allocs.remove(&key);
        }
    }

    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<Arc<PreparedSeries>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.clock;
                entry.hits += 1;
                self.hits += 1;
                Some(Arc::clone(&entry.prepared))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, prepared: Arc<PreparedSeries>) {
        if self.capacity == 0 {
            // Documented pass-through: nothing is retained and nothing panics.
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan: capacities here are small
            // (tens to hundreds of layers), so an ordered index is not worth its bookkeeping.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = self.entries.remove(&lru) {
                    self.release_bytes(&evicted.prepared);
                    self.evictions += 1;
                }
            }
        }
        let bytes = prepared.storage_bytes();
        let packed_bytes = prepared.packed_bytes();
        self.insertions += 1;
        self.acquire_bytes(&prepared);
        if let Some(replaced) = self.entries.insert(
            key,
            CacheEntry {
                prepared,
                last_used: self.clock,
                hits: 0,
                bytes,
                packed_bytes,
            },
        ) {
            self.release_bytes(&replaced.prepared);
        }
    }

    /// Inserts `prepared` under `key` **unless** the key is already resident, in which
    /// case the resident series is returned and `prepared` is dropped. This is the
    /// insert the concurrent serving path uses: two threads racing on the same cold key
    /// both decompose (the lock is not held across decomposition), and first-insert-wins
    /// keeps one canonical allocation resident instead of the loser displacing the
    /// winner — callers already holding the winner's `Arc` keep sharing storage with the
    /// cache, and the byte accounting never churns. Not counted as a hit: no lookup
    /// happened, the entry's recency is merely refreshed.
    pub(crate) fn insert_or_get(
        &mut self,
        key: CacheKey,
        prepared: Arc<PreparedSeries>,
    ) -> Arc<PreparedSeries> {
        if self.capacity == 0 {
            return prepared;
        }
        if let Some(entry) = self.entries.get_mut(&key) {
            self.clock += 1;
            entry.last_used = self.clock;
            return Arc::clone(&entry.prepared);
        }
        self.insert(key, Arc::clone(&prepared));
        prepared
    }

    /// Point-in-time counters of this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            capacity: self.capacity,
            insertions: self.insertions,
            evictions: self.evictions,
            bytes_resident: self.bytes_resident,
        }
    }

    /// Per-entry counters of every resident series, hottest first (ties broken by
    /// fingerprint, for deterministic output). This is the data behind the "sizing
    /// `cache_capacity` from telemetry" recipe in the `tasd::engine` module docs.
    pub fn entry_stats(&self) -> Vec<CacheEntryStats> {
        let mut out: Vec<CacheEntryStats> = self
            .entries
            .iter()
            .map(|(k, e)| CacheEntryStats {
                fingerprint: k.fingerprint,
                shape: k.shape,
                config: k.config.to_string(),
                hits: e.hits,
                bytes: e.bytes,
                packed_bytes: e.packed_bytes,
            })
            .collect();
        out.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.fingerprint.cmp(&b.fingerprint)));
        out
    }

    /// Drops every cached series (counters are preserved; resident bytes go to zero).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_allocs.clear();
        self.bytes_resident = 0;
    }

    /// Every resident entry as `(key, prepared)` clones, in deterministic order
    /// (fingerprint, then shape, then config). This is the read seam the snapshot
    /// writer (`engine::persist`) serializes from — persistence never touches the
    /// cache's internal maps, so the entry/recency/byte bookkeeping cannot be skewed
    /// by taking a snapshot.
    pub(crate) fn persistable_entries(&self) -> Vec<(CacheKey, Arc<PreparedSeries>)> {
        let mut out: Vec<(CacheKey, Arc<PreparedSeries>)> = self
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), Arc::clone(&e.prepared)))
            .collect();
        out.sort_by(|(a, _), (b, _)| {
            a.fingerprint
                .cmp(&b.fingerprint)
                .then(a.shape.cmp(&b.shape))
                .then_with(|| a.config.to_string().cmp(&b.config.to_string()))
        });
        out
    }

    /// Adopts one entry recovered from a snapshot — the write seam matching
    /// [`persistable_entries`](Self::persistable_entries). Routes through the same
    /// first-insert-wins and allocation-dedup path as a live insert, so a load-adopt
    /// cycle leaves `bytes_resident` (including aliased-allocation dedup) exactly as a
    /// live population would, and never displaces an entry the running engine already
    /// resolved.
    pub(crate) fn adopt_entry(&mut self, key: CacheKey, prepared: Arc<PreparedSeries>) {
        self.insert_or_get(key, prepared);
    }
}

/// Counters describing cache behaviour, from
/// [`ExecutionEngine::cache_stats`](super::ExecutionEngine::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that returned a cached series.
    pub hits: u64,
    /// Lookups that had to decompose.
    pub misses: u64,
    /// Series currently resident.
    pub entries: usize,
    /// Maximum resident series.
    pub capacity: usize,
    /// Series stored since construction (pass-through inserts at capacity 0 not counted).
    pub insertions: u64,
    /// Resident series displaced to make room for newer ones.
    pub evictions: u64,
    /// Storage footprint of every resident prepared series, in bytes — the compressed
    /// terms plus their packed execution formats. Deduped by allocation: when two keys
    /// alias the same prepared series (a shard entry and a parent entry with identical
    /// content), the shared storage is charged exactly once. Per-entry
    /// [`CacheEntryStats::bytes`] still report each entry's full footprint, so their sum
    /// can exceed this figure when aliases are resident.
    pub bytes_resident: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-entry counters of one resident series, from
/// [`DecompositionCache::entry_stats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheEntryStats {
    /// Content fingerprint of the decomposed matrix.
    pub fingerprint: u64,
    /// Shape of the decomposed matrix.
    pub shape: (usize, usize),
    /// Decomposition configuration, in `"n:m+n:m"` notation.
    pub config: String,
    /// Times this entry was returned from the cache since insertion.
    pub hits: u64,
    /// Total storage footprint of the cached prepared series, in bytes (compressed
    /// series + packed execution formats).
    pub bytes: usize,
    /// The packed-format share of `bytes` (zero when every term stayed structured).
    pub packed_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_tensor::Matrix;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            shape: (4, 8),
            config: TasdConfig::parse("2:4").unwrap(),
        }
    }

    fn series() -> Arc<PreparedSeries> {
        let raw = Arc::new(crate::decompose(
            &Matrix::filled(4, 8, 1.0),
            &TasdConfig::parse("2:4").unwrap(),
        ));
        // Pack terms into CSR so entries carry non-zero packed bytes and the byte
        // accounting below exercises the packed share, not just the series.
        Arc::new(PreparedSeries::prepare(raw, 1, |_, _, _| {
            crate::engine::BackendKind::Csr
        }))
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut cache = DecompositionCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), series());
        assert!(cache.get(&key(1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut cache = DecompositionCache::new(2);
        cache.insert(key(1), series());
        cache.insert(key(2), series());
        // Touch 1 so that 2 is the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), series());
        assert!(cache.get(&key(1)).is_some(), "recently used entry kept");
        assert!(cache.get(&key(2)).is_none(), "stale entry evicted");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_is_a_documented_pass_through() {
        let mut cache = DecompositionCache::new(0);
        // Regression: `new(0)` must stay valid and insert must never panic, however many
        // times it is called — the entry is simply not retained.
        for i in 0..100 {
            cache.insert(key(i), series());
            assert!(cache.get(&key(i)).is_none());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 100);
        assert_eq!(stats.insertions, 0, "pass-through inserts are not counted");
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.bytes_resident, 0);
        assert!(cache.entry_stats().is_empty());
        cache.clear(); // must also be a no-op, not a panic
    }

    #[test]
    fn distinct_configs_are_distinct_keys() {
        let mut cache = DecompositionCache::new(4);
        cache.insert(key(1), series());
        let other = CacheKey {
            config: TasdConfig::parse("1:4").unwrap(),
            ..key(1)
        };
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn clear_preserves_counters() {
        let mut cache = DecompositionCache::new(4);
        cache.insert(key(1), series());
        assert!(cache.get(&key(1)).is_some());
        cache.clear();
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes_resident, 0);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn bytes_resident_tracks_inserts_replacements_and_evictions() {
        let mut cache = DecompositionCache::new(2);
        let per_entry = series().storage_bytes();
        assert!(per_entry > 0);
        cache.insert(key(1), series());
        assert_eq!(cache.stats().bytes_resident, per_entry);
        cache.insert(key(2), series());
        assert_eq!(cache.stats().bytes_resident, 2 * per_entry);
        // Replacing a key must not double-count its bytes.
        cache.insert(key(2), series());
        assert_eq!(cache.stats().bytes_resident, 2 * per_entry);
        // Eviction releases the evicted entry's bytes.
        cache.insert(key(3), series());
        assert_eq!(cache.stats().bytes_resident, 2 * per_entry);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn aliased_allocations_are_charged_once() {
        // Regression: the same prepared series resident under two keys (e.g. a
        // single-shard split whose shard has the parent's exact content, re-keyed under
        // a different fingerprint) shares one allocation — `bytes_resident` must charge
        // it once, and keep charging it until the *last* aliasing key is gone.
        let mut cache = DecompositionCache::new(4);
        let shared = series();
        let per_entry = shared.storage_bytes();
        cache.insert(key(1), Arc::clone(&shared)); // "parent" key
        cache.insert(key(2), Arc::clone(&shared)); // "shard" key, same allocation
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(
            cache.stats().bytes_resident,
            per_entry,
            "aliased entries must not double-count shared storage"
        );
        // Per-entry stats still report each entry's full footprint.
        assert!(cache.entry_stats().iter().all(|e| e.bytes == per_entry));
        // Replacing one alias with a fresh allocation releases only that claim.
        cache.insert(key(2), series());
        assert_eq!(cache.stats().bytes_resident, 2 * per_entry);
        // Replacing the last alias releases the shared allocation's bytes.
        cache.insert(key(1), series());
        assert_eq!(cache.stats().bytes_resident, 2 * per_entry);
        cache.clear();
        assert_eq!(cache.stats().bytes_resident, 0);
    }

    #[test]
    fn insert_or_get_keeps_the_first_resident_copy() {
        // Two threads racing on one cold key both prepare; the first insert must win and
        // the loser must adopt the winner's allocation — no replacement churn, no
        // double-charged bytes, no phantom hit.
        let mut cache = DecompositionCache::new(4);
        let winner = series();
        let per_entry = winner.storage_bytes();
        let kept = cache.insert_or_get(key(1), Arc::clone(&winner));
        assert!(Arc::ptr_eq(&kept, &winner));
        let loser = series();
        let kept = cache.insert_or_get(key(1), loser);
        assert!(
            Arc::ptr_eq(&kept, &winner),
            "the racing loser must adopt the resident copy"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1, "the losing insert is not an insertion");
        assert_eq!(stats.hits, 0, "adopting is not a lookup hit");
        assert_eq!(stats.bytes_resident, per_entry);
        // Zero capacity stays a pass-through.
        let mut off = DecompositionCache::new(0);
        let mine = series();
        let kept = off.insert_or_get(key(2), Arc::clone(&mine));
        assert!(Arc::ptr_eq(&kept, &mine));
        assert_eq!(off.stats().entries, 0);
    }

    #[test]
    fn bytes_resident_dedup_survives_a_load_adopt_cycle() {
        // Regression for the persistence seams: entries read out through
        // `persistable_entries` and re-inserted through `adopt_entry` (a save/load
        // cycle) must reproduce the dedup'd byte accounting of the original cache —
        // including an allocation aliased by two keys — and adopting into a cache that
        // already holds a key must keep the resident copy (first-insert-wins).
        let mut cache = DecompositionCache::new(4);
        let shared = series();
        let per_entry = shared.storage_bytes();
        cache.insert(key(1), Arc::clone(&shared));
        cache.insert(key(2), Arc::clone(&shared)); // alias: same allocation, two keys
        cache.insert(key(3), series());
        assert_eq!(cache.stats().bytes_resident, 2 * per_entry);

        let snapshot = cache.persistable_entries();
        assert_eq!(snapshot.len(), 3);
        assert!(
            snapshot
                .windows(2)
                .all(|w| w[0].0.fingerprint <= w[1].0.fingerprint),
            "snapshot order must be deterministic"
        );

        let mut restored = DecompositionCache::new(4);
        for (k, prepared) in snapshot {
            restored.adopt_entry(k, prepared);
        }
        assert_eq!(restored.stats().entries, 3);
        assert_eq!(
            restored.stats().bytes_resident,
            2 * per_entry,
            "aliased allocation must still be charged once after the cycle"
        );

        // Adopting over a live key must not displace the resident series.
        let resident = restored.get(&key(1)).unwrap();
        restored.adopt_entry(key(1), series());
        assert!(Arc::ptr_eq(&restored.get(&key(1)).unwrap(), &resident));
        assert_eq!(restored.stats().bytes_resident, 2 * per_entry);
    }

    #[test]
    fn entry_stats_report_per_entry_hits_hottest_first() {
        let mut cache = DecompositionCache::new(4);
        cache.insert(key(1), series());
        cache.insert(key(2), series());
        for _ in 0..3 {
            assert!(cache.get(&key(2)).is_some());
        }
        assert!(cache.get(&key(1)).is_some());
        let entries = cache.entry_stats();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].fingerprint, 2);
        assert_eq!(entries[0].hits, 3);
        assert_eq!(entries[1].hits, 1);
        assert!(entries.iter().all(|e| e.bytes > 0));
        assert!(entries.iter().all(|e| e.config == "2:4"));
        let total: usize = entries.iter().map(|e| e.bytes).sum();
        assert_eq!(total, cache.stats().bytes_resident);
    }
}

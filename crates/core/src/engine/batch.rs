//! Batched serving: group, schedule, and execute many GEMM requests in one call.
//!
//! [`ExecutionEngine::submit`] is the serving seam layered on the engine: callers hand it
//! a whole batch of independent requests and get every result back at once, while the
//! engine exploits what the requests have in common. It is also the **window executor**
//! of the session layer — a [`ServingEngine`](super::ServingEngine) micro-batch window
//! is exactly one `submit` call whose batch the dispatcher assembled from concurrent
//! enqueues — so every contract below holds per window, and `submit` itself remains the
//! back-compat surface for callers that assemble their own batches (see the
//! [`serving` module](super::serving) for the lifecycle and the migration note).
//!
//! 1. **Grouping** — requests are grouped by *decomposed-operand fingerprint*: the key is
//!    `(operand fingerprint, operand shape, decomposition config)` — exactly the
//!    decomposition cache's key, with "no decomposition" as its own config value.
//!    Fingerprints come from the engine's per-allocation memo, so a warm stream never
//!    rescans its operands. Every group *prepares* its operand at most once per batch
//!    (and usually zero times, when the prepared cache entry is already resident — a
//!    warm batch performs zero decompositions, zero format conversions, and zero
//!    replans), and its right-hand panels are packed column-wise so one pass over the
//!    operand serves every member ([`pack_panels`](tasd_tensor::backend::pack_panels)).
//! 2. **Scheduling** — groups are admitted shortest-plan-first by their summed
//!    [`MatmulPlan`](super::MatmulPlan) cost estimates, with a fairness cap bounding how
//!    many slots any group can be overtaken by (see [`admission_order`]).
//! 3. **Telemetry** — [`BatchTelemetry`] reports per-group admission slots, queue delays,
//!    plan costs, and the decomposition-cache deltas (hits, misses, decompositions
//!    performed, bytes resident), so deployments can size `cache_capacity` from data.
//!
//! Packing never changes the math: each output column accumulates in the same order as a
//! one-at-a-time [`series_gemm`](ExecutionEngine::series_gemm) /
//! [`gemm`](ExecutionEngine::gemm) call, so `submit` results are bitwise identical to the
//! per-request path, under every admission ordering.

use super::prepared::PreparedSeries;
use super::shard::ShardedSeries;
use super::{ExecutionEngine, MatmulPlan};
use crate::config::TasdConfig;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;
use tasd_tensor::backend::{pack_panels, unpack_panels};
use tasd_tensor::{Matrix, TensorError};

/// Default fairness cap: a group is admitted at most this many slots after its arrival
/// rank, however expensive its plan is (0 would mean strict FIFO).
pub const DEFAULT_FAIRNESS_CAP: usize = 8;

/// Why a request failed to produce an output — the serving layer's structured error
/// taxonomy (see the "Failure semantics" section of the [engine module docs](super)).
///
/// Every [`BatchResponse::output`] error is one of these; a failed request never
/// poisons its batch, its window, or the session. [`ShapeMismatch`](Self::ShapeMismatch)
/// renders identically to [`TensorError::ShapeMismatch`], so error text observed by
/// pre-existing callers is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServingError {
    /// The request's operand shapes are inconsistent; rejected at admission.
    ShapeMismatch {
        /// Operation that rejected the shapes.
        op: &'static str,
        /// Left-hand shape at the point of mismatch.
        lhs: (usize, usize),
        /// Right-hand shape at the point of mismatch.
        rhs: (usize, usize),
    },
    /// A kernel (or decomposition) panicked while executing this request's group. The
    /// payload is the panic message; only the panicking group fails — the rest of the
    /// window completes bitwise-identically.
    KernelPanicked {
        /// The panic's message payload (or a placeholder for non-string payloads).
        payload: String,
    },
    /// The request's deadline passed before its window executed.
    DeadlineExceeded,
    /// The session's bounded queue was full and the overload policy rejected this
    /// request at admission.
    QueueFull,
    /// The request was cancelled through [`ResponseHandle::cancel`](super::ResponseHandle::cancel)
    /// before its response was delivered.
    Cancelled,
    /// The session was shut down (or drained) before this request could be admitted.
    ShuttingDown,
    /// The underlying execution returned a (non-shape) tensor error.
    Execution(TensorError),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Keep the exact TensorError::ShapeMismatch rendering: callers that matched
            // on the message before the ServingError migration still see the same text.
            ServingError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ServingError::KernelPanicked { payload } => {
                write!(f, "kernel panicked while serving this request: {payload}")
            }
            ServingError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before execution")
            }
            ServingError::QueueFull => write!(f, "serving queue is full"),
            ServingError::Cancelled => write!(f, "request was cancelled"),
            ServingError::ShuttingDown => write!(f, "serving session is shutting down"),
            ServingError::Execution(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Execution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ServingError {
    fn from(e: TensorError) -> Self {
        match e {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                ServingError::ShapeMismatch { op, lhs, rhs }
            }
            other => ServingError::Execution(other),
        }
    }
}

/// Renders a panic payload for [`ServingError::KernelPanicked`]: the `&str` / `String`
/// message when the payload carries one (as `panic!` payloads do), a placeholder
/// otherwise.
pub(crate) fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One serving request: multiply (a possibly decomposed) `a` by `b`.
///
/// The operand is shared behind an [`Arc`] so a batch of requests against one weight
/// tensor carries one copy of it; `submit` additionally fingerprints each distinct `Arc`
/// only once. Requests with equal operand *content* (even behind different `Arc`s) still
/// land in the same group — the grouping key is the content fingerprint, not the pointer.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Left-hand operand. Requests in the same batch with identical `a` and `config`
    /// share one decomposition and one kernel pass.
    pub a: Arc<Matrix>,
    /// Right-hand panel (`a.cols() × width`).
    pub b: Matrix,
    /// Decomposition to apply to `a` before multiplying; `None` executes the exact GEMM.
    pub config: Option<TasdConfig>,
    /// Optional absolute deadline on the serving session's [`Clock`](super::Clock)
    /// timeline: if it passes before the request's window executes, the request resolves
    /// to [`ServingError::DeadlineExceeded`] instead of running. `None` (the default)
    /// never expires. Engine-level [`submit`](ExecutionEngine::submit) ignores
    /// deadlines — it has no clock; only the serving session enforces them.
    pub deadline: Option<Duration>,
}

impl BatchRequest {
    /// A request executing the TASD-approximated product `A·B` with `A` decomposed under
    /// `config` (through the engine's decomposition cache).
    pub fn decomposed(a: impl Into<Arc<Matrix>>, config: TasdConfig, b: Matrix) -> Self {
        BatchRequest {
            a: a.into(),
            b,
            config: Some(config),
            deadline: None,
        }
    }

    /// A request executing the exact (undecomposed) product `A·B`.
    pub fn dense(a: impl Into<Arc<Matrix>>, b: Matrix) -> Self {
        BatchRequest {
            a: a.into(),
            b,
            config: None,
            deadline: None,
        }
    }

    /// Sets an absolute deadline (an instant on the serving session's clock, e.g.
    /// `session.now() + budget`). See [`deadline`](Self::deadline).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The engine's answer to one [`BatchRequest`], in the same position as its request.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Index of the request this responds to (== its position in the submitted batch).
    /// 0 for responses fabricated outside any window (cancellation, expiry, shutdown).
    pub index: usize,
    /// The product, or the structured [`ServingError`] that failed the request.
    pub output: Result<Matrix, ServingError>,
    /// Arrival-ranked id of the group this request executed with (`None` if it failed).
    pub group: Option<usize>,
    /// Estimated effectual MACs of this request's plan (0 if it failed at admission).
    pub plan_cost: u64,
    /// Whether this request's decomposition was served from the cache. `false` for dense
    /// requests and for the request batch that actually performed the decomposition.
    pub cache_hit: bool,
}

impl BatchResponse {
    /// A failed response carrying `error` and no execution metadata — what cancellation,
    /// deadline expiry, queue rejection, shutdown, and panic containment deliver.
    pub(crate) fn failed(index: usize, error: ServingError) -> Self {
        BatchResponse {
            index,
            output: Err(error),
            group: None,
            plan_cost: 0,
            cache_hit: false,
        }
    }
}

/// Per-group serving telemetry (one entry per operand group, indexed by group id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupTelemetry {
    /// Content fingerprint of the group's shared operand.
    pub fingerprint: u64,
    /// Request indices served by this group, in arrival order.
    pub members: Vec<usize>,
    /// Summed plan-cost estimate (effectual MACs) of the group's packed execution.
    pub plan_cost: u64,
    /// Execution slot the scheduler admitted this group at (0 = first).
    pub admitted_at: usize,
    /// Slots this group waited past its arrival rank (bounded by the fairness cap).
    pub queue_delay: usize,
    /// Whether this batch performed the group's decomposition (a cache miss). Always
    /// `false` for dense groups. For a row-sharded group this means *at least one* shard
    /// decomposed — a partially warm group (one shard evicted, the rest resident) reports
    /// `decomposed: true` here while the batch-level `cache_hits`/`cache_misses` deltas
    /// carry the exact per-shard split.
    pub decomposed: bool,
    /// Whether the group's decomposition came out of the cache. For a row-sharded group:
    /// whether **every** shard did (the conservative reading — a `true` guarantees the
    /// batch paid zero decomposition work for this group).
    pub cache_hit: bool,
}

/// Whole-batch serving telemetry from [`ExecutionEngine::submit_with_telemetry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Requests submitted.
    pub requests: usize,
    /// Requests rejected at admission (per-request shape errors).
    pub rejected: usize,
    /// Requests that resolved to [`ServingError::KernelPanicked`] because their group's
    /// preparation or kernel pass panicked (contained per group; see the module docs).
    pub panicked: usize,
    /// Fairness cap the scheduler ran with.
    pub fairness_cap: usize,
    /// Per-group telemetry, indexed by arrival-ranked group id.
    pub groups: Vec<GroupTelemetry>,
    /// Decompositions actually performed during this batch (cache misses).
    pub decompositions: u64,
    /// Decomposition-cache hit delta over the batch.
    pub cache_hits: u64,
    /// Decomposition-cache miss delta over the batch.
    pub cache_misses: u64,
    /// Bytes resident in the decomposition cache after the batch.
    pub bytes_resident: usize,
}

impl BatchTelemetry {
    /// Largest queue delay any group experienced (what the fairness cap bounds).
    pub fn max_queue_delay(&self) -> usize {
        self.groups.iter().map(|g| g.queue_delay).max().unwrap_or(0)
    }

    /// Summed plan-cost estimate across every admitted group.
    pub fn total_plan_cost(&self) -> u64 {
        self.groups.iter().map(|g| g.plan_cost).sum()
    }

    /// Group ids in the order the scheduler executed them.
    pub fn admission_order(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.groups.len()).collect();
        ids.sort_by_key(|&g| self.groups[g].admitted_at);
        ids
    }
}

/// Shortest-plan-first admission order with a fairness cap.
///
/// `costs[i]` is the plan-cost estimate of entry `i`; arrival order is the index order.
/// The returned permutation admits the cheapest pending entry at every slot — stable for
/// equal costs (earlier arrival wins) — **except** when some pending entry has already
/// waited `fairness_cap` slots past its arrival rank, in which case the most overdue
/// entry is admitted instead. This bounds every entry's queue delay:
/// `position(i) ≤ i + fairness_cap`, so a cheap stream cannot starve behind a single
/// huge plan, and a huge plan cannot be deferred forever behind a cheap stream.
///
/// A cap of 0 degenerates to FIFO (arrival order); a cap of `costs.len()` or more never
/// binds and yields pure shortest-plan-first order.
// lint: hot-path, allow(indexing): every index here is drawn from 0..n with
// n == costs.len(), and the bookkeeping vectors are allocated at length n above
pub fn admission_order(costs: &[u64], fairness_cap: usize) -> Vec<usize> {
    let n = costs.len();
    // Stable shortest-plan-first: sort by (cost, arrival).
    let mut by_cost: Vec<usize> = (0..n).collect();
    by_cost.sort_by_key(|&i| (costs[i], i));
    let mut admitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for slot in 0..n {
        // At most one entry newly exhausts its slack per slot (arrivals are unique), so
        // admitting the most overdue entry first keeps every deadline.
        let overdue = (0..n).find(|&i| !admitted[i] && i.saturating_add(fairness_cap) <= slot);
        let next = overdue.unwrap_or_else(|| {
            *by_cost
                .iter()
                .find(|&&i| !admitted[i])
                // lint: allow(panic): n slots admit n entries, so some entry is
                // still pending at every slot of the loop
                .expect("one pending entry per remaining slot")
        });
        admitted[next] = true;
        order.push(next);
    }
    order
}

/// Grouping key: operand content fingerprint, operand shape, decomposition config
/// (`None` = exact GEMM) — the decomposition cache's key with "no decomposition" as its
/// own value.
type GroupKey = (u64, (usize, usize), Option<TasdConfig>);

/// How a group executes: a prepared decomposition (whole or row-sharded), or an exact
/// GEMM with a memoized plan.
enum GroupExec {
    /// Decomposed group: the prepared series (obtained through the cache at costing
    /// time) and whether that lookup was a cache hit.
    Prepared {
        series: Arc<PreparedSeries>,
        cache_hit: bool,
    },
    /// Oversized decomposed group routed through the engine's shard policy: one prepared
    /// series per row shard, executed on the shard worker pool. `cache_hit` means every
    /// shard came out of the cache.
    Sharded {
        series: ShardedSeries,
        cache_hit: bool,
    },
    /// Exact GEMM group: the memoized plan for the packed output width.
    Dense { plan: Arc<MatmulPlan> },
    /// The group's preparation (decomposition / planning) panicked: every member
    /// resolves to this error, and the group flows through scheduling with cost 0 so
    /// telemetry and admission invariants hold for the rest of the batch.
    Failed { error: ServingError },
}

/// A request group while the batch is still being assembled: one shared operand
/// (+ config), many right-hand panels. Costing consumes it into a [`CostedGroup`].
struct Group {
    members: Vec<usize>,
    fingerprint: u64,
}

/// One group's kernel pass result: the packed wide output plus (cache_hit, decomposed),
/// or the structured error that failed every member.
type GroupOutcome = std::result::Result<(Matrix, bool, bool), ServingError>;

/// A group after costing: the execution strategy is resolved and the summed plan cost is
/// known, so the schedule/execute loop never meets a half-built group.
struct CostedGroup {
    members: Vec<usize>,
    plan_cost: u64,
    fingerprint: u64,
    exec: GroupExec,
}

impl ExecutionEngine {
    /// Executes a batch of serving requests: groups them by decomposed-operand
    /// fingerprint, admits groups shortest-plan-first under the engine's fairness cap,
    /// decomposes each group's operand at most once (through the cache), and runs each
    /// group as one packed multi-RHS kernel pass. See the [`batch` module docs](self)
    /// for the full contract.
    ///
    /// Responses come back in request order; a request with inconsistent shapes gets an
    /// `Err` response without poisoning the rest of the batch.
    // lint: hot-path
    pub fn submit(&self, requests: Vec<BatchRequest>) -> Vec<BatchResponse> {
        self.submit_with_telemetry(requests).0
    }

    /// [`submit`](Self::submit), also returning the batch's [`BatchTelemetry`].
    ///
    /// Per-group counters ([`GroupTelemetry::decomposed`] / `cache_hit`) are read
    /// atomically with each lookup and are exact even under concurrent engine use; the
    /// batch-level `cache_hits`/`cache_misses` are deltas of the engine-wide stats, so
    /// concurrent traffic from other threads is included in them.
    // lint: hot-path, allow(indexing): request indices come from enumerate() over the
    // batch, group ids from the group vector's own length, and the member_cost /
    // responses / telemetry vectors are all allocated at those exact lengths
    pub fn submit_with_telemetry(
        &self,
        requests: Vec<BatchRequest>,
    ) -> (Vec<BatchResponse>, BatchTelemetry) {
        let stats_before = self.cache_stats();
        let n = requests.len();
        let mut responses: Vec<Option<BatchResponse>> = (0..n).map(|_| None).collect();

        // ---- Group by (fingerprint, shape, config) -----------------------------------
        let mut group_ids: HashMap<GroupKey, usize> = HashMap::new();
        let mut groups: Vec<Group> = Vec::new();
        let mut rejected = 0usize;
        for (i, req) in requests.iter().enumerate() {
            if req.b.rows() != req.a.cols() {
                rejected += 1;
                responses[i] = Some(BatchResponse {
                    index: i,
                    output: Err(ServingError::ShapeMismatch {
                        op: "batch request",
                        lhs: req.a.shape(),
                        rhs: req.b.shape(),
                    }),
                    group: None,
                    plan_cost: 0,
                    cache_hit: false,
                });
                continue;
            }
            // The engine-level memo fingerprints each distinct allocation once *ever*
            // (not once per batch): a warm serving stream performs zero content scans.
            let fingerprint = self.fingerprint_of(&req.a);
            let key = (fingerprint, req.a.shape(), req.config.clone());
            let gid = *group_ids.entry(key).or_insert_with(|| {
                groups.push(Group {
                    members: Vec::new(),
                    fingerprint,
                });
                groups.len() - 1
            });
            groups[gid].members.push(i);
        }

        // ---- Prepare and cost every group (no operand scans on the warm path) --------
        // Decomposed groups are prepared here, through the cache: the decomposition and
        // format packing happen at most once per group per batch (and zero times warm);
        // costs come from the prepared terms' exact non-zero counts. Dense groups cost
        // from their memoized plan's density — the non-zero scan runs only on the first
        // batch that sees the operand content.
        let mut member_cost = vec![0u64; n];
        let costed: Vec<CostedGroup> = groups
            .into_iter()
            .map(|group| {
                let first = &requests[group.members[0]];
                let a = &first.a;
                let packed_width: usize = group.members.iter().map(|&i| requests[i].b.cols()).sum();
                // A panicking decomposition (or planner) fails only its own group: the
                // group becomes GroupExec::Failed and still flows through scheduling,
                // so every other group — and every telemetry invariant — is untouched.
                let prep = catch_unwind(AssertUnwindSafe(|| -> (u64, GroupExec) {
                    match &first.config {
                        Some(cfg) => {
                            // Oversized operands route through the shard policy (when
                            // one is configured): one prepared series per row shard,
                            // each a first-class cache entry keyed by the shard's own
                            // fingerprint. Decomposition is row-local, so the summed
                            // shard nnz equals the whole-matrix nnz and the cost
                            // estimate is unchanged.
                            if let Some(policy) = self.shard_policy_for(a.rows()).cloned() {
                                let series = self.prepare_sharded(a, cfg, &policy);
                                let macs = series.nnz() as u64;
                                let cache_hit = series.all_cache_hits();
                                (macs, GroupExec::Sharded { series, cache_hit })
                            } else {
                                let (series, cache_hit) = self.prepare_with_fingerprint(
                                    a.as_ref(),
                                    cfg,
                                    group.fingerprint,
                                );
                                let macs = series.nnz() as u64;
                                (macs, GroupExec::Prepared { series, cache_hit })
                            }
                        }
                        None => {
                            let plan = self.plan_gemm_memoized(
                                a.as_ref(),
                                group.fingerprint,
                                packed_width,
                            );
                            // lint: allow(indexing): plan_terms never returns an empty plan
                            let macs = (plan.terms[0].density * a.len() as f64) as u64;
                            (macs, GroupExec::Dense { plan })
                        }
                    }
                }));
                let (per_col_macs, exec) = match prep {
                    Ok(prepped) => prepped,
                    Err(payload) => (
                        0,
                        GroupExec::Failed {
                            error: ServingError::KernelPanicked {
                                payload: describe_panic(payload.as_ref()),
                            },
                        },
                    ),
                };
                let mut plan_cost = 0u64;
                for &i in &group.members {
                    let cost = per_col_macs * requests[i].b.cols() as u64;
                    member_cost[i] = cost;
                    plan_cost += cost;
                }
                CostedGroup {
                    members: group.members,
                    plan_cost,
                    fingerprint: group.fingerprint,
                    exec,
                }
            })
            .collect();

        // ---- Schedule and execute ----------------------------------------------------
        let group_costs: Vec<u64> = costed.iter().map(|g| g.plan_cost).collect();
        let order = admission_order(&group_costs, self.fairness_cap());
        let mut group_telemetry: Vec<Option<GroupTelemetry>> =
            (0..costed.len()).map(|_| None).collect();
        let mut panicked = 0usize;
        for (slot, &gid) in order.iter().enumerate() {
            let group = &costed[gid];
            let first = &requests[group.members[0]];
            let panels: Vec<&Matrix> = group.members.iter().map(|&i| &requests[i].b).collect();
            // The window's failure containment: a panicking kernel pass fails only its
            // own group — every member gets a KernelPanicked response, the loop moves
            // to the next admitted group, and the surviving groups' outputs are bitwise
            // identical to a fault-free batch (group passes are independent).
            let executed: std::result::Result<GroupOutcome, Box<dyn Any + Send>> =
                catch_unwind(AssertUnwindSafe(|| -> GroupOutcome {
                    let wide_b = pack_panels(&panels)?;
                    Ok(match &group.exec {
                        GroupExec::Prepared { series, cache_hit } => {
                            let c = self.series_gemm_prepared(series, &wide_b)?;
                            (c, *cache_hit, !*cache_hit)
                        }
                        GroupExec::Sharded { series, cache_hit } => {
                            // One packed multi-RHS pass per shard, each writing its
                            // disjoint row range of the wide output; bitwise identical
                            // to the unsharded pass.
                            let c = self.series_gemm_sharded(series, &wide_b)?;
                            (c, *cache_hit, !*cache_hit)
                        }
                        GroupExec::Dense { plan } => {
                            let mut c = Matrix::zeros(first.a.rows(), wide_b.cols());
                            self.gemm_into_with_plan(first.a.as_ref(), &wide_b, &mut c, plan)?;
                            (c, false, false)
                        }
                        GroupExec::Failed { error } => return Err(error.clone()),
                    })
                }));
            let outcome = match executed {
                Ok(outcome) => outcome,
                Err(payload) => Err(ServingError::KernelPanicked {
                    payload: describe_panic(payload.as_ref()),
                }),
            };
            let (cache_hit, decomposed) = match outcome {
                Ok((wide_c, cache_hit, decomposed)) => {
                    let widths: Vec<usize> = panels.iter().map(|p| p.cols()).collect();
                    for (&i, out) in group.members.iter().zip(unpack_panels(&wide_c, &widths)) {
                        responses[i] = Some(BatchResponse {
                            index: i,
                            output: Ok(out),
                            group: Some(gid),
                            plan_cost: member_cost[i],
                            cache_hit,
                        });
                    }
                    (cache_hit, decomposed)
                }
                Err(error) => {
                    if matches!(error, ServingError::KernelPanicked { .. }) {
                        panicked += group.members.len();
                    }
                    for &i in &group.members {
                        responses[i] = Some(BatchResponse {
                            index: i,
                            output: Err(error.clone()),
                            group: Some(gid),
                            plan_cost: member_cost[i],
                            cache_hit: false,
                        });
                    }
                    (false, false)
                }
            };
            group_telemetry[gid] = Some(GroupTelemetry {
                fingerprint: group.fingerprint,
                members: group.members.clone(),
                plan_cost: group.plan_cost,
                admitted_at: slot,
                // Groups are numbered in arrival order, so gid is the arrival rank.
                queue_delay: slot.saturating_sub(gid),
                decomposed,
                cache_hit,
            });
        }

        let stats_after = self.cache_stats();
        let groups: Vec<GroupTelemetry> = group_telemetry
            .into_iter()
            // lint: allow(panic): admission_order returns a permutation of the group
            // ids, so the execute loop filled every telemetry slot
            .map(|g| g.expect("every group was admitted exactly once"))
            .collect();
        let telemetry = BatchTelemetry {
            requests: n,
            rejected,
            panicked,
            fairness_cap: self.fairness_cap(),
            decompositions: groups.iter().filter(|g| g.decomposed).count() as u64,
            cache_hits: stats_after.hits - stats_before.hits,
            cache_misses: stats_after.misses - stats_before.misses,
            bytes_resident: stats_after.bytes_resident,
            groups,
        };
        let responses = responses
            .into_iter()
            // lint: allow(panic): every request was either rejected at admission or
            // answered by the group that executed it — both write its response slot
            .map(|r| r.expect("every request was answered"))
            .collect();
        (responses, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasd_tensor::{gemm, MatrixGenerator};

    fn engine() -> ExecutionEngine {
        ExecutionEngine::builder().build()
    }

    // ---- Scheduler unit tests --------------------------------------------------------

    #[test]
    fn shortest_plan_first_orders_by_cost() {
        let order = admission_order(&[30, 10, 20], 100);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_costs_keep_arrival_order() {
        // Stability: ties broken by arrival, so the order is deterministic.
        let order = admission_order(&[5, 5, 5, 5], 100);
        assert_eq!(order, vec![0, 1, 2, 3]);
        let order = admission_order(&[9, 5, 5, 9, 5], 100);
        assert_eq!(order, vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn fairness_cap_bounds_queue_delay() {
        // One huge plan arriving first, then a stream of cheap ones: without the cap the
        // huge plan would be admitted last.
        let mut costs = vec![1_000_000u64];
        costs.extend(std::iter::repeat_n(1, 20));
        for cap in [0usize, 1, 3, 7, 50] {
            let order = admission_order(&costs, cap);
            let mut position = vec![0usize; costs.len()];
            for (slot, &i) in order.iter().enumerate() {
                position[i] = slot;
            }
            for (i, &pos) in position.iter().enumerate() {
                assert!(
                    pos <= i + cap,
                    "cap {cap}: entry {i} admitted at slot {pos}, past its deadline"
                );
            }
        }
        // And the cap actually binds: with cap 3 the huge plan runs at slot 3, not last.
        let order = admission_order(&costs, 3);
        assert_eq!(order.iter().position(|&i| i == 0), Some(3));
    }

    #[test]
    fn fairness_cap_zero_is_fifo() {
        let order = admission_order(&[100, 1, 50, 2], 0);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn admission_order_is_a_permutation_under_random_costs() {
        let mut gen = MatrixGenerator::seeded(9);
        let noise = gen.normal(1, 64, 0.0, 1.0);
        let costs: Vec<u64> = noise
            .row(0)
            .iter()
            .map(|x| (x.abs() * 1e6) as u64)
            .collect();
        for cap in [0usize, 2, 5, 64] {
            let mut order = admission_order(&costs, cap);
            order.sort_unstable();
            assert_eq!(order, (0..costs.len()).collect::<Vec<_>>());
        }
    }

    // ---- Submit tests ----------------------------------------------------------------

    #[test]
    fn identical_operands_decompose_exactly_once() {
        let mut gen = MatrixGenerator::seeded(21);
        let a = gen.sparse_normal(32, 48, 0.8);
        let cfg = TasdConfig::parse("2:8").unwrap();
        let e = engine();
        let requests: Vec<BatchRequest> = (0..16)
            .map(|_| BatchRequest::decomposed(a.clone(), cfg.clone(), gen.normal(48, 4, 0.0, 1.0)))
            .collect();
        let (responses, telemetry) = e.submit_with_telemetry(requests);
        assert_eq!(telemetry.groups.len(), 1);
        assert_eq!(telemetry.decompositions, 1, "one decomposition per batch");
        assert_eq!(telemetry.cache_misses, 1);
        assert!(telemetry.bytes_resident > 0);
        assert!(responses.iter().all(|r| r.output.is_ok()));
        // A second batch over the same operand is served entirely from the cache.
        let again: Vec<BatchRequest> = (0..16)
            .map(|_| BatchRequest::decomposed(a.clone(), cfg.clone(), gen.normal(48, 4, 0.0, 1.0)))
            .collect();
        let (_, telemetry) = e.submit_with_telemetry(again);
        assert_eq!(telemetry.decompositions, 0);
        assert_eq!(telemetry.cache_hits, 1);
        assert!(telemetry.groups[0].cache_hit);
    }

    #[test]
    fn submit_matches_per_request_execution() {
        let mut gen = MatrixGenerator::seeded(22);
        let e = engine();
        let shared = gen.sparse_normal(24, 32, 0.7);
        let unique = gen.sparse_normal(16, 32, 0.4);
        let cfg = TasdConfig::parse("2:8+1:8").unwrap();
        let requests = vec![
            BatchRequest::decomposed(shared.clone(), cfg.clone(), gen.normal(32, 6, 0.0, 1.0)),
            BatchRequest::dense(unique.clone(), gen.normal(32, 3, 0.0, 1.0)),
            BatchRequest::decomposed(shared.clone(), cfg.clone(), gen.normal(32, 1, 0.0, 1.0)),
            BatchRequest::dense(shared.clone(), gen.normal(32, 5, 0.0, 1.0)),
        ];
        let reference: Vec<Matrix> = requests
            .iter()
            .map(|r| match &r.config {
                Some(cfg) => {
                    let series = e.decompose(r.a.as_ref(), cfg);
                    e.series_gemm(&series, &r.b).unwrap()
                }
                None => e.gemm(r.a.as_ref(), &r.b).unwrap(),
            })
            .collect();
        let responses = e.submit(requests);
        for (resp, expected) in responses.iter().zip(&reference) {
            // Packing preserves per-column accumulation order: bitwise equality.
            assert_eq!(resp.output.as_ref().unwrap(), expected);
        }
        // The two decomposed requests on the shared operand formed one group; the dense
        // request on the same operand is a different group (different config key).
        assert_eq!(responses[0].group, responses[2].group);
        assert_ne!(responses[0].group, responses[3].group);
        assert_ne!(responses[1].group, responses[0].group);
    }

    #[test]
    fn rejected_requests_do_not_poison_the_batch() {
        let mut gen = MatrixGenerator::seeded(23);
        let a = gen.normal(8, 8, 0.0, 1.0);
        let e = engine();
        let requests = vec![
            BatchRequest::dense(a.clone(), gen.normal(8, 2, 0.0, 1.0)),
            BatchRequest::dense(a.clone(), gen.normal(9, 2, 0.0, 1.0)), // bad shape
            BatchRequest::dense(a.clone(), gen.normal(8, 2, 0.0, 1.0)),
        ];
        let (responses, telemetry) = e.submit_with_telemetry(requests);
        assert!(responses[0].output.is_ok());
        assert!(responses[1].output.is_err());
        assert!(responses[2].output.is_ok());
        assert_eq!(responses[1].group, None);
        assert_eq!(telemetry.rejected, 1);
        assert_eq!(telemetry.requests, 3);
        assert_eq!(telemetry.groups.len(), 1);
        assert_eq!(telemetry.groups[0].members, vec![0, 2]);
    }

    #[test]
    fn groups_are_admitted_shortest_plan_first() {
        let mut gen = MatrixGenerator::seeded(24);
        // Arrival order: huge dense group first, tiny group second.
        let big = gen.normal(96, 96, 0.0, 1.0);
        let small = gen.normal(8, 8, 0.0, 1.0);
        let e = engine();
        let requests = vec![
            BatchRequest::dense(big, gen.normal(96, 32, 0.0, 1.0)),
            BatchRequest::dense(small, gen.normal(8, 2, 0.0, 1.0)),
        ];
        let (_, telemetry) = e.submit_with_telemetry(requests);
        assert_eq!(telemetry.admission_order(), vec![1, 0]);
        assert_eq!(telemetry.groups[0].queue_delay, 1);
        assert!(telemetry.max_queue_delay() <= telemetry.fairness_cap);
        assert!(telemetry.groups[0].plan_cost > telemetry.groups[1].plan_cost);
        assert_eq!(
            telemetry.total_plan_cost(),
            telemetry.groups.iter().map(|g| g.plan_cost).sum::<u64>()
        );
    }

    #[test]
    fn zero_capacity_engine_serves_batches_without_caching() {
        // Regression companion to `DecompositionCache::new(0)`: a cache-less engine must
        // serve every batch (decomposing per batch) and never panic.
        let mut gen = MatrixGenerator::seeded(25);
        let a = gen.sparse_normal(16, 16, 0.6);
        let cfg = TasdConfig::parse("2:8").unwrap();
        let e = ExecutionEngine::builder().cache_capacity(0).build();
        for _ in 0..3 {
            let requests: Vec<BatchRequest> = (0..4)
                .map(|_| {
                    BatchRequest::decomposed(a.clone(), cfg.clone(), gen.normal(16, 2, 0.0, 1.0))
                })
                .collect();
            let (responses, telemetry) = e.submit_with_telemetry(requests);
            assert!(responses.iter().all(|r| r.output.is_ok()));
            // Still one decomposition per *batch* (the group shares the series in hand),
            // but nothing is retained across batches.
            assert_eq!(telemetry.decompositions, 1);
            assert_eq!(telemetry.bytes_resident, 0);
        }
        assert_eq!(e.cache_stats().entries, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (responses, telemetry) = engine().submit_with_telemetry(Vec::new());
        assert!(responses.is_empty());
        assert_eq!(telemetry.requests, 0);
        assert!(telemetry.groups.is_empty());
        assert_eq!(telemetry.max_queue_delay(), 0);
    }

    #[test]
    fn dense_group_output_matches_reference_gemm() {
        let mut gen = MatrixGenerator::seeded(26);
        let a = gen.sparse_normal(20, 24, 0.5);
        let b1 = gen.normal(24, 7, 0.0, 1.0);
        let b2 = gen.normal(24, 2, 0.0, 1.0);
        let responses = engine().submit(vec![
            BatchRequest::dense(a.clone(), b1.clone()),
            BatchRequest::dense(a.clone(), b2.clone()),
        ]);
        assert!(responses[0]
            .output
            .as_ref()
            .unwrap()
            .approx_eq(&gemm(&a, &b1).unwrap(), 1e-4));
        assert!(responses[1]
            .output
            .as_ref()
            .unwrap()
            .approx_eq(&gemm(&a, &b2).unwrap(), 1e-4));
    }
}
